//! Fast-tier model-checking smoke test: the full radix-2 battery —
//! every `{BE, GB, GL}²` class mix under all three counter policies —
//! must enumerate its complete reachable state space (`closed`) with no
//! V1–V6 invariant violation. This is the exhaustiveness guarantee that
//! `cargo xtask verify` relies on in `scripts/check.sh`, pinned here so
//! `cargo test` alone catches a regression in either the arbitration
//! pipeline or the checker.

use swizzle_qos::verify::{tier, verify_scenario, VerifyOutcome};

#[test]
fn fast_tier_is_clean_and_closed() {
    let outcomes: Vec<VerifyOutcome> = tier::fast_scenarios().iter().map(verify_scenario).collect();
    assert_eq!(outcomes.len(), 30);

    for outcome in &outcomes {
        assert!(
            outcome.passed(),
            "{}: invariant violated: {:?}",
            outcome.scenario,
            outcome.violation.as_ref().map(|cx| (cx.code, &cx.detail)),
        );
        assert!(
            outcome.closed,
            "{}: state space did not close (states {}, depth {})",
            outcome.scenario, outcome.states, outcome.depth,
        );
        assert!(outcome.states > 0 && outcome.transitions > 0);
    }

    // The exhaustive sweep must actually explore multi-state spaces:
    // contested GB mixes grow past a hundred reachable states.
    let largest = outcomes.iter().map(|o| o.states).max().unwrap_or(0);
    assert!(largest > 100, "largest closed space only {largest} states");
}

#[test]
fn every_policy_closes_under_contested_gb() {
    // The three counter-management policies diverge exactly on
    // saturation behaviour; the contested all-GB mixes are where the
    // auxVC counters actually reach the cap.
    for policy in swizzle_qos::verify::all_policies() {
        let contested: Vec<_> = tier::fast_scenarios()
            .into_iter()
            .filter(|s| s.policy == policy && s.name.contains("gb+gb"))
            .collect();
        assert!(!contested.is_empty(), "{policy}: no contested scenarios");
        for scenario in contested {
            let outcome = verify_scenario(&scenario);
            assert!(outcome.passed() && outcome.closed, "{}", outcome.scenario);
        }
    }
}
