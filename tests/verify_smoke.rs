//! Fast-tier model-checking smoke test: the full radix-2 battery —
//! every `{BE, GB, GL}²` class mix under all three counter policies —
//! must enumerate its complete reachable state space (`closed`) with no
//! V1–V6 invariant violation. This is the exhaustiveness guarantee that
//! `cargo xtask verify` relies on in `scripts/check.sh`, pinned here so
//! `cargo test` alone catches a regression in either the arbitration
//! pipeline or the checker.

use swizzle_qos::verify::{tier, verify_scenario, VerifyOutcome};

#[test]
fn fast_tier_is_clean_and_closed() {
    let outcomes: Vec<VerifyOutcome> = tier::fast_scenarios().iter().map(verify_scenario).collect();
    assert_eq!(outcomes.len(), 30);

    for outcome in &outcomes {
        assert!(
            outcome.passed(),
            "{}: invariant violated: {:?}",
            outcome.scenario,
            outcome.violation.as_ref().map(|cx| (cx.code, &cx.detail)),
        );
        assert!(
            outcome.closed,
            "{}: state space did not close (states {}, depth {})",
            outcome.scenario, outcome.states, outcome.depth,
        );
        assert!(outcome.states > 0 && outcome.transitions > 0);
    }

    // The exhaustive sweep must actually explore multi-state spaces:
    // contested GB mixes grow past a hundred reachable states.
    let largest = outcomes.iter().map(|o| o.states).max().unwrap_or(0);
    assert!(largest > 100, "largest closed space only {largest} states");
}

/// Degraded-mode cross-check: when a dead GB lane forces an output off
/// SSVC onto the flat LRG fallback, the switch's packet-level grant
/// sequence must match `ssq-verify`'s model prediction for the same
/// request pattern — pure least-recently-granted rotation, QoS weights
/// forfeited.
#[test]
fn lrg_fallback_matches_the_verify_models_lrg_prediction() {
    use swizzle_qos::arbiter::CounterPolicy;
    use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
    use swizzle_qos::sim::CycleModel;
    use swizzle_qos::trace::{EventKind, RingSink};
    use swizzle_qos::traffic::{FixedDest, Injector, Saturating};
    use swizzle_qos::types::{Cycle, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};
    use swizzle_qos::verify::{Model, Scenario};

    let mut config = SwitchConfig::builder(Geometry::new(4, 128).unwrap())
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .build()
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(0),
            OutputId::new(0),
            Rate::new(0.6).unwrap(),
            4,
        )
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(1),
            OutputId::new(0),
            Rate::new(0.2).unwrap(),
            4,
        )
        .unwrap();
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..2 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(4)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch.tracer_mut().attach_ring(1 << 16);

    // Healthy phase: SSVC enforces the reserved 3:1 split.
    let packets = |sw: &QosSwitch, i: usize| {
        sw.gb_metrics()
            .flow(FlowId::new(InputId::new(i), OutputId::new(0)))
            .packets()
    };
    let mut now = Cycle::ZERO;
    for _ in 0..4_000 {
        switch.step(now);
        now = now.next();
    }
    let (h0, h1) = (packets(&switch, 0), packets(&switch, 1));
    let healthy_ratio = h0 as f64 / h1.max(1) as f64;
    assert!(
        healthy_ratio > 2.0,
        "SSVC should enforce ~3:1, got {healthy_ratio:.2}"
    );

    // A GB lane dies; the output degrades to the flat LRG fallback.
    let fault_at = now;
    switch.fault_degrade_to_lrg(OutputId::new(0), fault_at);
    for _ in 0..4_000 {
        switch.step(now);
        now = now.next();
    }

    // The verify model's LRG semantics: the winner is the requester
    // earliest in `gb_order`, which then rotates to the back. From the
    // model's quiescent initial state, two saturated requesters must
    // strictly alternate at packet granularity.
    let model = Model::new(Scenario::new(
        "lrg-fallback-prediction",
        CounterPolicy::SubtractRealClock,
        vec![TrafficClass::GuaranteedBandwidth; 4],
        vec![1; 4],
    ));
    let mut order = model.initial_state().gb_order;
    let winners: Vec<u32> = switch
        .tracer()
        .ring()
        .map(RingSink::events)
        .unwrap()
        .iter()
        .filter(|e| e.cycle >= fault_at.value())
        .filter_map(|e| match e.kind {
            EventKind::Grant {
                output: 0, input, ..
            } => Some(input),
            _ => None,
        })
        .collect();
    assert!(winners.len() > 100, "fallback mode starved the output");
    let predicted: Vec<u32> = (0..winners.len())
        .map(|_| {
            let w = *order.iter().find(|&&i| i < 2).unwrap();
            order.retain(|&x| x != w);
            order.push(w);
            u32::from(w)
        })
        .collect();
    assert_eq!(
        winners, predicted,
        "LRG fallback diverged from the verify model's LRG prediction"
    );

    // The QoS weights are genuinely forfeited: service equalizes to 1:1.
    let (d0, d1) = (packets(&switch, 0) - h0, packets(&switch, 1) - h1);
    let degraded_ratio = d0 as f64 / d1.max(1) as f64;
    assert!(
        (0.8..=1.25).contains(&degraded_ratio),
        "LRG fallback should serve 1:1, got {degraded_ratio:.2}"
    );

    // And the degradation was loud: a mode event plus revocations.
    let events = switch.tracer().ring().map(RingSink::events).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(&e.kind, EventKind::Degraded { mode, .. } if mode == "lrg_fallback")));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::GuaranteeRevoked { .. })));
}

#[test]
fn every_policy_closes_under_contested_gb() {
    // The three counter-management policies diverge exactly on
    // saturation behaviour; the contested all-GB mixes are where the
    // auxVC counters actually reach the cap.
    for policy in swizzle_qos::verify::all_policies() {
        let contested: Vec<_> = tier::fast_scenarios()
            .into_iter()
            .filter(|s| s.policy == policy && s.name.contains("gb+gb"))
            .collect();
        assert!(!contested.is_empty(), "{policy}: no contested scenarios");
        for scenario in contested {
            let outcome = verify_scenario(&scenario);
            assert!(outcome.passed() && outcome.closed, "{}", outcome.scenario);
        }
    }
}
