//! Integration tests pinning the paper's headline claims end to end
//! through the facade API.

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::gl::{burst_budgets, latency_bound, GlScenario};
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::physical::{AreaModel, DelayModel, StorageModel};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::traffic::{FixedDest, Injector, Periodic, Saturating};
use swizzle_qos::types::{Cycle, Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

const FIG4_RATES: [f64; 8] = [0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05];

fn fig4_switch(policy: Policy) -> QosSwitch {
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
        .policy(policy)
        .gb_buffer_flits(16)
        .sig_bits(4)
        .build()
        .unwrap();
    for (i, &r) in FIG4_RATES.iter().enumerate() {
        config
            .reservations_mut()
            .reserve_gb(InputId::new(i), OutputId::new(0), Rate::new(r).unwrap(), 8)
            .unwrap();
    }
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..8 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

fn run(switch: &mut QosSwitch) -> Cycle {
    Runner::new(Schedule::new(Cycles::new(5_000), Cycles::new(50_000))).run(switch)
}

fn throughput(switch: &QosSwitch, input: usize, end: Cycle) -> f64 {
    switch
        .gb_metrics()
        .flow(FlowId::new(InputId::new(input), OutputId::new(0)))
        .throughput(end)
}

/// Fig. 4(a): "Without QoS, the switch performs LRG arbitration among
/// the inputs. During congestion all flows receive an equal share."
#[test]
fn fig4a_lrg_equalizes_congested_flows() {
    let mut switch = fig4_switch(Policy::LrgOnly);
    let end = run(&mut switch);
    let equal = 8.0 / 9.0 / 8.0;
    for i in 0..8 {
        let t = throughput(&switch, i, end);
        assert!((t - equal).abs() < 0.01, "flow {i}: {t:.3} vs {equal:.3}");
    }
}

/// Fig. 4(b): "With QoS, all inputs get at least their reserved rate of
/// bandwidth during congestion."
#[test]
fn fig4b_ssvc_delivers_reserved_rates() {
    let mut switch = fig4_switch(Policy::Ssvc(CounterPolicy::SubtractRealClock));
    let end = run(&mut switch);
    let capacity = 8.0 / 9.0;
    for (i, &r) in FIG4_RATES.iter().enumerate() {
        let t = throughput(&switch, i, end);
        assert!(
            t >= r * capacity - 0.02,
            "flow {i} below reservation: {t:.3} < {:.3}",
            r * capacity
        );
    }
}

/// Fig. 4: "The maximum possible throughput is 0.89 flits/cycle because
/// this experiment uses 8-flit packet sizes."
#[test]
fn throughput_ceiling_is_0_89() {
    let mut switch = fig4_switch(Policy::Ssvc(CounterPolicy::SubtractRealClock));
    let end = run(&mut switch);
    let total = switch.output_throughput(OutputId::new(0), end);
    assert!((total - 8.0 / 9.0).abs() < 0.005, "total {total:.4}");
}

/// §4.3: SSVC improves the latency of low-allocation flows over the
/// original Virtual Clock, and the decrease "comes with a sacrifice: the
/// increase in latency for flows with larger allocations" (halve/reset).
#[test]
fn fig5_coarse_counters_improve_low_allocation_latency() {
    use swizzle_qos::traffic::Bernoulli;
    let run_policy = |policy| {
        let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
            .policy(policy)
            .gb_buffer_flits(16)
            .sig_bits(4)
            .build()
            .unwrap();
        for (i, &r) in FIG4_RATES.iter().enumerate() {
            config
                .reservations_mut()
                .reserve_gb(InputId::new(i), OutputId::new(0), Rate::new(r).unwrap(), 8)
                .unwrap();
        }
        let mut switch = QosSwitch::new(config).unwrap();
        for (i, &r) in FIG4_RATES.iter().enumerate() {
            switch.add_injector(
                Injector::new(
                    Box::new(Bernoulli::new(0.85 * r, 8, 90 + i as u64)),
                    Box::new(FixedDest::new(OutputId::new(0))),
                    TrafficClass::GuaranteedBandwidth,
                )
                .for_input(InputId::new(i)),
            );
        }
        let _ =
            Runner::new(Schedule::new(Cycles::new(10_000), Cycles::new(80_000))).run(&mut switch);
        // Mean latency of the four 5% flows.
        (4..8)
            .map(|i| {
                switch
                    .gb_metrics()
                    .flow(FlowId::new(InputId::new(i), OutputId::new(0)))
                    .mean_latency()
            })
            .sum::<f64>()
            / 4.0
    };
    let original = run_policy(Policy::ExactVirtualClock);
    let subtract = run_policy(Policy::Ssvc(CounterPolicy::SubtractRealClock));
    let halve = run_policy(Policy::Ssvc(CounterPolicy::Halve));
    let reset = run_policy(Policy::Ssvc(CounterPolicy::Reset));
    assert!(
        subtract < original,
        "SSVC ({subtract:.1}) must beat original VC ({original:.1}) for 5% flows"
    );
    assert!(
        halve < subtract,
        "halve {halve:.1} vs subtract {subtract:.1}"
    );
    assert!(
        reset < subtract,
        "reset {reset:.1} vs subtract {subtract:.1}"
    );
}

/// §3.2: GL packets preempt GB traffic and arrive within Eq. 1's bound.
#[test]
fn gl_class_bound_holds_over_saturated_background() {
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
        .gb_buffer_flits(16)
        .gl_buffer_flits(4)
        .sig_bits(4)
        .build()
        .unwrap();
    for i in 0..6 {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(0),
                Rate::new(0.15).unwrap(),
                8,
            )
            .unwrap();
    }
    config
        .reservations_mut()
        .reserve_gl(OutputId::new(0), Rate::new(0.1).unwrap())
        .unwrap();
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..6 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    for i in 6..8 {
        switch.add_injector(
            Injector::new(
                Box::new(Periodic::new(83, i as u64, 1)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedLatency,
            )
            .for_input(InputId::new(i)),
        );
    }
    let _ = run(&mut switch);
    let bound = latency_bound(GlScenario::new(8, 1, 2, 4));
    let measured = switch
        .gl_wait_histogram(OutputId::new(0))
        .max()
        .expect("GL packets flowed");
    assert!(measured <= bound, "wait {measured} > bound {bound}");
}

/// §3.4's worked-example shapes for the burst budgets.
#[test]
fn burst_budget_worked_examples() {
    assert_eq!(burst_budgets(&[101], 1), vec![50]);
    assert_eq!(burst_budgets(&[201; 8], 1)[0], 12);
}

/// Table 1's bottom line: about 1 MB of storage for the largest switch.
#[test]
fn table1_total_storage() {
    let m = StorageModel::paper_table1();
    assert_eq!(m.total_bytes() / 1024, 1101);
}

/// §4.5's two calibration anchors and the ≤2% / ≤8.4% envelopes.
#[test]
fn physical_overheads_match_the_paper() {
    let delay = DelayModel::calibrated_32nm();
    assert!((delay.ss_frequency_ghz(64, 128) - 1.5).abs() < 0.01);
    let worst = [8usize, 16, 32, 64]
        .iter()
        .flat_map(|&r| [128usize, 256, 512].map(|w| delay.slowdown(r, w)))
        .fold(0.0f64, f64::max);
    assert!((worst - 0.084).abs() < 1e-9, "worst slowdown {worst}");

    let area = AreaModel::new();
    assert!(area.overhead_fraction(128) <= 0.024);
    assert_eq!(area.overhead_fraction(512), 0.0);
}

/// §4.4: the QoS technique scales to 64 nodes with a 256-bit bus, and no
/// further ("while not scalable beyond 64 nodes").
#[test]
fn scalability_envelope() {
    assert!(Geometry::new(64, 256).unwrap().supports_classes(3));
    assert!(!Geometry::new(64, 128).unwrap().supports_classes(3));
    for radix in [8, 16, 32] {
        assert!(Geometry::new(radix, 128).unwrap().supports_classes(3));
    }
}
