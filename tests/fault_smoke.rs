//! The chaos-campaign smoke tier as an integration test, verified at
//! the JSONL level: every single-fault scenario's exported trace must
//! show one of exactly two outcomes — bounds preserved (no guarantee
//! machinery fired) or a loud, structured revocation/degradation. A
//! tripped run with a silent trace is the failure mode the whole
//! `ssq-faults` subsystem exists to rule out.

use swizzle_qos::faults::{run_smoke, Verdict};
use swizzle_qos::trace::Event;

#[test]
fn every_scenario_trace_is_loud_or_bounds_preserving() {
    let dir = std::env::temp_dir().join(format!("ssq-fault-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let results = run_smoke(7);
    assert!(results.len() >= 8, "catalog shrank to {}", results.len());
    for result in &results {
        // Export the scenario's trace exactly as `ssq faults --trace-dir`
        // would, then judge it from the serialized form alone.
        let path = dir.join(format!("{}.jsonl", result.name));
        let mut text = String::new();
        for event in &result.events {
            text.push_str(&event.to_jsonl());
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let mut loud = false;
        for line in text.lines() {
            // Every exported line is well-formed taxonomy JSONL.
            Event::from_jsonl(line).unwrap();
            loud |= line.contains("\"kind\":\"guarantee_revoked\"")
                || line.contains("\"kind\":\"degraded\"")
                || (line.contains("\"kind\":\"readmitted\"")
                    && !line.contains("\"action\":\"keep\""));
        }

        // The two-outcome contract, read off the trace file:
        match &result.verdict {
            Verdict::BoundsPreserved => assert!(
                !loud,
                "{}: bounds-preserved verdict but the trace revokes",
                result.name
            ),
            Verdict::Revoked { .. } => assert!(
                loud,
                "{}: revoked verdict with no structured revocation in the trace",
                result.name
            ),
            Verdict::SilentViolation { reason } => {
                panic!("{}: silent violation ({reason})", result.name)
            }
        }
    }

    // The catalog must exercise both arms of the contract.
    assert!(results
        .iter()
        .any(|r| matches!(r.verdict, Verdict::BoundsPreserved)));
    assert!(results
        .iter()
        .any(|r| matches!(r.verdict, Verdict::Revoked { .. })));

    std::fs::remove_dir_all(&dir).unwrap();
}
