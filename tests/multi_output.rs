//! Cross-crate integration tests on multi-output configurations: flow
//! conservation, input-channel limits, permutation traffic, and
//! determinism.

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig, SwitchCounters};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, Saturating, Transpose, UniformDest};
use swizzle_qos::types::{Cycle, Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

fn run(switch: &mut QosSwitch, warmup: u64, measure: u64) -> Cycle {
    Runner::new(Schedule::new(Cycles::new(warmup), Cycles::new(measure))).run(switch)
}

/// Transpose permutation traffic on a 16×16 switch: with one flow per
/// output there is no contention, so every flow should achieve its full
/// offered rate.
#[test]
fn permutation_traffic_is_contention_free() {
    let config = SwitchConfig::builder(Geometry::new(16, 128).unwrap())
        .policy(Policy::LrgOnly)
        .be_buffer_flits(16)
        .build()
        .unwrap();
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..16 {
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.5, 4, i as u64)),
                Box::new(Transpose::new(16)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    let end = run(&mut switch, 2_000, 30_000);
    for i in 0..16 {
        let total: f64 = (0..16)
            .map(|o| {
                switch
                    .be_metrics()
                    .flow(FlowId::new(InputId::new(i), OutputId::new(o)))
                    .throughput(end)
            })
            .sum();
        assert!((total - 0.5).abs() < 0.05, "input {i} delivered {total:.3}");
    }
}

/// Uniform random traffic: delivered flits are conserved (delivered <=
/// accepted <= offered) and per-output totals never exceed the channel
/// ceiling.
#[test]
fn uniform_traffic_conservation() {
    let config = SwitchConfig::builder(Geometry::new(16, 128).unwrap())
        .policy(Policy::LrgOnly)
        .be_buffer_flits(32)
        .build()
        .unwrap();
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..16 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(4)),
                Box::new(UniformDest::new(16, 100 + i as u64)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    let end = run(&mut switch, 2_000, 30_000);
    let c: SwitchCounters = switch.counters();
    assert!(c.delivered_packets <= c.accepted_packets);
    assert!(c.accepted_packets <= c.offered_packets);
    assert_eq!(c.delivered_packets * 4, c.delivered_flits);
    for o in 0..16 {
        let total = switch.output_throughput(OutputId::new(o), end);
        assert!(total <= 4.0 / 5.0 + 1e-9, "output {o} delivered {total:.3}");
        assert!(total > 0.1, "output {o} starved: {total:.3}");
    }
}

/// An input can never deliver more than one flit per cycle in aggregate,
/// no matter how many outputs it feeds.
#[test]
fn input_channel_is_a_hard_limit() {
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
        .gb_buffer_flits(32)
        .build()
        .unwrap();
    for o in 0..4 {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(0),
                OutputId::new(o),
                Rate::new(1.0).unwrap(),
                8,
            )
            .unwrap();
    }
    let mut switch = QosSwitch::new(config).unwrap();
    for o in 0..4 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(o))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(0)),
        );
    }
    let end = run(&mut switch, 2_000, 20_000);
    let total: f64 = (0..4)
        .map(|o| {
            switch
                .gb_metrics()
                .flow(FlowId::new(InputId::new(0), OutputId::new(o)))
                .throughput(end)
        })
        .sum();
    assert!(total <= 1.0 + 1e-9, "input over-delivered: {total:.3}");
    assert!(total > 0.8, "input under-utilized: {total:.3}");
}

/// Reservations on different outputs are independent: a flow's guarantee
/// on output 0 is unaffected by congestion on output 1.
#[test]
fn per_output_isolation() {
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
        .gb_buffer_flits(16)
        .sig_bits(4)
        .build()
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(0),
            OutputId::new(0),
            Rate::new(0.5).unwrap(),
            8,
        )
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(1),
            OutputId::new(0),
            Rate::new(0.5).unwrap(),
            8,
        )
        .unwrap();
    for i in 2..8 {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(1),
                Rate::new(1.0 / 6.0).unwrap(),
                8,
            )
            .unwrap();
    }
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..2 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    for i in 2..8 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(1))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    let end = run(&mut switch, 3_000, 30_000);
    let capacity = 8.0 / 9.0;
    for i in 0..2 {
        let t = switch
            .gb_metrics()
            .flow(FlowId::new(InputId::new(i), OutputId::new(0)))
            .throughput(end);
        assert!((t - 0.5 * capacity).abs() < 0.02, "flow {i}: {t:.3}");
    }
    let out1 = switch.output_throughput(OutputId::new(1), end);
    assert!((out1 - capacity).abs() < 0.02, "output 1 total {out1:.3}");
}

/// Identical seeds must give bit-identical results (the simulator is
/// fully deterministic).
#[test]
fn simulation_is_deterministic() {
    let build = || {
        let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
            .policy(Policy::Ssvc(CounterPolicy::Halve))
            .gb_buffer_flits(16)
            .build()
            .unwrap();
        for i in 0..4 {
            config
                .reservations_mut()
                .reserve_gb(
                    InputId::new(i),
                    OutputId::new(0),
                    Rate::new(0.25).unwrap(),
                    8,
                )
                .unwrap();
        }
        let mut switch = QosSwitch::new(config).unwrap();
        for i in 0..4 {
            switch.add_injector(
                Injector::new(
                    Box::new(Bernoulli::new(0.4, 8, 777 + i as u64)),
                    Box::new(FixedDest::new(OutputId::new(0))),
                    TrafficClass::GuaranteedBandwidth,
                )
                .for_input(InputId::new(i)),
            );
        }
        switch
    };
    let mut a = build();
    let mut b = build();
    let end_a = run(&mut a, 1_000, 20_000);
    let end_b = run(&mut b, 1_000, 20_000);
    assert_eq!(end_a, end_b);
    assert_eq!(a.counters(), b.counters());
    for i in 0..4 {
        let flow = FlowId::new(InputId::new(i), OutputId::new(0));
        assert_eq!(
            a.gb_metrics().flow(flow).packets(),
            b.gb_metrics().flow(flow).packets()
        );
        assert_eq!(
            a.gb_metrics().flow(flow).mean_latency(),
            b.gb_metrics().flow(flow).mean_latency()
        );
    }
}

/// All three QoS classes active on one output simultaneously: GL stays
/// fast, GB flows hold their reservations, BE scavenges only leftovers
/// — the complete §3 class structure in a single configuration.
#[test]
fn three_classes_coexist_with_correct_priorities() {
    use swizzle_qos::traffic::Periodic;
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .gl_buffer_flits(4)
        .sig_bits(4)
        .build()
        .unwrap();
    let out = OutputId::new(0);
    // GB: inputs 0-3 reserve 20% each; GL: 5% shared; BE: inputs 4-6.
    for i in 0..4 {
        config
            .reservations_mut()
            .reserve_gb(InputId::new(i), out, Rate::new(0.2).unwrap(), 8)
            .unwrap();
    }
    config
        .reservations_mut()
        .reserve_gl(out, Rate::new(0.05).unwrap())
        .unwrap();
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..4 {
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.19, 8, 400 + i as u64)),
                Box::new(FixedDest::new(out)),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    for i in 4..7 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(out)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch.add_injector(
        Injector::new(
            Box::new(Periodic::new(307, 0, 1)),
            Box::new(FixedDest::new(out)),
            TrafficClass::GuaranteedLatency,
        )
        .for_input(InputId::new(7)),
    );

    let end = run(&mut switch, 5_000, 60_000);
    let capacity = 8.0 / 9.0;

    // GB flows receive their (sub-reservation) demand in full.
    for i in 0..4 {
        let t = switch
            .gb_metrics()
            .flow(FlowId::new(InputId::new(i), out))
            .throughput(end);
        assert!((t - 0.19).abs() < 0.02, "GB flow {i}: {t:.3}");
    }
    // BE absorbs the remaining ~12% of the deliverable bandwidth.
    let be_total: f64 = (4..7)
        .map(|i| {
            switch
                .be_metrics()
                .flow(FlowId::new(InputId::new(i), out))
                .throughput(end)
        })
        .sum();
    let leftover = capacity - 4.0 * 0.19 - 0.004; // GL takes ~1 flit/307 cycles
    assert!(
        (be_total - leftover).abs() < 0.03,
        "BE total {be_total:.3} vs leftover {leftover:.3}"
    );
    // GL interrupts ride through in a handful of cycles despite the
    // fully busy channel.
    let gl = switch.gl_metrics().flow(FlowId::new(InputId::new(7), out));
    assert!(gl.packets() > 150, "GL packets: {}", gl.packets());
    assert!(
        gl.max_latency().unwrap() <= 10,
        "GL max latency {}",
        gl.max_latency().unwrap()
    );
    // Classes never bleed into each other's metrics.
    assert_eq!(
        switch
            .gl_metrics()
            .flow(FlowId::new(InputId::new(0), out))
            .packets(),
        0
    );
    assert_eq!(
        switch
            .be_metrics()
            .flow(FlowId::new(InputId::new(0), out))
            .packets(),
        0
    );
    assert_eq!(
        switch
            .gb_metrics()
            .flow(FlowId::new(InputId::new(7), out))
            .packets(),
        0
    );
}

/// The two-cycle arbitration of the 4-level prior design lowers the
/// saturated ceiling from L/(L+1) to L/(L+2) — measured end to end.
#[test]
fn four_level_throughput_penalty() {
    for (policy, expected) in [
        (Policy::LrgOnly, 8.0 / 9.0),
        (Policy::FourLevel, 8.0 / 10.0),
    ] {
        let config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
            .policy(policy)
            .be_buffer_flits(32)
            .build()
            .unwrap();
        let mut switch = QosSwitch::new(config).unwrap();
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(0)),
        );
        let end = run(&mut switch, 1_000, 20_000);
        let total = switch.output_throughput(OutputId::new(0), end);
        assert!(
            (total - expected).abs() < 0.01,
            "{policy}: {total:.3} vs {expected:.3}"
        );
    }
}

/// The paper's "variety of packet sizes" (§4.2): Vtick encodes the
/// *average* inter-packet time, so a flow mixing short and long packets
/// (mean length = its nominal length) still receives its reserved rate.
#[test]
fn mixed_packet_sizes_keep_reservations() {
    use swizzle_qos::traffic::{BimodalBernoulli, Saturating};
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).unwrap())
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(32)
        .sig_bits(4)
        .build()
        .unwrap();
    let out = OutputId::new(0);
    // Flow 0: 40% reservation with nominal 4-flit packets, but actually
    // sending a 2/8-flit mix whose mean is 4 flits. Flows 1-3: plain
    // saturating 4-flit flows with 20% each.
    config
        .reservations_mut()
        .reserve_gb(InputId::new(0), out, Rate::new(0.4).unwrap(), 4)
        .unwrap();
    for i in 1..4 {
        config
            .reservations_mut()
            .reserve_gb(InputId::new(i), out, Rate::new(0.2).unwrap(), 4)
            .unwrap();
    }
    let mut switch = QosSwitch::new(config).unwrap();
    switch.add_injector(
        Injector::new(
            // Offered 0.38 flits/cycle ~ just below its deliverable share.
            Box::new(BimodalBernoulli::new(0.30, 2, 8, 1.0 / 3.0, 55)),
            Box::new(FixedDest::new(out)),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(0)),
    );
    for i in 1..4 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(4)),
                Box::new(FixedDest::new(out)),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    let end = run(&mut switch, 5_000, 60_000);
    let mixed = switch
        .gb_metrics()
        .flow(FlowId::new(InputId::new(0), out))
        .throughput(end);
    // The mixed-size flow gets its full (sub-reservation) demand despite
    // saturated competitors; quantization of the per-packet slot across
    // lengths costs at most a couple of percent.
    assert!(
        (mixed - 0.30).abs() < 0.03,
        "mixed-size flow got {mixed:.3}"
    );
    // Competitors still share the remainder per their reservations.
    for i in 1..4 {
        let t = switch
            .gb_metrics()
            .flow(FlowId::new(InputId::new(i), out))
            .throughput(end);
        assert!(t > 0.14, "flow {i} squeezed to {t:.3}");
    }
}

/// Fabric-in-the-loop at full radix 64: a short saturated run where every
/// GB arbitration on the hot output is double-checked against the
/// bit-level inhibit fabric (the §4.1 verification at the title radix).
#[test]
fn fabric_checked_radix64_run() {
    let mut config = SwitchConfig::builder(Geometry::new(64, 256).unwrap())
        .gb_buffer_flits(16)
        .fabric_checked(true)
        .build()
        .unwrap();
    for i in 0..64 {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(0),
                Rate::new(1.0 / 64.0).unwrap(),
                8,
            )
            .unwrap();
    }
    let mut switch = QosSwitch::new(config).unwrap();
    for i in 0..64 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    // Completing without a divergence panic is the verification.
    let end = run(&mut switch, 1_000, 10_000);
    assert!(switch.output_throughput(OutputId::new(0), end) > 0.85);
}

/// §3.2 buffers GL in a single FIFO per input, so a GL packet headed to
/// a saturated output head-of-line blocks GL packets behind it that
/// target idle outputs — a documented consequence of the paper's
/// buffering organization (GL is "only applicable to types of
/// time-critical messages that are very infrequent").
#[test]
fn gl_single_fifo_blocks_across_outputs() {
    use swizzle_qos::traffic::Trace;
    let mut config = SwitchConfig::builder(Geometry::new(4, 128).unwrap())
        .gb_buffer_flits(16)
        .gl_buffer_flits(8)
        .build()
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(1),
            OutputId::new(0),
            Rate::new(0.9).unwrap(),
            8,
        )
        .unwrap();
    config
        .reservations_mut()
        .reserve_gl(OutputId::new(0), Rate::new(0.1).unwrap())
        .unwrap();
    config
        .reservations_mut()
        .reserve_gl(OutputId::new(1), Rate::new(0.1).unwrap())
        .unwrap();
    let mut switch = QosSwitch::new(config).unwrap();
    // Background: output 0 saturated by GB.
    switch.add_injector(
        Injector::new(
            Box::new(Saturating::new(8)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(1)),
    );
    // Input 0's GL FIFO: first a packet to the busy output 0, then one
    // to the idle output 1, back to back.
    switch.add_injector(
        Injector::new(
            Box::new(Trace::new(vec![(100, 1)])),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedLatency,
        )
        .for_input(InputId::new(0)),
    );
    switch.add_injector(
        Injector::new(
            Box::new(Trace::new(vec![(101, 1)])),
            Box::new(FixedDest::new(OutputId::new(1))),
            TrafficClass::GuaranteedLatency,
        )
        .for_input(InputId::new(0)),
    );
    let _ = run(&mut switch, 0, 2_000);
    let to_busy = switch
        .gl_metrics()
        .flow(FlowId::new(InputId::new(0), OutputId::new(0)));
    let to_idle = switch
        .gl_metrics()
        .flow(FlowId::new(InputId::new(0), OutputId::new(1)));
    assert_eq!(to_busy.packets(), 1);
    assert_eq!(to_idle.packets(), 1);
    // The idle-output packet could have gone out immediately (latency ~2)
    // but had to wait behind the busy-output head: its latency includes
    // the head's channel-release wait.
    let head_latency = to_busy.max_latency().unwrap();
    let blocked_latency = to_idle.max_latency().unwrap();
    assert!(
        blocked_latency + 2 >= head_latency,
        "expected HOL coupling: head {head_latency}, behind {blocked_latency}"
    );
    assert!(
        blocked_latency > 3,
        "idle-output GL packet should have been delayed by HOL, got {blocked_latency}"
    );
}
