//! Cross-crate integration: capture a live workload as a trace file,
//! replay it into a fresh switch, and verify the replay reproduces the
//! original run exactly.

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, TraceEvent, TraceFile, UniformDest};
use swizzle_qos::types::{Cycle, Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

fn base_config() -> SwitchConfig {
    let mut config = SwitchConfig::builder(Geometry::new(4, 128).unwrap())
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .build()
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(0),
            OutputId::new(0),
            Rate::new(0.5).unwrap(),
            4,
        )
        .unwrap();
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(1),
            OutputId::new(0),
            Rate::new(0.3).unwrap(),
            4,
        )
        .unwrap();
    config
}

/// Runs the original stochastic workload, capturing deliveries.
fn original_run() -> (QosSwitch, Vec<(Cycle, swizzle_qos::types::PacketSpec)>) {
    let mut switch = QosSwitch::new(base_config()).unwrap();
    switch.set_delivery_log(true);
    switch.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.4, 4, 71)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(0)),
    );
    switch.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.25, 4, 72)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(1)),
    );
    switch.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.2, 2, 73)),
            Box::new(UniformDest::new(4, 74)),
            TrafficClass::BestEffort,
        )
        .for_input(InputId::new(2)),
    );
    let _ = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(20_000))).run(&mut switch);
    let deliveries = switch.drain_deliveries();
    (switch, deliveries)
}

#[test]
fn captured_trace_replays_to_identical_deliveries() {
    let (original, deliveries) = original_run();
    assert!(
        deliveries.len() > 1000,
        "workload too thin to be meaningful"
    );

    // Capture: creation-time events of everything that was delivered.
    let events: Vec<TraceEvent> = deliveries
        .iter()
        .map(|(_, spec)| TraceEvent {
            cycle: spec.created().value(),
            input: spec.flow().input(),
            output: spec.flow().output(),
            class: spec.class(),
            len_flits: spec.len_flits(),
        })
        .collect();
    let text = TraceFile::from_events(events).to_string();

    // Replay through the text round trip into a fresh switch.
    let trace: TraceFile = text.parse().unwrap();
    let mut replay = QosSwitch::new(base_config()).unwrap();
    replay.set_delivery_log(true);
    for injector in trace.into_injectors().unwrap() {
        replay.add_injector(injector);
    }
    let _ = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(25_000))).run(&mut replay);
    let replayed = replay.drain_deliveries();

    // Same number of packets delivered, same per-flow flit totals, and
    // (because the arrival schedule and arbitration are identical) the
    // same creation-cycle sequence per flow.
    assert_eq!(replayed.len(), deliveries.len());
    for i in 0..4 {
        for o in 0..4 {
            let flow = FlowId::new(InputId::new(i), OutputId::new(o));
            for metrics in [
                (original.gb_metrics(), replay.gb_metrics()),
                (original.be_metrics(), replay.be_metrics()),
            ] {
                assert_eq!(
                    metrics.0.flow(flow).flits(),
                    metrics.1.flow(flow).flits(),
                    "flit totals diverged on {flow}"
                );
            }
        }
    }
    let creation = |log: &[(Cycle, swizzle_qos::types::PacketSpec)]| {
        let mut v: Vec<(usize, u64)> = log
            .iter()
            .map(|(_, s)| (s.flow().input().index(), s.created().value()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(creation(&deliveries), creation(&replayed));
}
