//! Bitpar-engine conformance beyond the shared three-way battery:
//!
//! * A seeded property test fuzzing random request patterns over radices
//!   2–64 — random class mixes, buffer shapes, per-port feature toggles,
//!   and **mid-run reservation renegotiation** — stepping the sequential
//!   and word-wide paths in lockstep and demanding identical grants.
//! * Idle-skip conformance: event-driven stepping must produce
//!   byte-identical observables to dense stepping — decay-epoch events
//!   and flight-recorder cycle stamps included — while provably skipping
//!   most cycles at low load.
//! * A negative control: unpredictable (Bernoulli) sources must never
//!   allow a skip, degrading the runner to the dense fast path.

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::{BitparRunner, CycleModel, EventModel, Runner, Schedule};
use swizzle_qos::trace::{Event, RingSink};
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, Periodic, Saturating, UniformDest};
use swizzle_qos::types::{
    Cycle, Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass, Xoshiro256StarStar,
};

/// Serialized per-flow metrics: integers verbatim, latency means as
/// `f64` bit patterns, so any divergence is a byte divergence.
fn metrics_csv(switch: &QosSwitch) -> String {
    use std::fmt::Write as _;
    let radix = switch.config().geometry().radix();
    let mut csv = String::new();
    for i in 0..radix {
        for o in 0..radix {
            let flow = FlowId::new(InputId::new(i), OutputId::new(o));
            for (label, metrics) in [
                ("BE", switch.be_metrics()),
                ("GB", switch.gb_metrics()),
                ("GL", switch.gl_metrics()),
            ] {
                let m = metrics.flow(flow);
                if m.packets() == 0 {
                    continue;
                }
                let _ = writeln!(
                    csv,
                    "{flow},{label},{},{},{:#x},{}",
                    m.packets(),
                    m.flits(),
                    m.mean_latency().to_bits(),
                    m.max_latency().unwrap_or(0),
                );
            }
        }
    }
    csv
}

fn ring_events(switch: &QosSwitch) -> Vec<Event> {
    switch
        .tracer()
        .ring()
        .map(RingSink::events)
        .unwrap_or_default()
}

fn assert_observables_match(seq: &QosSwitch, bit: &QosSwitch, tag: &str) {
    assert_eq!(seq.counters(), bit.counters(), "{tag}: counters diverged");
    assert_eq!(
        metrics_csv(seq),
        metrics_csv(bit),
        "{tag}: per-flow metrics diverged"
    );
    let (se, be) = (ring_events(seq), ring_events(bit));
    assert_eq!(se.len(), be.len(), "{tag}: event counts diverged");
    for (n, (a, b)) in se.iter().zip(be.iter()).enumerate() {
        assert_eq!(a, b, "{tag}: first event divergence at index {n}");
    }
}

/// One seeded random switch over a random radix in 2..=64. The scenario
/// is a pure function of the seed, so the sequential and bitpar copies
/// are identical at construction.
fn build_fuzz(seed: u64) -> (QosSwitch, usize) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let radix = 2 + rng.index(63); // 2..=64
    let policy = match rng.index(3) {
        0 => CounterPolicy::SubtractRealClock,
        1 => CounterPolicy::Halve,
        _ => CounterPolicy::Reset,
    };
    // The bus must split into whole lanes, so size it off the radix.
    let geometry = Geometry::new(radix, radix * 8).expect("valid geometry");
    let mut config = SwitchConfig::builder(geometry)
        .policy(Policy::Ssvc(policy))
        .gb_buffer_flits(8 + 8 * rng.index(3) as u64)
        .be_buffer_flits(8 + 8 * rng.index(3) as u64)
        .be_voq(rng.chance(0.5))
        .packet_chaining(rng.chance(0.5))
        .gl_policing(rng.chance(0.5))
        .sig_bits(3)
        .build()
        .expect("valid config");

    // GB reservations and saturating flows on a hot output.
    let hot = OutputId::new(rng.index(radix));
    let flows = 1 + rng.index(radix.min(4));
    let budget = 0.2 + 0.5 * rng.f64();
    let mut used = Vec::new();
    for _ in 0..flows {
        let mut input = InputId::new(rng.index(radix));
        while used.contains(&input) {
            input = InputId::new(rng.index(radix));
        }
        let len = 1 << rng.index(4);
        config
            .reservations_mut()
            .reserve_gb(
                input,
                hot,
                Rate::new(budget / flows as f64).expect("valid rate"),
                len,
            )
            .expect("reservation fits");
        used.push(input);
    }
    if rng.chance(0.5) {
        config
            .reservations_mut()
            .reserve_gl(hot, Rate::new(0.02 + 0.05 * rng.f64()).expect("valid rate"))
            .expect("GL reservation fits");
    }

    let mut switch = QosSwitch::new(config).expect("valid switch");
    for &input in &used {
        let len = 1 << rng.index(4);
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(len)),
                Box::new(FixedDest::new(hot)),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(input),
        );
    }
    // GL interrupts plus BE background over the remaining inputs.
    for i in 0..radix {
        let input = InputId::new(i);
        if used.contains(&input) {
            continue;
        }
        if rng.chance(0.2) {
            switch.add_injector(
                Injector::new(
                    Box::new(Periodic::new(rng.range(20, 120), rng.below(20), 1)),
                    Box::new(FixedDest::new(hot)),
                    TrafficClass::GuaranteedLatency,
                )
                .for_input(input),
            );
        } else if rng.chance(0.6) {
            let dest: Box<dyn swizzle_qos::traffic::DestinationPattern + Send + Sync> =
                if rng.chance(0.5) {
                    Box::new(FixedDest::new(hot))
                } else {
                    Box::new(UniformDest::new(radix, rng.next_u64()))
                };
            switch.add_injector(
                Injector::new(
                    Box::new(Bernoulli::new(
                        0.05 + 0.6 * rng.f64(),
                        1 << rng.index(3),
                        rng.next_u64(),
                    )),
                    dest,
                    TrafficClass::BestEffort,
                )
                .for_input(input),
            );
        }
    }
    (switch, radix)
}

/// The property: for any seeded scenario, stepping the word-wide fast
/// path produces the same observables as the sequential loop — through
/// a mid-run reservation renegotiation applied identically to both.
#[test]
fn fuzzed_patterns_with_reservation_churn_match_seq() {
    const TRIALS: u64 = 40;
    const CYCLES: u64 = 600;
    for trial in 0..TRIALS {
        let seed = 0xB17_9A12 ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let (mut seq, radix) = build_fuzz(seed);
        let (mut bit, _) = build_fuzz(seed);
        seq.tracer_mut().attach_ring(1 << 15);
        bit.tracer_mut().attach_ring(1 << 15);

        // The churn schedule is part of the scenario: renegotiate one
        // existing GB reservation to a fresh rate mid-run.
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xC0DE);
        let churn_at = 100 + rng.below(CYCLES - 200);
        let new_rate = Rate::new(0.05 + 0.2 * rng.f64()).expect("valid rate");

        let mut at = Cycle::ZERO;
        for cycle in 0..CYCLES {
            if cycle == churn_at {
                for sw in [&mut seq, &mut bit] {
                    let Some((input, output, res)) = sw.config().reservations().iter_gb().next()
                    else {
                        break;
                    };
                    let len = res.packet_flits();
                    let _ = sw.update_gb_reservation(input, output, new_rate, len);
                }
            }
            seq.step(at);
            bit.step_fast(at);
            at = at.next();
        }
        assert_observables_match(&seq, &bit, &format!("trial {trial} (radix {radix})"));
    }
}

/// Counts how the bitpar runner spends its cycles, delegating to the
/// real switch — the proof that idle skipping actually engaged.
struct Counting<'a> {
    inner: &'a mut QosSwitch,
    stepped: u64,
    skipped: u64,
}

impl CycleModel for Counting<'_> {
    fn step(&mut self, now: Cycle) {
        self.inner.step(now);
    }
    fn begin_measurement(&mut self, now: Cycle) {
        self.inner.begin_measurement(now);
    }
}

impl EventModel for Counting<'_> {
    fn step_fast(&mut self, now: Cycle) {
        self.stepped += 1;
        self.inner.step_fast(now);
    }
    fn skip_idle(&mut self, now: Cycle, limit: Cycle) -> Cycle {
        let target = self.inner.skip_idle(now, limit);
        if target > now {
            self.skipped += target.value() - now.value();
        }
        target
    }
}

/// A low-load, fully periodic scenario: GB heartbeats and a GL
/// interrupt source on an SSVC-subtract switch, so the skipped
/// stretches carry live decay-epoch clocks whose trace events must
/// land on exactly the dense cycle stamps.
fn periodic_switch() -> QosSwitch {
    let mut config = SwitchConfig::builder(Geometry::new(8, 128).expect("valid geometry"))
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .build()
        .expect("valid config");
    config
        .reservations_mut()
        .reserve_gb(
            InputId::new(0),
            OutputId::new(3),
            Rate::new(0.3).expect("valid rate"),
            8,
        )
        .expect("reservation fits");
    config
        .reservations_mut()
        .reserve_gl(OutputId::new(3), Rate::new(0.05).expect("valid rate"))
        .expect("GL reservation fits");
    let mut switch = QosSwitch::new(config).expect("valid switch");
    switch.add_injector(
        Injector::new(
            Box::new(Periodic::new(160, 7, 8)),
            Box::new(FixedDest::new(OutputId::new(3))),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(0)),
    );
    switch.add_injector(
        Injector::new(
            Box::new(Periodic::new(240, 100, 1)),
            Box::new(FixedDest::new(OutputId::new(3))),
            TrafficClass::GuaranteedLatency,
        )
        .for_input(InputId::new(5)),
    );
    switch
}

fn idle_schedule() -> Schedule {
    Schedule::new(Cycles::new(500), Cycles::new(20_000))
}

#[test]
fn idle_skipping_is_byte_identical_to_dense_stepping() {
    let mut dense = periodic_switch();
    dense.tracer_mut().attach_ring(1 << 16);
    Runner::new(idle_schedule()).run(&mut dense);

    let mut skipping = periodic_switch();
    skipping.tracer_mut().attach_ring(1 << 16);
    let mut counted = Counting {
        inner: &mut skipping,
        stepped: 0,
        skipped: 0,
    };
    let end = BitparRunner::new(idle_schedule()).run(&mut counted);
    assert_eq!(end, Cycle::new(20_500));
    assert_eq!(
        counted.stepped + counted.skipped,
        20_500,
        "every cycle either stepped or skipped"
    );
    assert!(
        counted.skipped > 15_000,
        "low-load run must skip most cycles (skipped {} of 20500)",
        counted.skipped
    );

    assert!(dense.counters().delivered_packets > 0, "traffic flowed");
    // The ring holds Grant/Decay/... events with cycle stamps — the
    // flight recorder's own source — so byte-identity here covers the
    // batched decay-epoch replay and its timestamps.
    assert!(
        ring_events(&dense)
            .iter()
            .any(|e| format!("{e:?}").contains("Decay")),
        "scenario must exercise decay epochs"
    );
    assert_observables_match(&dense, &skipping, "idle-skip vs dense");
}

/// Bernoulli sources decline to predict arrivals, so the runner must
/// never skip — and still match the dense loop exactly.
#[test]
fn unpredictable_sources_disable_skipping() {
    let build = || {
        let config = SwitchConfig::builder(Geometry::new(4, 128).expect("valid geometry"))
            .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
            .build()
            .expect("valid config");
        let mut switch = QosSwitch::new(config).expect("valid switch");
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.02, 4, 7)),
                Box::new(FixedDest::new(OutputId::new(1))),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(2)),
        );
        switch.tracer_mut().attach_ring(1 << 14);
        switch
    };
    let schedule = Schedule::new(Cycles::new(100), Cycles::new(4_000));

    let mut dense = build();
    Runner::new(schedule).run(&mut dense);

    let mut fast = build();
    let mut counted = Counting {
        inner: &mut fast,
        stepped: 0,
        skipped: 0,
    };
    BitparRunner::new(schedule).run(&mut counted);
    assert_eq!(counted.skipped, 0, "Bernoulli runs must stay dense");
    assert_eq!(counted.stepped, 4_100);
    assert_observables_match(&dense, &fast, "bernoulli dense vs fast");
}
