//! Pins the checked-in perf-trajectory record (`results/BENCH_<n>.json`):
//! every document parses, the current-schema documents render
//! byte-stably, the newest capture holds the regression gate against
//! its predecessor, and `ssq perf-report`'s table spans the whole
//! trajectory.

use std::path::Path;

use swizzle_qos::prof::trajectory::{diff, CURRENT_SCHEMA};
use swizzle_qos::prof::{find_benches, trajectory_table, BenchDoc};

fn load_all() -> Vec<BenchDoc> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let found = find_benches(&dir);
    assert!(
        !found.is_empty(),
        "no BENCH_<n>.json under {}",
        dir.display()
    );
    found
        .iter()
        .map(|(n, path)| {
            let text = std::fs::read_to_string(path).expect("readable");
            let doc = BenchDoc::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(doc.pr, *n, "{}: pr field vs file name", path.display());
            doc
        })
        .collect()
}

#[test]
fn every_recorded_bench_document_parses() {
    let docs = load_all();
    for doc in &docs {
        assert!(
            doc.schema <= CURRENT_SCHEMA,
            "{}: future schema",
            doc.name()
        );
        assert!(!doc.cells.is_empty(), "{}: empty matrix", doc.name());
        for cell in &doc.cells {
            assert!(
                (0.0..=1.0).contains(&cell.decide_fraction),
                "{} radix{} {}: decide fraction {}",
                doc.name(),
                cell.radix,
                cell.load,
                cell.decide_fraction
            );
            assert!(!cell.engines.is_empty());
        }
    }
}

#[test]
fn current_schema_documents_render_byte_stably() {
    // The trajectory lives in git: one render pass must be a fixed
    // point, so regenerating a document never churns the diff.
    for doc in load_all().iter().filter(|d| d.schema == CURRENT_SCHEMA) {
        let rendered = doc.render();
        let reparsed = BenchDoc::parse(&rendered).expect("own render parses");
        assert_eq!(
            reparsed.render(),
            rendered,
            "{} not byte-stable",
            doc.name()
        );
    }
}

#[test]
fn newest_capture_holds_the_gate_against_its_predecessor() {
    let docs = load_all();
    if docs.len() < 2 {
        return; // a fresh trajectory has nothing to diff against
    }
    let (prev, next) = (&docs[docs.len() - 2], &docs[docs.len() - 1]);
    let report = diff(prev, next, 0.4);
    assert!(
        report.passed(),
        "{} regressed vs {}: {:?}",
        next.name(),
        prev.name(),
        report.regressions
    );
    // Same-profile captures must actually compare, not silently skip.
    if prev.profile == next.profile {
        assert!(report.skipped.is_none());
        assert!(!report.lines.is_empty());
    }
}

#[test]
fn trajectory_table_covers_every_recorded_pr() {
    let docs = load_all();
    let csv = trajectory_table(&docs).to_csv();
    for doc in &docs {
        assert!(
            csv.lines().any(|l| l.starts_with(&format!("{},", doc.pr))),
            "PR {} missing from trajectory table:\n{csv}",
            doc.pr
        );
    }
}
