//! Differential conformance: the sharded parallel engine AND the
//! word-wide bitpar engine must be **byte-identical** to the sequential
//! runner — same grants, same counters, same per-flow metrics, same
//! trace events — on every scenario.
//!
//! The battery sweeps seeded random request matrices across all three
//! SSVC counter policies and {BE, GB, GL} class mixes (216 scenarios),
//! runs each through the sequential [`Runner`], the [`ParRunner`] at 1,
//! 2, and 8 threads, and the [`BitparRunner`], and compares the
//! complete observable state. The final test exports the fig4-style
//! scenario's JSONL trace through all three engines and compares the
//! files byte for byte.

use std::io::Read as _;

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig, SwitchCounters};
use swizzle_qos::sim::{BitparRunner, ParRunner, Runner, Schedule};
use swizzle_qos::trace::{Event, RingSink};
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, Periodic, Saturating, UniformDest};
use swizzle_qos::types::{
    Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass, Xoshiro256StarStar,
};

const RADIX: usize = 8;
const WARMUP: u64 = 50;
const MEASURE: u64 = 400;
/// Thread counts the parallel engine is held to, per scenario.
const THREADS: &[usize] = &[1, 2, 8];

/// Which traffic classes a scenario mixes.
#[derive(Clone, Copy, Debug)]
enum Mix {
    BeOnly,
    GbBe,
    GbGlBe,
}

const POLICIES: &[CounterPolicy] = &[
    CounterPolicy::SubtractRealClock,
    CounterPolicy::Halve,
    CounterPolicy::Reset,
];
const MIXES: &[Mix] = &[Mix::BeOnly, Mix::GbBe, Mix::GbGlBe];
/// Seeds per (policy, mix) cell: 3 × 3 × 24 = 216 scenarios total.
const SEEDS_PER_CELL: u64 = 24;

/// Builds one seeded random scenario. Reservations, request matrix,
/// rates, and packet lengths are all drawn from the scenario's own
/// deterministic generator, so a scenario is a pure function of
/// `(policy, mix, seed)` and both engines receive identical copies.
fn build(policy: CounterPolicy, mix: Mix, seed: u64) -> QosSwitch {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut config = SwitchConfig::builder(Geometry::new(RADIX, 128).expect("valid geometry"))
        .policy(Policy::Ssvc(policy))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .sig_bits(3)
        .build()
        .expect("valid config");

    // GB reservations: 2-4 flows contending for one hot output.
    let hot = OutputId::new(rng.index(RADIX));
    let mut gb_inputs = Vec::new();
    if !matches!(mix, Mix::BeOnly) {
        let flows = 2 + rng.index(3);
        let budget = 0.2 + 0.6 * rng.f64();
        for _ in 0..flows {
            let mut input = InputId::new(rng.index(RADIX));
            while gb_inputs.contains(&input) {
                input = InputId::new(rng.index(RADIX));
            }
            let len = 1 << rng.index(4);
            config
                .reservations_mut()
                .reserve_gb(
                    input,
                    hot,
                    Rate::new(budget / flows as f64).expect("valid rate"),
                    len,
                )
                .expect("reservation fits");
            gb_inputs.push(input);
        }
    }
    if matches!(mix, Mix::GbGlBe) {
        config
            .reservations_mut()
            .reserve_gl(hot, Rate::new(0.02 + 0.06 * rng.f64()).expect("valid rate"))
            .expect("GL reservation fits");
    }

    let mut switch = QosSwitch::new(config).expect("valid switch");

    // GB traffic: saturating sources pinned to the reserved output.
    for &input in &gb_inputs {
        let len = 1 << rng.index(4);
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(len)),
                Box::new(FixedDest::new(hot)),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(input),
        );
    }
    // One GL flow from an unreserved input, when the mix has GL.
    if matches!(mix, Mix::GbGlBe) {
        let mut input = InputId::new(rng.index(RADIX));
        while gb_inputs.contains(&input) {
            input = InputId::new(rng.index(RADIX));
        }
        switch.add_injector(
            Injector::new(
                Box::new(Periodic::new(rng.range(40, 150), rng.below(20), 1)),
                Box::new(FixedDest::new(hot)),
                TrafficClass::GuaranteedLatency,
            )
            .for_input(input),
        );
        gb_inputs.push(input);
    }
    // BE background: every remaining input fires with some probability,
    // either at the hot output or uniformly.
    for i in 0..RADIX {
        let input = InputId::new(i);
        if gb_inputs.contains(&input) || !rng.chance(0.7) {
            continue;
        }
        let rate = 0.1 + 0.6 * rng.f64();
        let len = 1 << rng.index(3);
        let dest: Box<dyn swizzle_qos::traffic::DestinationPattern + Send + Sync> =
            if rng.chance(0.5) {
                Box::new(FixedDest::new(hot))
            } else {
                Box::new(UniformDest::new(RADIX, rng.next_u64()))
            };
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(rate, len, rng.next_u64())),
                dest,
                TrafficClass::BestEffort,
            )
            .for_input(input),
        );
    }
    switch
}

/// One engine run's complete observable state.
#[derive(PartialEq)]
struct Observation {
    counters: SwitchCounters,
    metrics: String,
    events: Vec<Event>,
}

/// Per-flow metrics across all three classes, serialized exactly:
/// integers verbatim, latency means as `f64` bit patterns.
fn metrics_csv(switch: &QosSwitch) -> String {
    use std::fmt::Write as _;
    let mut csv = String::new();
    for i in 0..RADIX {
        for o in 0..RADIX {
            let flow = FlowId::new(InputId::new(i), OutputId::new(o));
            for (label, metrics) in [
                ("BE", switch.be_metrics()),
                ("GB", switch.gb_metrics()),
                ("GL", switch.gl_metrics()),
            ] {
                let m = metrics.flow(flow);
                if m.packets() == 0 {
                    continue;
                }
                let _ = writeln!(
                    csv,
                    "{flow},{label},{},{},{:#x},{}",
                    m.packets(),
                    m.flits(),
                    m.mean_latency().to_bits(),
                    m.max_latency().unwrap_or(0),
                );
            }
        }
    }
    csv
}

fn observe(switch: &QosSwitch) -> Observation {
    Observation {
        counters: switch.counters(),
        metrics: metrics_csv(switch),
        events: switch
            .tracer()
            .ring()
            .map(RingSink::events)
            .unwrap_or_default(),
    }
}

/// Which engine drives a run.
#[derive(Clone, Copy, Debug)]
enum Sel {
    Seq,
    Par(usize),
    Bitpar,
}

fn run_engine(mut switch: QosSwitch, sel: Sel) -> Observation {
    switch.tracer_mut().attach_ring(1 << 16);
    let schedule = Schedule::new(Cycles::new(WARMUP), Cycles::new(MEASURE));
    match sel {
        Sel::Seq => {
            Runner::new(schedule).run(&mut switch);
        }
        Sel::Par(t) => {
            ParRunner::new(schedule, t).run(&mut switch);
        }
        Sel::Bitpar => {
            BitparRunner::new(schedule).run(&mut switch);
        }
    }
    observe(&switch)
}

fn assert_identical(
    seq: &Observation,
    other: &Observation,
    policy: CounterPolicy,
    mix: Mix,
    seed: u64,
    sel: Sel,
) {
    let tag = format!("[{policy:?}/{mix:?}/seed {seed} @ {sel:?}]");
    assert_eq!(seq.counters, other.counters, "{tag} counters diverged");
    assert_eq!(
        seq.metrics, other.metrics,
        "{tag} per-flow metrics diverged"
    );
    assert_eq!(
        seq.events.len(),
        other.events.len(),
        "{tag} event counts diverged"
    );
    for (n, (a, b)) in seq.events.iter().zip(other.events.iter()).enumerate() {
        assert_eq!(a, b, "{tag} first event divergence at index {n}");
    }
}

/// The headline battery: 216 seeded scenarios, each run through the
/// sequential engine, the sharded engine at 3 thread counts, and the
/// bitpar engine — every observable identical across all five runs.
#[test]
fn engines_are_bit_identical_across_seeded_scenarios() {
    for &policy in POLICIES {
        for &mix in MIXES {
            for s in 0..SEEDS_PER_CELL {
                // Spread cells across seed space so no two cells share
                // a generator stream.
                let seed = s
                    .wrapping_add(0x9E37_79B9 * (policy as u64 + 1))
                    .wrapping_add(0xC2B2_AE35 * (mix as u64 + 1));
                let seq = run_engine(build(policy, mix, seed), Sel::Seq);
                for &threads in THREADS {
                    let par = run_engine(build(policy, mix, seed), Sel::Par(threads));
                    assert_identical(&seq, &par, policy, mix, seed, Sel::Par(threads));
                }
                let bit = run_engine(build(policy, mix, seed), Sel::Bitpar);
                assert_identical(&seq, &bit, policy, mix, seed, Sel::Bitpar);
            }
        }
    }
}

/// A long saturated run exercising counter-policy epochs (decay, halve,
/// reset) far past the short battery's horizon, on all three engines.
#[test]
fn engines_match_on_long_saturated_run() {
    for &policy in POLICIES {
        let build_long = |policy| {
            let mut switch = build(policy, Mix::GbBe, 4242);
            switch.tracer_mut().attach_ring(1 << 17);
            switch
        };
        let schedule = Schedule::new(Cycles::new(500), Cycles::new(8_000));
        let mut seq_switch = build_long(policy);
        Runner::new(schedule).run(&mut seq_switch);
        let seq = observe(&seq_switch);
        let mut par_switch = build_long(policy);
        ParRunner::new(schedule, 4).run(&mut par_switch);
        let par = observe(&par_switch);
        assert!(
            seq == par,
            "{policy:?}: long-run par divergence (events {} vs {})",
            seq.events.len(),
            par.events.len()
        );
        let mut bit_switch = build_long(policy);
        BitparRunner::new(schedule).run(&mut bit_switch);
        let bit = observe(&bit_switch);
        assert!(
            seq == bit,
            "{policy:?}: long-run bitpar divergence (events {} vs {})",
            seq.events.len(),
            bit.events.len()
        );
    }
}

/// Builds the fig4-style saturated-GB scenario used by the paper's
/// throughput figure: eight saturating GB flows with skewed reserved
/// rates, all contending for output 0.
fn fig4_switch() -> QosSwitch {
    const FIG4_RATES: [f64; 8] = [0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05];
    let mut config = SwitchConfig::builder(Geometry::new(RADIX, 128).expect("valid geometry"))
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .sig_bits(4)
        .build()
        .expect("valid config");
    for (i, &r) in FIG4_RATES.iter().enumerate() {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(0),
                Rate::new(r).expect("valid rate"),
                8,
            )
            .expect("reservation fits");
    }
    let mut switch = QosSwitch::new(config).expect("valid switch");
    for i in 0..RADIX {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

/// Trace-ordering golden: the JSONL traces the parallel and bitpar
/// engines write for the fig4 scenario are byte-identical to the
/// sequential engine's — per-shard event buffers must merge back into
/// exactly the sequential emission order, and the word-wide decide path
/// must grant in exactly the sequential order.
#[test]
fn fig4_jsonl_trace_is_byte_identical() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let schedule = Schedule::new(Cycles::new(200), Cycles::new(3_000));

    let mut paths = Vec::new();
    for (label, sel) in [
        ("seq", Sel::Seq),
        ("par2", Sel::Par(2)),
        ("par8", Sel::Par(8)),
        ("bitpar", Sel::Bitpar),
    ] {
        let path = dir.join(format!("ssq-fig4-conformance-{pid}-{label}.jsonl"));
        let file = std::fs::File::create(&path).expect("create trace file");
        let mut switch = fig4_switch();
        switch
            .tracer_mut()
            .attach_jsonl(Box::new(std::io::BufWriter::new(file)));
        match sel {
            Sel::Seq => {
                Runner::new(schedule).run(&mut switch);
            }
            Sel::Par(t) => {
                ParRunner::new(schedule, t).run(&mut switch);
            }
            Sel::Bitpar => {
                BitparRunner::new(schedule).run(&mut switch);
            }
        }
        switch.tracer_mut().flush();
        assert!(
            switch.tracer().jsonl().and_then(|j| j.io_error()).is_none(),
            "trace write failed for {label}"
        );
        drop(switch);
        paths.push(path);
    }

    let mut golden = Vec::new();
    std::fs::File::open(&paths[0])
        .expect("open golden")
        .read_to_end(&mut golden)
        .expect("read golden");
    assert!(!golden.is_empty(), "sequential trace is empty");
    for path in &paths[1..] {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .expect("open parallel trace")
            .read_to_end(&mut bytes)
            .expect("read parallel trace");
        assert_eq!(
            golden,
            bytes,
            "parallel JSONL trace differs from sequential ({})",
            path.display()
        );
    }
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}
