//! Do per-output guarantees survive a multi-hop fabric?
//!
//! DESIGN.md §13 installs each guaranteed flow's reservation at every
//! hop along its route and holds every link to "Eq. 1 per hop"
//! (SSQ013). This example measures what that buys on a healthy fabric:
//! the same three flows — two well-behaved GB flows and one GL flow —
//! cross a 3-hop chain and a 2-level fat tree under each link
//! discipline (credit backpressure, lossy, NACK-retransmit), and the
//! table reports delivered rate against reservation and worst-case
//! end-to-end GL latency against the summed per-hop Eq. 1 budget.
//!
//! ```sh
//! cargo run --example fabric_adherence --release
//! ```

use swizzle_qos::core::BackoffPolicy;
use swizzle_qos::net::{Fabric, FlowSpec, LinkDiscipline, Topology};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::stats::Table;
use swizzle_qos::types::{bounds, Cycles, TrafficClass};

const WARMUP: u64 = 1_000;
const MEASURE: u64 = 40_000;
const LEN: u64 = 8;
const SEED: u64 = 7;

/// Two exactly-at-reservation GB flows and one GL flow, source node 0
/// to node 3 (the endpoints both shapes share). Offered load equals
/// the reserved rate: 8-flit packets every `len / rate` cycles.
fn flows() -> [FlowSpec; 3] {
    [
        FlowSpec::new(0, 3, TrafficClass::GuaranteedBandwidth)
            .rate(0.4)
            .every(20),
        FlowSpec::new(0, 3, TrafficClass::GuaranteedBandwidth)
            .ports(5, 5)
            .rate(0.2)
            .every(40),
        FlowSpec::new(0, 3, TrafficClass::GuaranteedLatency)
            .ports(6, 6)
            .rate(0.05)
            .every(160),
    ]
}

/// Summed per-hop Eq. 1 budget for the GL flow: each of `hops`
/// switches owes at most `gl_latency_bound` cycles, and each wire adds
/// its serialization plus propagation latency. The source switch
/// itself is one more arbitration stage, hence `hops + 1`.
fn gl_path_budget(hops: u64) -> u64 {
    let per_switch = bounds::gl_latency_bound(LEN, LEN, 1, 16);
    let per_wire = LEN.div_ceil(8) + 1; // capacity 8 flits/cycle, latency 1
    (hops + 1) * per_switch + hops * per_wire
}

fn main() {
    let shapes: [(&str, fn(LinkDiscipline) -> Topology, u64); 2] = [
        ("chain-3", |d| Topology::chain(3, d), 3),
        ("fat-tree", Topology::fat_tree, 2),
    ];
    let disciplines = [
        ("credit", LinkDiscipline::Credit),
        ("lossy", LinkDiscipline::Lossy),
        (
            "nack",
            LinkDiscipline::Nack(BackoffPolicy::exponential(8, 4, 2, 256)),
        ),
    ];

    let mut t = Table::with_columns(&[
        "topology",
        "links",
        "GB 0.40 got",
        "GB 0.20 got",
        "GL p100 / budget",
        "lost",
    ]);
    t.numeric();
    for (shape_name, build, hops) in shapes {
        for (disc_name, discipline) in disciplines {
            let mut fabric =
                Fabric::new(build(discipline), &flows(), SEED).expect("admissible fabric");
            let schedule = Schedule::new(Cycles::new(WARMUP), Cycles::new(MEASURE));
            Runner::new(schedule).run(&mut fabric);

            let elapsed = (WARMUP + MEASURE) as f64;
            let rate = |i: usize| fabric.flow_stats(i).delivered_flits as f64 / elapsed;
            let gl = fabric.flow_stats(2);
            let lost: u64 = (0..3).map(|i| fabric.flow_stats(i).lost_packets).sum();
            t.row(vec![
                shape_name.to_owned(),
                disc_name.to_owned(),
                format!("{:.3}", rate(0)),
                format!("{:.3}", rate(1)),
                format!("{} / {}", gl.latency_max, gl_path_budget(hops)),
                format!("{lost}"),
            ]);
        }
    }
    println!("{t}");
    println!("Offered load equals the reservation (8-flit packets, exact periods), so");
    println!("'got' should match the reserved column and the GL worst case should sit");
    println!("inside the summed per-hop Eq. 1 budget. The fat tree's shortest route is");
    println!("2 hops (leaf-spine-leaf), so its GL budget is one switch stage smaller.");
}
