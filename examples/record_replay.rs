//! Record / replay / inspect: run a stochastic workload once, capture it
//! as a portable trace file, replay the trace bit-identically, and dump
//! a GTKWave-compatible waveform of the replay — the debugging loop a
//! hardware team would actually use with this model.
//!
//! ```sh
//! cargo run --example record_replay --release
//! ```
//!
//! Artifacts land in the system temp directory and their paths are
//! printed.

use std::error::Error;

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::vcd::SwitchVcdRecorder;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::CycleModel;
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, TraceEvent, TraceFile, UniformDest};
use swizzle_qos::types::{Cycle, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

const CYCLES: u64 = 10_000;

fn config() -> Result<SwitchConfig, Box<dyn Error>> {
    let mut config = SwitchConfig::builder(Geometry::new(4, 128)?)
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .build()?;
    config
        .reservations_mut()
        .reserve_gb(InputId::new(0), OutputId::new(0), Rate::new(0.6)?, 4)?;
    config
        .reservations_mut()
        .reserve_gb(InputId::new(1), OutputId::new(0), Rate::new(0.3)?, 4)?;
    Ok(config)
}

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Record: a stochastic run with the delivery log on.
    let mut recorder = QosSwitch::new(config()?)?;
    recorder.set_delivery_log(true);
    recorder.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.5, 4, 1)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(0)),
    );
    recorder.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.25, 4, 2)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(1)),
    );
    recorder.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.2, 2, 3)),
            Box::new(UniformDest::new(4, 4)),
            TrafficClass::BestEffort,
        )
        .for_input(InputId::new(2)),
    );
    for c in 0..CYCLES {
        recorder.step(Cycle::new(c));
    }
    let deliveries = recorder.drain_deliveries();
    let trace = TraceFile::from_events(
        deliveries
            .iter()
            .map(|(_, spec)| TraceEvent {
                cycle: spec.created().value(),
                input: spec.flow().input(),
                output: spec.flow().output(),
                class: spec.class(),
                len_flits: spec.len_flits(),
            })
            .collect(),
    );
    let trace_path = std::env::temp_dir().join("swizzle_qos_demo.trace");
    std::fs::write(&trace_path, trace.to_string())?;
    println!(
        "recorded {} delivered packets -> {}",
        trace.len(),
        trace_path.display()
    );

    // 2. Replay the trace into a fresh switch, dumping a waveform.
    let text = std::fs::read_to_string(&trace_path)?;
    let parsed: TraceFile = text.parse()?;
    let mut replayer = QosSwitch::new(config()?)?;
    replayer.set_delivery_log(true);
    for injector in parsed.into_injectors()? {
        replayer.add_injector(injector);
    }
    let vcd_path = std::env::temp_dir().join("swizzle_qos_demo.vcd");
    let file = std::fs::File::create(&vcd_path)?;
    let mut waves = SwitchVcdRecorder::new(std::io::BufWriter::new(file), &replayer)?;
    for c in 0..CYCLES + 2_000 {
        let now = Cycle::new(c);
        replayer.step(now);
        waves.sample(&replayer, now)?;
    }
    waves.flush()?;
    let replayed = replayer.drain_deliveries();
    println!(
        "replayed {} packets; waveform -> {} (open with GTKWave)",
        replayed.len(),
        vcd_path.display()
    );

    // 3. Prove the replay is faithful: identical per-flow flit totals.
    let mut identical = true;
    for i in 0..4 {
        for o in 0..4 {
            let flow = FlowId::new(InputId::new(i), OutputId::new(o));
            let a =
                recorder.gb_metrics().flow(flow).flits() + recorder.be_metrics().flow(flow).flits();
            let b =
                replayer.gb_metrics().flow(flow).flits() + replayer.be_metrics().flow(flow).flits();
            if a != b {
                identical = false;
                println!("  {flow}: recorded {a} vs replayed {b} flits");
            }
        }
    }
    println!(
        "per-flow flit totals {} between recording and replay",
        if identical { "IDENTICAL" } else { "DIVERGED" }
    );
    Ok(())
}
