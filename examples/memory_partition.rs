//! Partitioning memory-controller bandwidth between applications — the
//! QoS use case the paper opens with ("QoS techniques regulate access to
//! a shared node, such as the memory controller, so that an application
//! can meet its needs without degrading the performance of other
//! applications").
//!
//! A 16×16 switch fronts two memory controllers. A latency-sensitive
//! real-time application reserves 50 % of controller 0; a throughput
//! batch job gets 30 %; best-effort cores scavenge the rest. The example
//! shows that when the batch job goes aggressive, the real-time
//! application's bandwidth and latency stay protected.
//!
//! ```sh
//! cargo run --example memory_partition --release
//! ```

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::stats::Table;
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, Saturating};
use swizzle_qos::types::{Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

const MC0: OutputId = OutputId::new(0);
const LEN: u64 = 4; // cache-line sized requests

fn run(batch_aggressive: bool) -> Result<(f64, f64, f64, f64), Box<dyn std::error::Error>> {
    let geometry = Geometry::new(16, 128)?;
    let mut config = SwitchConfig::builder(geometry)
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .build()?;
    // In0 = real-time app, In1 = batch job. With 4-flit requests the
    // channel delivers at most 4/5 = 0.8 flits/cycle (one arbitration
    // cycle per packet), so a 0.45 flits/cycle demand needs at least a
    // 0.45 / 0.8 ≈ 57% reservation to be covered in deliverable terms.
    config
        .reservations_mut()
        .reserve_gb(InputId::new(0), MC0, Rate::new(0.62)?, LEN)?;
    config
        .reservations_mut()
        .reserve_gb(InputId::new(1), MC0, Rate::new(0.3)?, LEN)?;

    let mut switch = QosSwitch::new(config)?;
    // Real-time app: steady 0.45 flits/cycle toward MC0.
    switch.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.45, LEN, 11)),
            Box::new(FixedDest::new(MC0)),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(0)),
    );
    // Batch job: polite (0.25) or aggressive (saturating).
    let batch: Box<dyn swizzle_qos::traffic::TrafficSource + Send + Sync> = if batch_aggressive {
        Box::new(Saturating::new(LEN))
    } else {
        Box::new(Bernoulli::new(0.25, LEN, 12))
    };
    switch.add_injector(
        Injector::new(
            batch,
            Box::new(FixedDest::new(MC0)),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(1)),
    );
    // Four best-effort cores also hammer MC0.
    for i in 2..6 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(LEN)),
                Box::new(FixedDest::new(MC0)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }

    let end = Runner::new(Schedule::new(Cycles::new(5_000), Cycles::new(60_000))).run(&mut switch);
    let rt = switch.gb_metrics().flow(FlowId::new(InputId::new(0), MC0));
    let batch = switch.gb_metrics().flow(FlowId::new(InputId::new(1), MC0));
    Ok((
        rt.throughput(end),
        rt.mean_latency(),
        batch.throughput(end),
        batch.mean_latency(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::with_columns(&[
        "batch behaviour",
        "real-time thrpt (wants 0.45)",
        "real-time latency",
        "batch thrpt",
        "batch latency",
    ]);
    table.numeric();
    let mut rt_throughputs = Vec::new();
    for aggressive in [false, true] {
        let (rt_t, rt_l, b_t, b_l) = run(aggressive)?;
        rt_throughputs.push(rt_t);
        table.row(vec![
            if aggressive {
                "saturating"
            } else {
                "polite (0.25)"
            }
            .to_owned(),
            format!("{rt_t:.3}"),
            format!("{rt_l:.1}"),
            format!("{b_t:.3}"),
            format!("{b_l:.1}"),
        ]);
    }
    println!("{table}");
    let degradation = (rt_throughputs[0] - rt_throughputs[1]).abs() / rt_throughputs[0];
    println!(
        "real-time bandwidth degradation when the batch job saturates: {:.1}%",
        degradation * 100.0
    );
    println!("The reservation isolates the real-time application's bandwidth from the");
    println!("flooding batch job (its latency rises with contention, but its accepted");
    println!("rate holds — the paper's guaranteed-bandwidth contract).");
    Ok(())
}
