//! Quickstart: build an SSVC switch, reserve bandwidth, and watch the
//! guarantees hold under congestion.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::stats::Table;
use swizzle_qos::traffic::{FixedDest, Injector, Saturating};
use swizzle_qos::types::{Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 Swizzle Switch with 128-bit channels (16 arbitration lanes)
    // running the paper's SSVC mechanism.
    let geometry = Geometry::new(8, 128)?;
    let mut config = SwitchConfig::builder(geometry)
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .build()?;

    // Reserve output 0's bandwidth: 40/20/10/10/5/5/5/5 % (Fig. 4b).
    let rates = [0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05];
    for (i, &r) in rates.iter().enumerate() {
        config.reservations_mut().reserve_gb(
            InputId::new(i),
            OutputId::new(0),
            Rate::new(r)?,
            8,
        )?;
    }

    // Every input floods the same output with 8-flit GB packets.
    let mut switch = QosSwitch::new(config)?;
    for i in 0..8 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }

    // 5k warm-up cycles, 50k measured.
    let end = Runner::new(Schedule::new(Cycles::new(5_000), Cycles::new(50_000))).run(&mut switch);

    let mut table = Table::with_columns(&[
        "flow",
        "reserved",
        "accepted (flits/cycle)",
        "share of capacity",
    ]);
    table.numeric();
    let capacity = 8.0 / 9.0; // 1 arbitration + 8 data cycles per packet
    for (i, &r) in rates.iter().enumerate() {
        let flow = FlowId::new(InputId::new(i), OutputId::new(0));
        let thr = switch.gb_metrics().flow(flow).throughput(end);
        table.row(vec![
            format!("In{i}"),
            format!("{:.0}%", r * 100.0),
            format!("{thr:.3}"),
            format!("{:.1}%", thr / capacity * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "output utilization: {:.3} flits/cycle (ceiling {:.3})",
        switch.output_throughput(OutputId::new(0), end),
        capacity
    );
    Ok(())
}
