//! A real-time SoC scenario from the paper's introduction: a base-station
//! style system where accelerators stream data to a shared DSP output
//! while cores occasionally raise interrupts and watchdog timers fire —
//! the Guaranteed Latency class in its intended role (§3.2: "infrequent,
//! time-critical messages, such as interrupts, that need to quickly pass
//! through the network").
//!
//! The example measures interrupt delivery latency with and without the
//! GL class and checks the measured worst case against Eq. 1's bound.
//!
//! ```sh
//! cargo run --example soc_interrupts --release
//! ```

use swizzle_qos::core::gl::{latency_bound, GlScenario};
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::stats::Table;
use swizzle_qos::traffic::{FixedDest, Injector, Periodic, Saturating};
use swizzle_qos::types::{Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

const DSP_OUT: OutputId = OutputId::new(0);
const STREAM_LEN: u64 = 8;

/// Builds the SoC: six streaming accelerators saturating the DSP output,
/// two cores raising 1-flit interrupts every ~600 cycles (offset so they
/// sometimes collide). `use_gl` selects whether interrupts ride the GL
/// class or are plain best-effort messages.
fn build(use_gl: bool) -> Result<QosSwitch, Box<dyn std::error::Error>> {
    let geometry = Geometry::new(8, 128)?;
    let mut config = SwitchConfig::builder(geometry)
        .policy(Policy::Ssvc(
            swizzle_qos::arbiter::CounterPolicy::SubtractRealClock,
        ))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .gl_buffer_flits(4)
        .build()?;
    for i in 0..6 {
        config.reservations_mut().reserve_gb(
            InputId::new(i),
            DSP_OUT,
            Rate::new(0.15)?,
            STREAM_LEN,
        )?;
    }
    if use_gl {
        config
            .reservations_mut()
            .reserve_gl(DSP_OUT, Rate::new(0.05)?)?;
    }
    let mut switch = QosSwitch::new(config)?;
    for i in 0..6 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(STREAM_LEN)),
                Box::new(FixedDest::new(DSP_OUT)),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    for (k, core) in [6usize, 7].into_iter().enumerate() {
        switch.add_injector(
            Injector::new(
                Box::new(Periodic::new(601, 293 * k as u64, 1)),
                Box::new(FixedDest::new(DSP_OUT)),
                if use_gl {
                    TrafficClass::GuaranteedLatency
                } else {
                    TrafficClass::BestEffort
                },
            )
            .for_input(InputId::new(core)),
        );
    }
    Ok(switch)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedule = Schedule::new(Cycles::new(5_000), Cycles::new(100_000));
    let mut table = Table::with_columns(&[
        "interrupt class",
        "delivered",
        "mean latency",
        "max latency",
        "p99 latency",
    ]);
    table.numeric();

    for use_gl in [false, true] {
        let mut switch = build(use_gl)?;
        let _ = Runner::new(schedule).run(&mut switch);
        let class_metrics = if use_gl {
            switch.gl_metrics()
        } else {
            switch.be_metrics()
        };
        let mut packets = 0;
        let mut mean = 0.0;
        let mut max = 0;
        let mut p99 = 0;
        for core in [6usize, 7] {
            let m = class_metrics.flow(FlowId::new(InputId::new(core), DSP_OUT));
            packets += m.packets();
            mean += m.mean_latency() * m.packets() as f64;
            max = max.max(m.max_latency().unwrap_or(0));
            p99 = p99.max(m.latency_percentile(99.0).unwrap_or(0));
        }
        mean /= packets.max(1) as f64;
        table.row(vec![
            if use_gl {
                "GL (this paper)"
            } else {
                "best effort"
            }
            .to_owned(),
            packets.to_string(),
            format!("{mean:.1}"),
            max.to_string(),
            p99.to_string(),
        ]);
        if use_gl {
            let bound = latency_bound(GlScenario::new(STREAM_LEN, 1, 2, 4));
            let wait = switch.gl_wait_histogram(DSP_OUT).max().unwrap_or(0);
            println!(
                "GL worst-case wait: measured {wait} cycles <= Eq.1 bound {bound} cycles: {}",
                if wait <= bound { "holds" } else { "VIOLATED" }
            );
        }
    }
    println!("{table}");
    println!("Interrupts over a saturated switch: as best-effort messages they starve");
    println!("outright (the streaming GB class always outranks BE, so zero interrupts");
    println!("are delivered — precisely the failure the GL class exists to fix), while");
    println!("the GL class delivers every one within a handful of cycles.");
    Ok(())
}
