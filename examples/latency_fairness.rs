//! The latency-fairness story of §3.1/§4.3 in miniature: one
//! low-bandwidth flow (2 %) competes with seven heavier flows under the
//! original Virtual Clock and under SSVC with each counter-management
//! policy. The original algorithm couples the 2 % flow's latency to its
//! tiny rate; the SSVC variants decouple them.
//!
//! ```sh
//! cargo run --example latency_fairness --release
//! ```

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::{Runner, Schedule};
use swizzle_qos::stats::Table;
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector};
use swizzle_qos::types::{Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

const LEN: u64 = 8;
/// A 2% flow among seven 14% flows.
const RATES: [f64; 8] = [0.02, 0.14, 0.14, 0.14, 0.14, 0.14, 0.14, 0.14];

fn run(policy: Policy) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let geometry = Geometry::new(8, 128)?;
    let mut config = SwitchConfig::builder(geometry)
        .policy(policy)
        .gb_buffer_flits(16)
        .sig_bits(4)
        .build()?;
    for (i, &r) in RATES.iter().enumerate() {
        config.reservations_mut().reserve_gb(
            InputId::new(i),
            OutputId::new(0),
            Rate::new(r)?,
            LEN,
        )?;
    }
    let mut switch = QosSwitch::new(config)?;
    for (i, &r) in RATES.iter().enumerate() {
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.85 * r, LEN, 31 + i as u64)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    let _ = Runner::new(Schedule::new(Cycles::new(10_000), Cycles::new(100_000))).run(&mut switch);
    let tiny = switch
        .gb_metrics()
        .flow(FlowId::new(InputId::new(0), OutputId::new(0)))
        .mean_latency();
    let heavy: f64 = (1..8)
        .map(|i| {
            switch
                .gb_metrics()
                .flow(FlowId::new(InputId::new(i), OutputId::new(0)))
                .mean_latency()
        })
        .sum::<f64>()
        / 7.0;
    Ok((tiny, heavy))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies = [
        (Policy::ExactVirtualClock, "Original Virtual Clock"),
        (
            Policy::Ssvc(CounterPolicy::SubtractRealClock),
            "SSVC subtract",
        ),
        (Policy::Ssvc(CounterPolicy::Halve), "SSVC halve"),
        (Policy::Ssvc(CounterPolicy::Reset), "SSVC reset"),
    ];
    let mut table = Table::with_columns(&[
        "policy",
        "2% flow latency",
        "14% flows latency",
        "penalty ratio",
    ]);
    table.numeric();
    for (policy, label) in policies {
        let (tiny, heavy) = run(policy)?;
        table.row(vec![
            label.to_owned(),
            format!("{tiny:.1}"),
            format!("{heavy:.1}"),
            format!("{:.2}x", tiny / heavy.max(1e-9)),
        ]);
    }
    println!("{table}");
    println!("Coarse counter comparison (plus LRG tie-breaks) cuts the small flow's");
    println!("latency penalty — the paper's Fig. 5 in a single configuration.");
    Ok(())
}
