//! Why the paper builds a *single-stage* switch: composing switches
//! breaks per-flow QoS.
//!
//! §4.4: "Scaling to more nodes involve composing multiple switches,
//! which makes the QoS technique more complex. Crosspoints will have to
//! be shared by several flows … It becomes increasingly difficult to
//! maintain separation between flows in buffers."
//!
//! This example quantifies that. Four sources (A–D) all target one final
//! output with reservations 40/10/40/10 %. A and C are well-behaved
//! (they inject at their reserved rates); B and D flood.
//!
//! * **single stage** — one 4×4 SSVC switch sees each source on its own
//!   input, so every flow has its own crosspoint state: A and C receive
//!   their full reservations despite the floods.
//! * **two stages** — sources pair up onto two inter-stage links (A+B on
//!   one, C+D on the other) through a first-stage switch without QoS;
//!   the second-stage SSVC switch then sees only two *merged* flows and
//!   can only protect the aggregates. Inside each shared buffer B's
//!   flood crowds A's packets out — A loses a large part of its
//!   guarantee to its own link partner.
//!
//! ```sh
//! cargo run --example two_stage_network --release
//! ```

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
use swizzle_qos::sim::CycleModel;
use swizzle_qos::stats::Table;
use swizzle_qos::types::{
    Cycle, FlowId, Geometry, InputId, OutputId, PacketId, PacketSpec, Rate, TrafficClass,
};

const SOURCES: usize = 4;
const RESERVED: [f64; SOURCES] = [0.4, 0.1, 0.4, 0.1];
const LEN: u64 = 4;
const FINAL_OUT: OutputId = OutputId::new(0);
const CYCLES: u64 = 60_000;

/// A hand-driven Bernoulli source (rate 1.0 = always backlogged).
/// Packet ids encode the source index in their low bits so delivered
/// packets can be attributed after flows merge.
struct Source {
    index: usize,
    next_seq: u64,
    /// Offered load in flits/cycle; 1.0 saturates.
    rate: f64,
    rng: u64,
}

impl Source {
    fn new(index: usize, rate: f64) -> Self {
        Source {
            index,
            next_seq: 0,
            rate,
            rng: 0x9E37_79B9_7F4A_7C15 ^ index as u64,
        }
    }

    fn wants_packet(&mut self) -> bool {
        // xorshift64* — deterministic per-source randomness.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let u = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        u < self.rate / LEN as f64
    }

    fn next_spec(&mut self, input: InputId, output: OutputId, now: Cycle) -> PacketSpec {
        let id = PacketId::new(self.next_seq * SOURCES as u64 + self.index as u64);
        self.next_seq += 1;
        PacketSpec::new(
            id,
            FlowId::new(input, output),
            TrafficClass::GuaranteedBandwidth,
            LEN,
            now,
        )
    }
}

/// A and C ask exactly their reserved share of the deliverable output
/// bandwidth (0.4 x 0.8 = 0.32 flits/cycle); B and D flood.
fn make_sources() -> Vec<Source> {
    (0..SOURCES)
        .map(|i| {
            let rate = if i % 2 == 0 { RESERVED[i] * 0.8 } else { 1.0 };
            Source::new(i, rate)
        })
        .collect()
}

fn source_of(spec: PacketSpec) -> usize {
    (spec.id().raw() % SOURCES as u64) as usize
}

fn ssvc_stage(reservations: &[(usize, usize, f64)]) -> QosSwitch {
    let mut config = SwitchConfig::builder(Geometry::new(4, 128).expect("valid"))
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .build()
        .expect("valid");
    for &(i, o, r) in reservations {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(o),
                Rate::new(r).expect("valid"),
                LEN,
            )
            .expect("fits");
    }
    QosSwitch::new(config).expect("valid switch")
}

/// Single-stage reference: each source has its own input and crosspoint.
fn run_single_stage() -> [u64; SOURCES] {
    let reservations: Vec<(usize, usize, f64)> = RESERVED
        .iter()
        .enumerate()
        .map(|(i, &r)| (i, FINAL_OUT.index(), r))
        .collect();
    let mut switch = ssvc_stage(&reservations);
    switch.set_delivery_log(true);
    let mut sources = make_sources();
    let mut delivered = [0u64; SOURCES];
    for c in 0..CYCLES {
        let now = Cycle::new(c);
        for (i, src) in sources.iter_mut().enumerate() {
            let input = InputId::new(i);
            let backlogged = src.rate >= 1.0;
            let fires = if backlogged { true } else { src.wants_packet() };
            if fires
                && switch
                    .port(input)
                    .has_room(TrafficClass::GuaranteedBandwidth, FINAL_OUT, LEN)
            {
                let spec = src.next_spec(input, FINAL_OUT, now);
                let _ = switch.offer_packet(spec, now);
            }
        }
        switch.step(now);
        for (_, spec) in switch.drain_deliveries() {
            delivered[source_of(spec)] += spec.len_flits();
        }
    }
    delivered
}

/// Two stages: stage 1 (no QoS) merges source pairs onto two links;
/// stage 2 (SSVC) can only reserve for the merged aggregates.
fn run_two_stage() -> [u64; SOURCES] {
    // Stage 1: plain LRG switch; A,B -> out0; C,D -> out1.
    let config1 = SwitchConfig::builder(Geometry::new(4, 128).expect("valid"))
        .policy(Policy::LrgOnly)
        .gb_buffer_flits(16)
        .build()
        .expect("valid");
    let mut stage1 = QosSwitch::new(config1).expect("valid switch");
    stage1.set_delivery_log(true);
    // Stage 2: SSVC reserving 50% per merged link toward the final output.
    let mut stage2 = ssvc_stage(&[(0, FINAL_OUT.index(), 0.5), (1, FINAL_OUT.index(), 0.5)]);
    stage2.set_delivery_log(true);

    let mut sources = make_sources();
    let mut delivered = [0u64; SOURCES];
    for c in 0..CYCLES {
        let now = Cycle::new(c);
        // Sources feed stage 1; pairs share an inter-stage link.
        for (i, src) in sources.iter_mut().enumerate() {
            let input = InputId::new(i);
            let link = OutputId::new(i / 2);
            let backlogged = src.rate >= 1.0;
            let fires = if backlogged { true } else { src.wants_packet() };
            if fires
                && stage1
                    .port(input)
                    .has_room(TrafficClass::GuaranteedBandwidth, link, LEN)
            {
                let spec = src.next_spec(input, link, now);
                let _ = stage1.offer_packet(spec, now);
            }
        }
        stage1.step(now);
        // Stage-1 deliveries hop onto stage 2: input = the link they rode,
        // destination = the final output. Ids (and creation times) carry over.
        for (_, spec) in stage1.drain_deliveries() {
            let link = spec.flow().output().index();
            let hop = PacketSpec::new(
                spec.id(),
                FlowId::new(InputId::new(link), FINAL_OUT),
                TrafficClass::GuaranteedBandwidth,
                spec.len_flits(),
                spec.created(),
            );
            // A full stage-2 buffer drops the packet (no inter-stage
            // backpressure in this sketch — one of the §4.4 buffer
            // conflicts composition has to solve).
            let _ = stage2.offer_packet(hop, now);
        }
        stage2.step(now);
        for (_, spec) in stage2.drain_deliveries() {
            delivered[source_of(spec)] += spec.len_flits();
        }
    }
    delivered
}

fn main() {
    let single = run_single_stage();
    let double = run_two_stage();
    let share = |d: &[u64; SOURCES], i: usize| d[i] as f64 / d.iter().sum::<u64>() as f64;

    let mut t = Table::with_columns(&[
        "source",
        "reserved",
        "single-stage share",
        "two-stage share",
    ]);
    t.numeric();
    for i in 0..SOURCES {
        t.row(vec![
            ["A", "B", "C", "D"][i].to_owned(),
            format!("{:.0}%", RESERVED[i] * 100.0),
            format!("{:.1}%", share(&single, i) * 100.0),
            format!("{:.1}%", share(&double, i) * 100.0),
        ]);
    }
    println!("{t}");
    println!("Single stage: every source owns a crosspoint, so SSVC protects A and C");
    println!("from their flooding neighbours. Two stages: A+B and C+D merge onto shared");
    println!("links and crosspoints, the second stage can only see the aggregates, and");
    println!("inside each shared buffer the flood crowds the well-behaved flow out of");
    println!("its guarantee — the flow-separation loss S4.4 warns about, and the reason");
    println!("the paper scales one switch to radix 64 instead of composing switches.");
}
