#!/usr/bin/env bash
# The full static + dynamic verification gate, in escalating order of
# cost. Everything here runs offline; a clean exit means the tree is
# shippable.
#
#   ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== source lint (ssq-lint via xtask) =="
# Token-aware engine (DESIGN.md §10): findings are diffed against the
# checked-in lint-baseline.txt and any NEW finding fails the gate. The
# machine-readable report is captured for tooling. After deliberately
# accepting a finding, regenerate the baseline with
#   cargo run -p xtask -- lint --update-baseline
# and commit the diff.
mkdir -p results
cargo run --quiet -p xtask -- lint --json > results/lint.json

echo "== baseline shrink gate =="
# The baseline may only lose entries over time (see the policy header in
# lint-baseline.txt): any change that GROWS the entry count versus the
# committed copy fails here. Skipped when git or the committed copy is
# unavailable (fresh checkouts, tarball builds).
if committed=$(git show HEAD:lint-baseline.txt 2>/dev/null); then
  now=$(grep -vc '^#' lint-baseline.txt || true)
  then=$(printf '%s\n' "$committed" | grep -vc '^#' || true)
  if [ "$now" -gt "$then" ]; then
    echo "lint-baseline.txt grew: $then -> $now entries." >&2
    echo "Fix, discharge, or waive the new finding instead of baselining it." >&2
    exit 1
  fi
  echo "baseline entries: $now (committed: $then) — ok"
else
  echo "baseline shrink gate skipped (no git history available)"
fi

echo "== model check + engine conformance, fast tier (xtask) =="
# The fast tier ends with the three-way engine differential battery:
# every scenario must be bit-identical on the sequential, sharded
# parallel, and word-wide bitpar engines.
cargo run --quiet -p xtask -- verify

echo "== release build =="
cargo build --workspace --release

echo "== fault smoke tier (ssq faults) =="
# Every single-fault chaos scenario must either preserve its bounds or
# revoke loudly; a silent violation fails the gate. Each scenario runs
# on all three engines (sequential, sharded parallel, bitpar) — any
# divergence between them is reported as a silent violation.
./target/release/ssq faults --smoke --csv

echo "== multi-hop fabric smoke tier (ssq net) =="
# Every topology-fault scenario (dead links, MTBF flaps, node
# partitions — across credit, lossy, and NACK link disciplines) must
# either preserve its end-to-end bounds or revoke loudly at a named
# hop. Each scenario runs twice from the same seed; any divergence is
# reported as a silent violation.
./target/release/ssq net --smoke --csv

echo "== tests =="
cargo test -q --workspace

echo "== perf regression gate (xtask bench --quick --diff) =="
# A shortened release-profile probe of the bench matrix (including the
# bitpar engine cells and the periodic idle-skip load), diffed against
# the newest recorded results/BENCH_<n>.json: any cell slower than
# 0.3x its recorded rate fails the gate. Thresholds are deliberately
# loose — this catches order-of-magnitude cliffs, not CI jitter (the
# idle-skipping bitpar cell structurally measures ~0.4x its full-matrix
# rate at the quick schedule, since a 500-cycle run amortizes fixed
# costs poorly when skipping makes the measured window tiny); the
# full matrix is recorded once per PR with `bench --json --diff`.
cargo run --quiet --release -p xtask -- bench --quick --diff --threshold 0.3

echo "All checks passed."
