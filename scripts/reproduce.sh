#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the ablations, writing
# one text report per experiment into results/.
#
#   ./scripts/reproduce.sh           # text reports
#   SSQ_CSV=1 ./scripts/reproduce.sh # CSV for plotting
set -euo pipefail
cd "$(dirname "$0")/.."

# Run the verification gate (fmt, lint, build, tests) first so broken
# trees never produce half-written results. Skip with SSQ_SKIP_CHECK=1.
if [[ "${SSQ_SKIP_CHECK:-0}" != 1 ]]; then
  ./scripts/check.sh
fi

mkdir -p results
BINARIES=(
  fig4
  fig5
  rate_adherence
  table1
  table2
  gl_bound
  scalability
  approximation
  ablation_fixed_priority
  ablation_schedulers
  ablation_chaining
  ablation_be_voq
  radix64
)

cargo build --release -p ssq-bench

# Headline reproductions run with the flight recorder armed: a stalled
# or guarantee-violating run dumps its last trace events to
# results/flight-<bin>.txt instead of silently producing bad numbers.
FLIGHT_RECORDED=(fig4 fig5 rate_adherence)

for bin in "${BINARIES[@]}"; do
  echo "== $bin =="
  args=()
  if [[ " ${FLIGHT_RECORDED[*]} " == *" $bin "* ]]; then
    args+=(--flight-recorder)
  fi
  cargo run --release --quiet -p ssq-bench --bin "$bin" -- ${args[@]+"${args[@]}"} | tee "results/$bin.txt"
  echo
done

echo "All reports written to results/."
