//! `ssq` — command-line front end to the swizzle-qos simulator.
//!
//! ```text
//! ssq simulate --radix 8 --policy ssvc-subtract \
//!     --reserve 0:0:40 --reserve 1:0:20 \
//!     --flow 0:0:GB:sat --flow 1:0:GB:sat --cycles 50000
//! ssq gl-bound --l-max 8 --l-min 1 --n-gl 4 --buffer 4
//! ssq gl-burst --l-max 8 --constraints 150,300,600
//! ssq storage --radix 64 --width 512
//! ssq frequency
//! ```
//!
//! Run `ssq help` (or any subcommand with `--help`) for the full option
//! list.

use std::error::Error;
use std::fmt;
use std::process::ExitCode;

use swizzle_qos::arbiter::CounterPolicy;
use swizzle_qos::check::trace::{analyze_trace_settings, TraceSettings};
use swizzle_qos::core::gl::{burst_budgets, latency_bound, GlScenario};
use swizzle_qos::core::vcd::SwitchVcdRecorder;
use swizzle_qos::core::{Policy, Preflight, QosSwitch, SwitchConfig};
use swizzle_qos::physical::{DelayModel, StorageModel, TABLE2_RADICES, TABLE2_WIDTHS};
use swizzle_qos::sim::{
    with_engine, BitparRunner, CycleModel, EventModel, MonitorOutcome, ParRunner, Runner, Schedule,
};
use swizzle_qos::stats::Table;
use swizzle_qos::trace::{flight, Event, MetricsRegistry, RingSink, TraceSummary};
use swizzle_qos::traffic::{Bernoulli, FixedDest, Injector, Saturating, TraceEvent, TraceFile};
use swizzle_qos::types::{Cycle, Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

/// CLI-level error with a user-facing message.
#[derive(Debug)]
struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

fn err(message: impl Into<String>) -> Box<dyn Error> {
    Box::new(CliError(message.into()))
}

const USAGE: &str = "\
ssq — quality-of-service for a high-radix switch (DAC 2014 reproduction)

USAGE:
  ssq simulate [OPTIONS]     run a switch simulation and print per-flow results
                             (a leading --option implies `simulate`)
  ssq trace-report [OPTIONS] summarize a JSONL event trace (grant latency
                             percentiles, inhibits, decay epochs, rejects)
  ssq verify [--deep]        model-check the arbitration pipeline: enumerate
                             every reachable state of a small switch and
                             check the V1-V6 invariant catalog (SSQV00x);
                             --deep adds the bounded 4x4 battery
  ssq faults [OPTIONS]       run the single-fault chaos-campaign catalog and
                             judge every scenario against the two-outcome
                             contract: bounds preserved, or a structured
                             revocation — never a silent violation
  ssq net [OPTIONS]          run the multi-hop chaos catalog: fabrics of QoS
                             switches under topology faults (dead links,
                             MTBF flaps, node partitions), judged end to
                             end by the per-hop/whole-path oracle
  ssq perf-report [OPTIONS]  render the cross-PR perf trajectory from the
                             recorded results/BENCH_<n>.json documents
  ssq gl-bound [OPTIONS]     evaluate the Eq. 1 worst-case GL waiting bound
  ssq gl-burst [OPTIONS]     evaluate the Eqs. 2-3 burst budgets
  ssq storage  [OPTIONS]     print the Table 1 storage model
  ssq frequency              print the Table 2 frequency model
  ssq help                   show this message

SIMULATE OPTIONS:
  --radix N               switch radix (default 8)
  --width BITS            output channel width in bits (default 128)
  --policy NAME           lrg | ssvc-subtract | ssvc-halve | ssvc-reset |
                          vc | gsf | wrr | dwrr | wfq | four-level
                          (default ssvc-subtract)
  --cycles N              measured cycles (default 50000)
  --warmup N              warm-up cycles (default 5000)
  --engine NAME           execution engine: seq (default); par, the
                          sharded parallel engine; or bitpar, the
                          word-wide engine with idle skipping — both
                          bit-identical to seq
  --threads N             worker threads for --engine par (default: the
                          machine's available parallelism)
  --reserve IN:OUT:PCT[:LEN]   GB reservation, PCT of the output's bandwidth
                               for IN's packets of LEN flits (LEN default 8)
  --gl-reserve OUT:PCT    GL class reservation at OUT
  --flow IN:OUT:CLASS:RATE[:LEN]  traffic: CLASS in {BE,GB,GL}; RATE is
                               flits/cycle or 'sat' for saturating
  --replay FILE           replay a traffic trace instead of --flow traffic
  --chaining              enable packet chaining
  --gl-policing           enable the GL usage policer
  --fabric-check          verify every SSVC/GL arbitration against the
                          bit-level inhibit fabric (panics on divergence)
  --vcd FILE              dump a waveform of the run
  --capture FILE          write delivered packets as a replayable trace
  --csv                   emit the report as CSV

OBSERVABILITY OPTIONS (simulate):
  --trace                 emit one JSONL event per arbitration decision,
                          grant, inhibit, auxVC update, decay epoch, GL
                          dispatch, and admission rejection
  --trace-out FILE        JSONL destination (default results/trace.jsonl)
  --metrics-interval N    snapshot switch metrics every N cycles into a
                          time series (0 = off)
  --metrics-out FILE      time-series destination (default
                          results/metrics.csv; .json extension switches
                          the format)
  --flight-recorder       keep the last --flight-capacity events in a
                          ring and dump them (with metrics) to results/
                          on a stall, a violated GL bound, or a panic
  --flight-capacity N     flight-recorder ring size (default 4096)
  --stall-window N        cycles of pending-but-stuck work before the
                          watchdog trips (default 10000)
  --gl-bound N            arm the GL wait watchdog at N cycles (Eq. 1)
  --prof                  time every measured cycle's phases and print the
                          prepare/decide/commit (seq) or gather/decide/
                          merge (par) breakdown; needs a build with
                          `--features prof`, and is incompatible with the
                          monitored modes (--flight-recorder, --gl-bound)

PERF-REPORT OPTIONS:
  --results DIR           directory holding BENCH_<n>.json (default results)
  --csv                   emit the trajectory table as CSV

TRACE-REPORT OPTIONS:
  --in FILE               JSONL trace to summarize (default
                          results/trace.jsonl)
  --csv                   emit the grant-latency table as CSV

FAULTS OPTIONS:
  --smoke                 run the whole catalog (the default; this is the
                          fault smoke tier scripts/check.sh invokes)
  --scenario NAME         run one catalog scenario by name
  --seed N                campaign seed; MTBF-mode schedules replay
                          bit-identically from it (default 7)
  --trace-dir DIR         write each scenario's event trace to
                          DIR/<scenario>.jsonl
  --csv                   emit the verdict table as CSV

NET OPTIONS:
  --smoke                 run the whole catalog, each scenario twice from
                          the same seed as a determinism differential
                          (the default; scripts/check.sh invokes this)
  --scenario NAME         run one catalog scenario by name
  --seed N                campaign seed; MTBF schedules and NACK jitter
                          replay bit-identically from it (default 7)
  --trace-dir DIR         write each scenario's fabric hop events to
                          DIR/<scenario>.jsonl and each node's ring to
                          DIR/<scenario>.node<i>.jsonl
  --csv                   emit the verdict table as CSV

GL-BOUND OPTIONS:
  --l-max N --l-min N --n-gl N --buffer N   (defaults 8, 1, 1, 4)

GL-BURST OPTIONS:
  --l-max N --constraints L1,L2,...   latency constraints, tightest first

STORAGE OPTIONS:
  --radix N --width BITS --flit-bytes N --buffer-flits N
  (defaults: the paper's 64 / 512 / 64 / 4)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `ssq help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("trace-report") => trace_report(&args[1..]),
        Some("perf-report") => perf_report(&args[1..]),
        // A leading option means `simulate` was implied:
        // `ssq --trace --flow 0:0:GB:sat` just works.
        Some(leading) if leading.starts_with("--") && leading != "--help" => simulate(args),
        Some("verify") => verify(&args[1..]),
        Some("faults") => faults_cmd(&args[1..]),
        Some("net") => net_cmd(&args[1..]),
        Some("gl-bound") => gl_bound(&args[1..]),
        Some("gl-burst") => gl_burst(&args[1..]),
        Some("storage") => storage(&args[1..]),
        Some("frequency") => {
            frequency();
            Ok(())
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(err(format!("unknown subcommand {other:?}"))),
    }
}

/// A parsed option stream: `--key value` pairs plus boolean flags.
struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], flag_names: &[&str]) -> Result<Self, Box<dyn Error>> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(err(format!("unexpected argument {arg:?}")));
            };
            if key == "help" {
                return Err(err("help requested"));
            }
            if flag_names.contains(&key) {
                flags.push(key.to_owned());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| err(format!("--{key} needs a value")))?;
            pairs.push((key.to_owned(), value.clone()));
        }
        Ok(Opts { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.pairs
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, key: &str, default: u64) -> Result<u64, Box<dyn Error>> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key}: invalid number {v:?}"))),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn parse_policy(name: &str) -> Result<Policy, Box<dyn Error>> {
    Ok(match name {
        "lrg" => Policy::LrgOnly,
        "ssvc-subtract" => Policy::Ssvc(CounterPolicy::SubtractRealClock),
        "ssvc-halve" => Policy::Ssvc(CounterPolicy::Halve),
        "ssvc-reset" => Policy::Ssvc(CounterPolicy::Reset),
        "vc" => Policy::ExactVirtualClock,
        "gsf" => Policy::Gsf,
        "wrr" => Policy::Wrr,
        "dwrr" => Policy::Dwrr,
        "wfq" => Policy::Wfq,
        "four-level" => Policy::FourLevel,
        other => return Err(err(format!("unknown policy {other:?}"))),
    })
}

fn parse_class(name: &str) -> Result<TrafficClass, Box<dyn Error>> {
    Ok(match name {
        "BE" | "be" => TrafficClass::BestEffort,
        "GB" | "gb" => TrafficClass::GuaranteedBandwidth,
        "GL" | "gl" => TrafficClass::GuaranteedLatency,
        other => return Err(err(format!("unknown class {other:?}"))),
    })
}

/// `IN:OUT:PCT[:LEN]`
fn parse_reserve(spec: &str) -> Result<(usize, usize, f64, u64), Box<dyn Error>> {
    let parts: Vec<&str> = spec.split(':').collect();
    if !(3..=4).contains(&parts.len()) {
        return Err(err(format!(
            "--reserve {spec:?}: expected IN:OUT:PCT[:LEN]"
        )));
    }
    let input: usize = parts[0].parse().map_err(|_| err("bad input index"))?;
    let output: usize = parts[1].parse().map_err(|_| err("bad output index"))?;
    let pct: f64 = parts[2].parse().map_err(|_| err("bad percentage"))?;
    let len: u64 = parts
        .get(3)
        .map_or(Ok(8), |s| s.parse().map_err(|_| err("bad packet length")))?;
    Ok((input, output, pct / 100.0, len))
}

/// Parsed `--flow` spec: input, output, class, rate (None = saturating),
/// and packet length.
type FlowSpec = (usize, usize, TrafficClass, Option<f64>, u64);

/// `IN:OUT:CLASS:RATE[:LEN]`
fn parse_flow(spec: &str) -> Result<FlowSpec, Box<dyn Error>> {
    let parts: Vec<&str> = spec.split(':').collect();
    if !(4..=5).contains(&parts.len()) {
        return Err(err(format!(
            "--flow {spec:?}: expected IN:OUT:CLASS:RATE[:LEN]"
        )));
    }
    let input: usize = parts[0].parse().map_err(|_| err("bad input index"))?;
    let output: usize = parts[1].parse().map_err(|_| err("bad output index"))?;
    let class = parse_class(parts[2])?;
    let rate = if parts[3] == "sat" {
        None
    } else {
        Some(parts[3].parse().map_err(|_| err("bad rate"))?)
    };
    let len: u64 = parts
        .get(4)
        .map_or(Ok(8), |s| s.parse().map_err(|_| err("bad packet length")))?;
    Ok((input, output, class, rate, len))
}

/// The metrics the CLI samples from the switch on each
/// `--metrics-interval` boundary.
struct MetricsProbe {
    registry: MetricsRegistry,
    gauges: [swizzle_qos::trace::GaugeId; 5],
}

impl MetricsProbe {
    fn new(interval: u64) -> Self {
        let mut registry = MetricsRegistry::new(interval);
        let gauges = [
            registry.register_gauge("delivered_packets"),
            registry.register_gauge("delivered_flits"),
            registry.register_gauge("dropped_packets"),
            registry.register_gauge("chained_packets"),
            registry.register_gauge("gl_policed_cycles"),
        ];
        MetricsProbe { registry, gauges }
    }

    fn observe(&mut self, switch: &QosSwitch, now: Cycle) {
        if !self.registry.due(now.value()) {
            return;
        }
        let c = switch.counters();
        let values = [
            c.delivered_packets,
            c.delivered_flits,
            c.dropped_packets,
            c.chained_packets,
            c.gl_policed_cycles,
        ];
        for (&id, &v) in self.gauges.iter().zip(&values) {
            self.registry.set_gauge(id, v as f64);
        }
        self.registry.snapshot(now.value());
    }
}

/// Creates the parent directory of `path` (if any) so output files can
/// land in not-yet-existing directories like `results/`.
fn ensure_parent(path: &str) -> Result<(), Box<dyn Error>> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| err(format!("creating {}: {e}", dir.display())))?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn simulate(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(
        args,
        &[
            "chaining",
            "gl-policing",
            "csv",
            "fabric-check",
            "trace",
            "flight-recorder",
            "prof",
        ],
    )?;
    let radix = opts.num("radix", 8)? as usize;
    let width = opts.num("width", 128)? as usize;
    let cycles = opts.num("cycles", 50_000)?;
    let warmup = opts.num("warmup", 5_000)?;
    let policy = parse_policy(opts.get("policy").unwrap_or("ssvc-subtract"))?;
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum EngineChoice {
        Seq,
        Par,
        Bitpar,
    }
    let engine = match opts.get("engine").unwrap_or("seq") {
        "seq" => EngineChoice::Seq,
        "par" => EngineChoice::Par,
        "bitpar" => EngineChoice::Bitpar,
        other => {
            return Err(err(format!(
                "--engine: expected seq, par, or bitpar, got {other:?}"
            )))
        }
    };
    let parallel = engine == EngineChoice::Par;
    let threads = match opts.num("threads", 0)? as usize {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    };

    // Observability settings, preflighted for consistency (SSQ011).
    let tracing = opts.flag("trace");
    let trace_out = opts.get("trace-out").unwrap_or("results/trace.jsonl");
    let metrics_interval = opts.num("metrics-interval", 0)?;
    let metrics_out = opts.get("metrics-out").unwrap_or("results/metrics.csv");
    let flight = opts.flag("flight-recorder");
    let flight_capacity = opts.num("flight-capacity", 4_096)? as usize;
    let stall_window = opts.num("stall-window", 10_000)?;
    let gl_bound = match opts.get("gl-bound") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| err(format!("--gl-bound: invalid number {v:?}")))?,
        ),
    };
    let profiling = opts.flag("prof");
    if profiling && engine == EngineChoice::Bitpar {
        return Err(err(
            "--prof instruments the dense per-port cycle loop; the bitpar \
             engine's word-wide fast path bypasses it — profile with \
             --engine seq or par",
        ));
    }
    if profiling && (flight || gl_bound.is_some()) {
        return Err(err(
            "--prof times the plain measurement loop; drop --flight-recorder/--gl-bound \
             (the monitored runner arms its own schedule, so the phase \
             breakdown would mix warm-up into the accumulators)",
        ));
    }
    let trace_diag = analyze_trace_settings(&TraceSettings {
        tracing,
        trace_out: opts.get("trace-out").map(str::to_owned),
        metrics_interval,
        flight_recorder: flight,
        flight_capacity,
        total_cycles: warmup + cycles,
    });
    if !trace_diag.is_empty() && !opts.flag("csv") {
        print!("{trace_diag}");
    }

    let geometry = Geometry::new(radix, width)?;
    let mut config = SwitchConfig::builder(geometry)
        .policy(policy)
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .packet_chaining(opts.flag("chaining"))
        .gl_policing(opts.flag("gl-policing"))
        .fabric_checked(opts.flag("fabric-check"))
        .build()?;
    for spec in opts.get_all("reserve") {
        let (input, output, rate, len) = parse_reserve(spec)?;
        config.reservations_mut().reserve_gb(
            InputId::new(input),
            OutputId::new(output),
            Rate::new(rate)?,
            len,
        )?;
    }
    for spec in opts.get_all("gl-reserve") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 2 {
            return Err(err(format!("--gl-reserve {spec:?}: expected OUT:PCT")));
        }
        let output: usize = parts[0].parse().map_err(|_| err("bad output index"))?;
        let pct: f64 = parts[1].parse().map_err(|_| err("bad percentage"))?;
        config
            .reservations_mut()
            .reserve_gl(OutputId::new(output), Rate::new(pct / 100.0)?)?;
    }

    if !opts.flag("csv") {
        println!("config: {config}");
    }
    let mut switch = QosSwitch::new(config)?;
    if opts.get("capture").is_some() {
        switch.set_delivery_log(true);
    }
    if let Some(path) = opts.get("replay") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("reading trace {path:?}: {e}")))?;
        let trace: TraceFile = text.parse()?;
        for injector in trace.into_injectors()? {
            switch.add_injector(injector);
        }
    }
    if tracing {
        ensure_parent(trace_out)?;
        let file = std::fs::File::create(trace_out)
            .map_err(|e| err(format!("creating {trace_out:?}: {e}")))?;
        switch
            .tracer_mut()
            .attach_jsonl(Box::new(std::io::BufWriter::new(file)));
    }
    if flight {
        switch.tracer_mut().attach_ring(flight_capacity.max(1));
    }
    switch.set_gl_wait_bound(gl_bound);
    let mut probe = (metrics_interval > 0).then(|| MetricsProbe::new(metrics_interval));
    for (n, spec) in opts.get_all("flow").enumerate() {
        let (input, output, class, rate, len) = parse_flow(spec)?;
        let source: Box<dyn swizzle_qos::traffic::TrafficSource + Send + Sync> = match rate {
            None => Box::new(Saturating::new(len)),
            Some(r) => Box::new(Bernoulli::new(r, len, 0x55_u64 + n as u64)),
        };
        switch.add_injector(
            Injector::new(
                source,
                Box::new(FixedDest::new(OutputId::new(output))),
                class,
            )
            .for_input(InputId::new(input)),
        );
    }

    // Preflight: refuse to simulate a configuration whose guarantees
    // cannot hold; surface warnings either way.
    let report = switch.preflight();
    if !report.is_empty() && !opts.flag("csv") {
        print!("{report}");
    }
    if report.has_errors() {
        return Err(err("static analysis found errors; configuration refused"));
    }

    // Run, optionally with a VCD probe (which requires the manual loop).
    let mut vcd = match opts.get("vcd") {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| err(format!("creating {path:?}: {e}")))?;
            Some(SwitchVcdRecorder::new(
                std::io::BufWriter::new(file),
                &switch,
            )?)
        }
        None => None,
    };
    let now;
    // The parallel engine's stage profile must be read out before the
    // engine (and its workers) wind down at the end of `with_engine`.
    let mut par_prof: Option<swizzle_qos::prof::ProfReport> = None;
    if flight || gl_bound.is_some() {
        // Monitored run: the watchdog trips on a stall, a violated GL
        // bound, or (via the unwind hook below) a debug assertion, and
        // the flight recorder dumps its history to results/.
        let mut vcd_error: Option<std::io::Error> = None;
        let schedule = Schedule::new(Cycles::new(warmup), Cycles::new(cycles));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let observe = |sw: &QosSwitch, at: Cycle| {
                if let Some(rec) = &mut vcd {
                    if let Err(e) = rec.sample(sw, at) {
                        vcd_error.get_or_insert(e);
                    }
                }
                if let Some(p) = &mut probe {
                    p.observe(sw, at);
                }
            };
            match engine {
                EngineChoice::Par => ParRunner::new(schedule, threads).run_monitored(
                    &mut switch,
                    Cycles::new(stall_window.max(1)),
                    observe,
                ),
                // Monitored bitpar runs are dense (the watchdog is
                // defined per executed cycle) but keep the fast path.
                EngineChoice::Bitpar => BitparRunner::new(schedule).run_monitored(
                    &mut switch,
                    Cycles::new(stall_window.max(1)),
                    observe,
                ),
                EngineChoice::Seq => Runner::new(schedule).run_monitored(
                    &mut switch,
                    Cycles::new(stall_window.max(1)),
                    observe,
                ),
            }
        }));
        let dump = |switch: &mut QosSwitch,
                    probe: &Option<MetricsProbe>,
                    name: &str,
                    reason: &str,
                    at: u64| {
            switch.tracer_mut().flush();
            let events = switch
                .tracer()
                .ring()
                .map(RingSink::events)
                .unwrap_or_default();
            flight::write_post_mortem(
                std::path::Path::new("results"),
                name,
                at,
                reason,
                at,
                &events,
                probe.as_ref().map(|p| &p.registry),
            )
        };
        let outcome = match caught {
            Ok(outcome) => outcome,
            Err(panic) => {
                let at = switch.now_hint().value();
                match dump(
                    &mut switch,
                    &probe,
                    "panic",
                    "panic during simulation (failed debug assertion?)",
                    at,
                ) {
                    Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
                    Err(e) => eprintln!("flight recorder dump failed: {e}"),
                }
                std::panic::resume_unwind(panic);
            }
        };
        if let Some(e) = vcd_error {
            return Err(err(format!("writing vcd: {e}")));
        }
        match outcome {
            MonitorOutcome::Completed(at) => now = at,
            MonitorOutcome::Tripped { at, reason } => {
                let path = dump(&mut switch, &probe, "trip", &reason, at.value())
                    .map_err(|e| err(format!("writing post-mortem: {e}")))?;
                return Err(err(format!(
                    "run tripped at cycle {at}: {reason}\npost-mortem written to {}",
                    path.display()
                )));
            }
        }
    } else if parallel {
        // The same manual loop, on the sharded engine: workers persist
        // across cycles and park while the probes observe the model.
        let mut vcd_error: Option<std::io::Error> = None;
        let (end, _load) = with_engine(threads, &mut switch, |engine| {
            let mut at = Cycle::ZERO;
            for _ in 0..warmup {
                engine.step(at);
                at = at.next();
            }
            engine.with_model(|m| m.begin_measurement(at));
            if profiling {
                // Arm at the measurement boundary so warm-up never
                // lands in the stage accumulators.
                engine.prof_arm(1);
            }
            for _ in 0..cycles {
                engine.step(at);
                engine.with_model(|m| {
                    if let Some(rec) = &mut vcd {
                        if let Err(e) = rec.sample(m, at) {
                            vcd_error.get_or_insert(e);
                        }
                    }
                    if let Some(p) = &mut probe {
                        p.observe(m, at);
                    }
                });
                at = at.next();
            }
            par_prof = engine.prof_report();
            at
        });
        if let Some(e) = vcd_error {
            return Err(err(format!("writing vcd: {e}")));
        }
        now = end;
    } else if engine == EngineChoice::Bitpar {
        if vcd.is_some() || probe.is_some() {
            // Probes sample per executed cycle, so idle skipping would
            // change what they record; keep the word-wide fast path but
            // step densely.
            let mut at = Cycle::ZERO;
            for _ in 0..warmup {
                switch.step_fast(at);
                at = at.next();
            }
            switch.begin_measurement(at);
            for _ in 0..cycles {
                switch.step_fast(at);
                if let Some(rec) = &mut vcd {
                    rec.sample(&switch, at)?;
                }
                if let Some(p) = &mut probe {
                    p.observe(&switch, at);
                }
                at = at.next();
            }
            now = at;
        } else {
            let schedule = Schedule::new(Cycles::new(warmup), Cycles::new(cycles));
            now = BitparRunner::new(schedule).run(&mut switch);
        }
    } else {
        let mut at = Cycle::ZERO;
        for _ in 0..warmup {
            switch.step(at);
            at = at.next();
        }
        switch.begin_measurement(at);
        if profiling {
            // Arm at the measurement boundary so warm-up never lands in
            // the phase accumulators.
            switch.prof_arm(1);
        }
        for _ in 0..cycles {
            switch.step(at);
            if let Some(rec) = &mut vcd {
                rec.sample(&switch, at)?;
            }
            if let Some(p) = &mut probe {
                p.observe(&switch, at);
            }
            at = at.next();
        }
        now = at;
    }
    if let Some(rec) = &mut vcd {
        rec.flush()?;
    }
    switch.tracer_mut().flush();
    if let Some(e) = switch.tracer().jsonl().and_then(|j| j.io_error()) {
        return Err(err(format!("writing trace {trace_out:?}: {e}")));
    }
    if tracing && !opts.flag("csv") {
        println!("event trace written to {trace_out}");
    }
    if let Some(p) = &probe {
        ensure_parent(metrics_out)?;
        let table = p.registry.to_table();
        let rendered = if metrics_out.ends_with(".json") {
            table.to_json()
        } else {
            table.to_csv()
        };
        std::fs::write(metrics_out, rendered)
            .map_err(|e| err(format!("writing metrics {metrics_out:?}: {e}")))?;
        if !opts.flag("csv") {
            println!(
                "metrics time series ({} samples) written to {metrics_out}",
                p.registry.samples()
            );
        }
    }
    if let Some(path) = opts.get("capture") {
        let events: Vec<TraceEvent> = switch
            .drain_deliveries()
            .into_iter()
            .map(|(_, spec)| TraceEvent {
                cycle: spec.created().value(),
                input: spec.flow().input(),
                output: spec.flow().output(),
                class: spec.class(),
                len_flits: spec.len_flits(),
            })
            .collect();
        let trace = TraceFile::from_events(events);
        std::fs::write(path, trace.to_string())
            .map_err(|e| err(format!("writing capture {path:?}: {e}")))?;
        println!("captured {} delivered packets to {path}", trace.len());
    }

    // Report.
    let mut table = Table::with_columns(&[
        "flow",
        "class",
        "packets",
        "throughput (flits/cycle)",
        "mean latency",
        "max latency",
    ]);
    table.numeric();
    for i in 0..radix {
        for o in 0..radix {
            let flow = FlowId::new(InputId::new(i), OutputId::new(o));
            for (label, metrics) in [
                ("BE", switch.be_metrics()),
                ("GB", switch.gb_metrics()),
                ("GL", switch.gl_metrics()),
            ] {
                let m = metrics.flow(flow);
                if m.packets() == 0 {
                    continue;
                }
                table.row(vec![
                    flow.to_string(),
                    label.to_owned(),
                    m.packets().to_string(),
                    format!("{:.4}", m.throughput(now)),
                    format!("{:.1}", m.mean_latency()),
                    m.max_latency().unwrap_or(0).to_string(),
                ]);
            }
        }
    }
    if opts.flag("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
        let c = switch.counters();
        println!(
            "\noffered {} / accepted {} / delivered {} packets; dropped {}, demoted {}, chained {}",
            c.offered_packets,
            c.accepted_packets,
            c.delivered_packets,
            c.dropped_packets,
            c.demoted_packets,
            c.chained_packets,
        );
    }
    if profiling && !opts.flag("csv") {
        let report = if parallel {
            par_prof
        } else {
            switch.prof_report()
        };
        match report {
            Some(r) => {
                if parallel {
                    println!("\nengine stage profile (gather/decide/merge):");
                } else {
                    println!("\ncycle-phase profile (prepare/decide/commit):");
                }
                print!("{}", r.render_text());
            }
            None => println!(
                "\n--prof: this build compiled the profiler hooks out; rebuild \
                 with `cargo run --features prof --bin ssq -- ...` to get the \
                 phase breakdown"
            ),
        }
    }
    Ok(())
}

fn trace_report(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["csv"])?;
    let path = opts.get("in").unwrap_or("results/trace.jsonl");
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("reading trace {path:?}: {e}")))?;
    let mut events = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(Event::from_jsonl(line).map_err(|e| err(format!("{path}:{}: {e}", n + 1)))?);
    }
    let summary = TraceSummary::from_events(events);
    if opts.flag("csv") {
        print!("{}", summary.grant_table().to_csv());
        return Ok(());
    }
    match summary.span {
        Some((lo, hi)) => println!("{} events over cycles {lo}..={hi} ({path})", summary.events),
        None => {
            println!("empty trace ({path})");
            return Ok(());
        }
    }
    println!("\nper-flow grant latency (cycles):");
    print!("{}", summary.grant_table().to_text());
    if !summary.inhibits.is_empty() {
        println!("\ninhibits and auxVC saturations:");
        print!("{}", summary.contention_table().to_text());
    }
    if !summary.decay_epochs.is_empty() || !summary.gl_policed_cycles.is_empty() {
        println!("\nper-output decay epochs / policed cycles:");
        print!("{}", summary.output_table().to_text());
    }
    if !summary.rejects.is_empty() {
        println!("\nadmission rejections:");
        print!("{}", summary.reject_table().to_text());
    }
    Ok(())
}

/// `ssq perf-report [--results DIR] [--csv]`: parse every recorded
/// `BENCH_<n>.json` under the results directory and render the cross-PR
/// perf trajectory (throughput, decide fraction) as one table.
fn perf_report(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["csv"])?;
    let dir = opts.get("results").unwrap_or("results");
    let found = swizzle_qos::prof::find_benches(std::path::Path::new(dir));
    if found.is_empty() {
        return Err(err(format!(
            "no BENCH_<n>.json documents under {dir:?}; record one with \
             `cargo run --release -p xtask -- bench --json`"
        )));
    }
    let mut docs = Vec::new();
    for (_, path) in &found {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("reading {}: {e}", path.display())))?;
        docs.push(
            swizzle_qos::prof::BenchDoc::parse(&text)
                .map_err(|e| err(format!("{}: {e}", path.display())))?,
        );
    }
    let table = swizzle_qos::prof::trajectory_table(&docs);
    if opts.flag("csv") {
        print!("{}", table.to_csv());
        return Ok(());
    }
    println!(
        "perf trajectory: {} document(s), PR {} to {} ({dir}/BENCH_<n>.json)",
        docs.len(),
        found.first().map_or(0, |(n, _)| *n),
        found.last().map_or(0, |(n, _)| *n),
    );
    print!("{}", table.to_text());
    println!(
        "\nphases are wall-clock per measured cycle; amdahl rows in the \
         documents are labelled projections, not measurements"
    );
    Ok(())
}

/// `ssq verify [--deep]`: run the bounded exhaustive model checker over
/// the fast-tier (and optionally deep-tier) scenario batteries. Exits
/// with an error — printing the minimal counterexample as replayable
/// ssq-trace JSONL — on the first invariant violation.
fn verify(args: &[String]) -> Result<(), Box<dyn Error>> {
    let mut deep = false;
    for arg in args {
        match arg.as_str() {
            "--deep" => deep = true,
            other => return Err(err(format!("unknown verify flag {other:?}"))),
        }
    }

    let mut batteries = vec![("fast", swizzle_qos::verify::tier::fast_scenarios())];
    if deep {
        batteries.push(("deep", swizzle_qos::verify::tier::deep_scenarios()));
    }
    for (tier, scenarios) in batteries {
        let started = std::time::Instant::now();
        let count = scenarios.len();
        let (mut states, mut transitions) = (0usize, 0u64);
        for scenario in scenarios {
            let outcome = swizzle_qos::verify::verify_scenario(&scenario);
            states += outcome.states;
            transitions += outcome.transitions;
            println!(
                "verify[{tier}] {:<28} {:>7} states {:>8} transitions {}",
                outcome.scenario,
                outcome.states,
                outcome.transitions,
                if outcome.closed { "closed" } else { "clipped" },
            );
            if let Some(cx) = outcome.violation {
                println!("counterexample trace (ssq-trace JSONL):");
                println!("{}", cx.to_jsonl());
                return Err(err(format!(
                    "{}: invariant {} ({}) violated at depth {}: {}",
                    outcome.scenario,
                    cx.invariant,
                    cx.code,
                    cx.depth(),
                    cx.detail,
                )));
            }
        }
        println!(
            "verify[{tier}] clean: {count} scenarios, {states} states, {transitions} transitions \
             in {:.2}s",
            started.elapsed().as_secs_f64(),
        );
    }
    Ok(())
}

/// `ssq faults [--smoke | --scenario NAME] [--seed N] [--trace-dir DIR]`:
/// run the chaos-campaign catalog (or one scenario) and judge each run
/// with the two-outcome oracle. Exits non-zero on a silent violation —
/// a tripped watchdog with no revocation or degradation on record.
fn faults_cmd(args: &[String]) -> Result<(), Box<dyn Error>> {
    use swizzle_qos::faults::{run_scenario, run_smoke, Verdict, SCENARIOS};

    let opts = Opts::parse(args, &["smoke", "csv"])?;
    let seed = opts.num("seed", 7)?;
    let results = match opts.get("scenario") {
        Some(name) => {
            let result = run_scenario(name, seed).ok_or_else(|| {
                let names: Vec<&str> = SCENARIOS.iter().map(|(n, _)| *n).collect();
                err(format!(
                    "unknown scenario {name:?}; catalog: {}",
                    names.join(", ")
                ))
            })?;
            vec![result]
        }
        None => run_smoke(seed),
    };

    if let Some(dir) = opts.get("trace-dir") {
        std::fs::create_dir_all(dir).map_err(|e| err(format!("creating {dir:?}: {e}")))?;
        for r in &results {
            let path = std::path::Path::new(dir).join(format!("{}.jsonl", r.name));
            let mut text = String::new();
            for event in &r.events {
                text.push_str(&event.to_jsonl());
                text.push('\n');
            }
            std::fs::write(&path, text)
                .map_err(|e| err(format!("writing {}: {e}", path.display())))?;
        }
        if !opts.flag("csv") {
            println!("scenario traces written to {dir}/<scenario>.jsonl");
        }
    }

    let mut table = Table::with_columns(&[
        "scenario",
        "verdict",
        "detected",
        "degraded",
        "revoked",
        "faults",
        "delivered flits",
    ]);
    table.numeric();
    for r in &results {
        let (verdict, detected, degraded, revoked) = match &r.verdict {
            Verdict::BoundsPreserved => ("bounds-preserved".to_owned(), 0, 0, 0),
            Verdict::Revoked {
                revocations,
                degradations,
                detections,
            } => (
                "revoked".to_owned(),
                *detections,
                *degradations,
                *revocations,
            ),
            Verdict::SilentViolation { reason } => (format!("SILENT VIOLATION: {reason}"), 0, 0, 0),
        };
        table.row(vec![
            r.name.clone(),
            verdict,
            detected.to_string(),
            degraded.to_string(),
            revoked.to_string(),
            r.fault_injections.to_string(),
            r.delivered_flits.to_string(),
        ]);
    }
    if opts.flag("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
        for r in &results {
            for note in &r.notes {
                println!("note[{}]: {note}", r.name);
            }
        }
    }

    let silent: Vec<&str> = results
        .iter()
        .filter(|r| !r.verdict.is_acceptable())
        .map(|r| r.name.as_str())
        .collect();
    if !silent.is_empty() {
        return Err(err(format!(
            "silent violation in scenario(s): {} — a guarantee broke with no \
             structured revocation on record",
            silent.join(", ")
        )));
    }
    if !opts.flag("csv") {
        println!(
            "\ncampaign clean: {} scenario(s), seed {seed} — every fault either \
             absorbed or loudly revoked",
            results.len()
        );
    }
    Ok(())
}

/// `ssq net [--smoke | --scenario NAME] [--seed N] [--trace-dir DIR]`:
/// run the multi-hop chaos catalog (or one scenario) and judge each run
/// with the end-to-end oracle. The smoke tier runs every scenario twice
/// from the same seed; any divergence is reported as a silent
/// violation. Exits non-zero if any scenario's verdict is unacceptable.
fn net_cmd(args: &[String]) -> Result<(), Box<dyn Error>> {
    use swizzle_qos::faults::Verdict;
    use swizzle_qos::net::{run_net_scenario, run_net_smoke, NET_SCENARIOS};

    let opts = Opts::parse(args, &["smoke", "csv"])?;
    let seed = opts.num("seed", 7)?;
    let results = match opts.get("scenario") {
        Some(name) => {
            let result = run_net_scenario(name, seed).ok_or_else(|| {
                let names: Vec<&str> = NET_SCENARIOS.iter().map(|(n, _)| *n).collect();
                err(format!(
                    "unknown scenario {name:?}; catalog: {}",
                    names.join(", ")
                ))
            })?;
            vec![result]
        }
        None => run_net_smoke(seed),
    };

    if let Some(dir) = opts.get("trace-dir") {
        std::fs::create_dir_all(dir).map_err(|e| err(format!("creating {dir:?}: {e}")))?;
        for r in &results {
            let write = |path: std::path::PathBuf,
                         events: &[swizzle_qos::trace::Event]|
             -> Result<(), Box<dyn Error>> {
                let mut text = String::new();
                for event in events {
                    text.push_str(&event.to_jsonl());
                    text.push('\n');
                }
                std::fs::write(&path, text)
                    .map_err(|e| err(format!("writing {}: {e}", path.display())))
            };
            let dir = std::path::Path::new(dir);
            write(dir.join(format!("{}.jsonl", r.name)), &r.fabric_events)?;
            for (i, ring) in r.node_events.iter().enumerate() {
                write(dir.join(format!("{}.node{i}.jsonl", r.name)), ring)?;
            }
        }
        if !opts.flag("csv") {
            println!("scenario traces written to {dir}/<scenario>[.node<i>].jsonl");
        }
    }

    let mut table = Table::with_columns(&[
        "scenario",
        "verdict",
        "first violation",
        "revoked",
        "dropped",
        "retransmits",
        "reroutes",
        "delivered flits",
    ]);
    table.numeric();
    for r in &results {
        let verdict = match &r.verdict.overall {
            Verdict::BoundsPreserved => "bounds-preserved".to_owned(),
            Verdict::Revoked { .. } => "revoked".to_owned(),
            Verdict::SilentViolation { reason } => format!("SILENT VIOLATION: {reason}"),
        };
        let first = match &r.verdict.first_violation {
            Some((site, at)) => format!("{site}@{at}"),
            None => "-".to_owned(),
        };
        table.row(vec![
            r.name.clone(),
            verdict,
            first,
            r.counters.revocations.to_string(),
            r.counters.dropped_packets.to_string(),
            r.counters.retransmits.to_string(),
            r.counters.reroutes.to_string(),
            r.counters.delivered_flits.to_string(),
        ]);
    }
    if opts.flag("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_text());
    }

    let silent: Vec<&str> = results
        .iter()
        .filter(|r| !r.verdict.is_acceptable())
        .map(|r| r.name.as_str())
        .collect();
    if !silent.is_empty() {
        return Err(err(format!(
            "silent violation in scenario(s): {} — an end-to-end guarantee \
             broke with no structured revocation on record",
            silent.join(", ")
        )));
    }
    if !opts.flag("csv") {
        println!(
            "\nfabric campaign clean: {} scenario(s), seed {seed} — every topology \
             fault either absorbed or loudly revoked at a named hop",
            results.len()
        );
    }
    Ok(())
}

fn gl_bound(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &[])?;
    let l_max = opts.num("l-max", 8)?;
    let l_min = opts.num("l-min", 1)?;
    let n_gl = opts.num("n-gl", 1)?;
    let buffer = opts.num("buffer", 4)?;
    let scenario = GlScenario::new(l_max, l_min, n_gl, buffer);
    println!("{scenario}");
    println!(
        "Eq. 1: tau_GL <= l_max + N_GL*(b + b/l_min) = {} cycles",
        latency_bound(scenario)
    );
    Ok(())
}

fn gl_burst(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &[])?;
    let l_max = opts.num("l-max", 8)?;
    let constraints: Vec<u64> = opts
        .get("constraints")
        .ok_or_else(|| err("--constraints is required (e.g. 150,300,600)"))?
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<u64>()
                .map_err(|_| err(format!("bad constraint {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    let budgets = burst_budgets(&constraints, l_max);
    let mut t = Table::with_columns(&["flow", "latency constraint", "burst budget (packets)"]);
    t.numeric();
    for (k, (&l, &sigma)) in constraints.iter().zip(&budgets).enumerate() {
        t.row(vec![
            format!("GL{}", k + 1),
            l.to_string(),
            sigma.to_string(),
        ]);
    }
    print!("{t}");
    Ok(())
}

fn storage(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &[])?;
    let radix = opts.num("radix", 64)? as usize;
    let width = opts.num("width", 512)? as usize;
    let flit_bytes = opts.num("flit-bytes", 64)?;
    let buf = opts.num("buffer-flits", 4)?;
    let geometry = Geometry::new(radix, width)?;
    let model = StorageModel::new(geometry, flit_bytes, buf, buf, buf, 11, 8, 8);
    println!("{model}");
    println!(
        "buffering/input: BE {} B, GB {} B, GL {} B; crosspoint state {:.2} B x {} = {} KiB; total {} KiB",
        model.be_buffer_bytes_per_input(),
        model.gb_buffer_bytes_per_input(),
        model.gl_buffer_bytes_per_input(),
        model.crosspoint_bytes(),
        geometry.crosspoints(),
        model.total_crosspoint_bytes() / 1024,
        model.total_bytes() / 1024,
    );
    Ok(())
}

fn frequency() {
    let model = DelayModel::calibrated_32nm();
    let mut t = Table::with_columns(&["radix", "width", "SS (GHz)", "SSVC (GHz)", "slowdown"]);
    t.numeric();
    for &width in &TABLE2_WIDTHS {
        for &radix in &TABLE2_RADICES {
            t.row(vec![
                format!("{radix}x{radix}"),
                width.to_string(),
                format!("{:.2}", model.ss_frequency_ghz(radix, width)),
                format!("{:.2}", model.ssvc_frequency_ghz(radix, width)),
                format!("{:.1}%", model.slowdown(radix, width) * 100.0),
            ]);
        }
    }
    print!("{t}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn opts_parse_pairs_and_flags() {
        let opts = Opts::parse(
            &strs(&[
                "--radix",
                "16",
                "--csv",
                "--reserve",
                "0:0:40",
                "--reserve",
                "1:0:10",
            ]),
            &["csv"],
        )
        .unwrap();
        assert_eq!(opts.get("radix"), Some("16"));
        assert!(opts.flag("csv"));
        assert_eq!(opts.get_all("reserve").count(), 2);
        assert_eq!(opts.num("radix", 8).unwrap(), 16);
        assert_eq!(opts.num("width", 128).unwrap(), 128);
    }

    #[test]
    fn opts_reject_positional_arguments() {
        assert!(Opts::parse(&strs(&["oops"]), &[]).is_err());
        assert!(Opts::parse(&strs(&["--radix"]), &[]).is_err());
    }

    #[test]
    fn reserve_spec_parsing() {
        assert_eq!(parse_reserve("2:0:40").unwrap(), (2, 0, 0.4, 8));
        assert_eq!(parse_reserve("2:0:5:4").unwrap(), (2, 0, 0.05, 4));
        assert!(parse_reserve("2:0").is_err());
        assert!(parse_reserve("a:0:40").is_err());
    }

    #[test]
    fn flow_spec_parsing() {
        let (i, o, class, rate, len) = parse_flow("1:0:GB:sat").unwrap();
        assert_eq!((i, o, len), (1, 0, 8));
        assert_eq!(class, TrafficClass::GuaranteedBandwidth);
        assert_eq!(rate, None);
        let (.., rate, len) = parse_flow("1:0:GL:0.25:1").unwrap();
        assert_eq!(rate, Some(0.25));
        assert_eq!(len, 1);
        assert!(parse_flow("1:0:XX:sat").is_err());
    }

    #[test]
    fn policy_names_resolve() {
        assert_eq!(parse_policy("lrg").unwrap(), Policy::LrgOnly);
        assert_eq!(
            parse_policy("ssvc-reset").unwrap(),
            Policy::Ssvc(CounterPolicy::Reset)
        );
        assert_eq!(parse_policy("four-level").unwrap(), Policy::FourLevel);
        assert!(parse_policy("bogus").is_err());
    }

    #[test]
    fn simulate_end_to_end() {
        // A tiny run through the whole pipeline must succeed.
        let args = strs(&[
            "--radix",
            "4",
            "--cycles",
            "2000",
            "--warmup",
            "200",
            "--reserve",
            "0:0:50:4",
            "--flow",
            "0:0:GB:sat:4",
            "--flow",
            "1:0:BE:0.1:4",
            "--csv",
        ]);
        simulate(&args).unwrap();
    }

    #[test]
    fn traced_simulate_writes_parseable_jsonl_and_reports() {
        let dir = std::env::temp_dir().join(format!("ssq-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.jsonl");
        let metrics = dir.join("m.json");
        let args = strs(&[
            "--radix",
            "4",
            "--cycles",
            "2000",
            "--warmup",
            "200",
            "--reserve",
            "0:0:50:4",
            "--flow",
            "0:0:GB:sat:4",
            "--flow",
            "1:0:BE:0.2:4",
            "--trace",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-interval",
            "500",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--flight-recorder",
            "--csv",
        ]);
        // The leading `--radix` exercises the implicit-simulate path.
        run(&args).unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.lines().count() > 100, "traced run produced no events");
        for line in text.lines() {
            Event::from_jsonl(line).unwrap();
        }
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.starts_with('['), "json metrics expected: {m}");
        assert!(m.contains("\"delivered_flits\""));
        trace_report(&strs(&["--in", trace.to_str().unwrap()])).unwrap();
        trace_report(&strs(&["--in", trace.to_str().unwrap(), "--csv"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profiled_simulate_runs_on_both_engines() {
        // Feature-off builds print the rebuild hint; feature-on builds
        // print the phase table. Either way the run must succeed, on
        // the sequential and the sharded engine alike.
        let base = [
            "--radix",
            "4",
            "--cycles",
            "500",
            "--warmup",
            "50",
            "--flow",
            "0:0:BE:0.2:4",
            "--prof",
        ];
        simulate(&strs(&base)).unwrap();
        let mut par = strs(&base);
        par.extend(strs(&["--engine", "par", "--threads", "2"]));
        simulate(&par).unwrap();
        // The monitored runner owns its own schedule, so --prof with a
        // watchdog mode is refused rather than silently mismeasured.
        let mut monitored = strs(&base);
        monitored.push("--flight-recorder".to_owned());
        let e = simulate(&monitored).expect_err("--prof + monitored mode");
        assert!(e.to_string().contains("--prof"), "got: {e}");
    }

    #[test]
    fn perf_report_renders_recorded_trajectory() {
        use swizzle_qos::prof::{BenchCell, BenchDoc, BenchEngine};
        let dir = std::env::temp_dir().join(format!("ssq-cli-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = BenchDoc {
            schema: 2,
            pr: 3,
            profile: "release".to_owned(),
            quick: false,
            host_cores: 8,
            par_threads: 2,
            warmup_cycles: 100,
            measure_cycles: 400,
            cells: vec![BenchCell {
                radix: 16,
                load: "saturated".to_owned(),
                decide_fraction: 0.55,
                phases: vec![],
                engines: vec![BenchEngine {
                    engine: "sequential".to_owned(),
                    threads: 1,
                    cycles_per_sec: 125_000.0,
                    delivered_flits: 42,
                }],
                amdahl: vec![],
            }],
        };
        std::fs::write(dir.join("BENCH_3.json"), doc.render()).unwrap();
        let dir_s = dir.to_str().unwrap().to_owned();
        run(&strs(&["perf-report", "--results", &dir_s])).unwrap();
        perf_report(&strs(&["--results", &dir_s, "--csv"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        let e = perf_report(&strs(&["--results", &dir_s])).expect_err("empty dir");
        assert!(e.to_string().contains("BENCH"), "got: {e}");
    }

    #[test]
    fn armed_gl_bound_of_zero_trips_and_dumps() {
        let args = strs(&[
            "simulate",
            "--radix",
            "4",
            "--cycles",
            "2000",
            "--warmup",
            "100",
            "--gl-reserve",
            "0:10",
            "--flow",
            "0:0:GL:0.05:1",
            "--flow",
            "1:0:BE:sat:8",
            "--flight-recorder",
            "--gl-bound",
            "0",
            "--csv",
        ]);
        let e = run(&args).expect_err("a 0-cycle GL bound cannot hold");
        assert!(e.to_string().contains("post-mortem"), "got: {e}");
    }

    #[test]
    fn gl_subcommands_compute() {
        gl_bound(&strs(&["--n-gl", "4", "--buffer", "8"])).unwrap();
        gl_burst(&strs(&["--constraints", "150,300,600"])).unwrap();
        assert!(gl_burst(&strs(&[])).is_err(), "constraints required");
    }

    #[test]
    fn faults_smoke_is_clean_and_writes_parseable_traces() {
        let dir = std::env::temp_dir().join(format!("ssq-cli-faults-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_owned();
        run(&strs(&[
            "faults",
            "--smoke",
            "--seed",
            "7",
            "--trace-dir",
            &dir_s,
            "--csv",
        ]))
        .unwrap();
        // One parseable JSONL trace per catalog scenario.
        for (name, _) in swizzle_qos::faults::SCENARIOS {
            let text = std::fs::read_to_string(dir.join(format!("{name}.jsonl"))).unwrap();
            for line in text.lines() {
                Event::from_jsonl(line).unwrap();
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faults_single_scenario_runs_and_unknown_is_rejected() {
        faults_cmd(&strs(&["--scenario", "aux-seu", "--csv"])).unwrap();
        let e = faults_cmd(&strs(&["--scenario", "bogus"])).expect_err("not in catalog");
        assert!(e.to_string().contains("catalog"), "got: {e}");
    }

    #[test]
    fn net_smoke_is_clean_and_writes_parseable_traces() {
        let dir = std::env::temp_dir().join(format!("ssq-cli-net-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_owned();
        run(&strs(&[
            "net",
            "--smoke",
            "--seed",
            "7",
            "--trace-dir",
            &dir_s,
            "--csv",
        ]))
        .unwrap();
        // One parseable fabric JSONL trace per catalog scenario, plus a
        // ring dump for node 0 at least.
        for (name, _) in swizzle_qos::net::NET_SCENARIOS {
            for file in [format!("{name}.jsonl"), format!("{name}.node0.jsonl")] {
                let text = std::fs::read_to_string(dir.join(&file)).unwrap();
                for line in text.lines() {
                    Event::from_jsonl(line).unwrap();
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn net_single_scenario_runs_and_unknown_is_rejected() {
        net_cmd(&strs(&["--scenario", "chain-nack-blip", "--csv"])).unwrap();
        let e = net_cmd(&strs(&["--scenario", "bogus"])).expect_err("not in catalog");
        assert!(e.to_string().contains("catalog"), "got: {e}");
    }

    #[test]
    fn unknown_subcommand_fails() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&strs(&["help"])).is_ok());
    }
}
