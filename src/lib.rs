//! # swizzle-qos
//!
//! A production-quality reproduction of *Quality-of-Service for a
//! High-Radix Switch* (Abeyratne, Jeloka, Kang, Blaauw, Dreslinski, Das,
//! Mudge — DAC 2014): quality-of-service arbitration for a single-stage,
//! high-radix Swizzle Switch, scalable to 64 nodes.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`types`] — identifiers, units, traffic classes, switch geometry.
//! * [`stats`] — histograms, fairness indices, experiment tables.
//! * [`arbiter`] — LRG, WRR, DWRR, WFQ, Virtual Clock, and the paper's
//!   SSVC arbitration with its three counter-management policies.
//! * [`circuit`] — a bit-level model of the inhibit-based arbitration
//!   fabric (bitlines, thermometer codes, discharge decisions, sense
//!   amps) verified exhaustively against the behavioural arbiter.
//! * [`traffic`] — injection processes and destination patterns.
//! * [`sim`] — the cycle-accurate simulation kernel and sweep runner.
//! * [`trace`] — zero-overhead-when-off event tracing, the metrics
//!   registry, and the flight-recorder post-mortem.
//! * [`check`] — static admission/latency/overflow analysis (`SSQ0xx`
//!   diagnostics) gating every simulation.
//! * [`core`] — the QoS-enabled Swizzle Switch with Best-Effort,
//!   Guaranteed-Bandwidth, and Guaranteed-Latency classes, plus the GL
//!   latency-bound mathematics (Eqs. 1–3).
//! * [`physical`] — storage (Table 1), area, and frequency (Table 2)
//!   models.
//! * [`prof`] — the cycle-phase profiler (zero-overhead-when-off, armed
//!   by the `prof` cargo feature on the model crates) and the
//!   schema-versioned `results/BENCH_<pr>.json` perf-trajectory record
//!   behind `cargo xtask bench` and `ssq perf-report`.
//! * [`faults`] — deterministic fault injection: seeded [`faults::FaultPlan`]
//!   schedules (scripted or MTBF mode), the [`faults::ChaosSwitch`]
//!   harness, the two-outcome [`faults::judge`] oracle, and the
//!   single-fault chaos-campaign catalog behind `ssq faults`.
//! * [`net`] — multi-hop fabrics of QoS switches: topologies (chain,
//!   fat tree, mesh) joined by credit-backpressured, lossy, or
//!   NACK-retransmitting links, topology fault plans (dead links,
//!   MTBF flaps, node partitions), the per-hop/whole-path
//!   [`net::judge_path`] oracle, the static "Eq. 1 per hop" `SSQ013`
//!   admission rule, and the seeded multi-hop chaos catalog behind
//!   `ssq net`.
//! * [`verify`] — the bounded exhaustive model checker: every reachable
//!   state of a small switch, checked against the V1–V6 invariant
//!   catalog (`SSQV00x` diagnostics), with minimal JSONL
//!   counterexamples on violation. The same predicates compile into
//!   runtime assertions under the `sanitizer` cargo feature.
//!
//! # Quickstart
//!
//! Reserve bandwidth on a congested output and watch SSVC enforce it:
//!
//! ```
//! use swizzle_qos::arbiter::CounterPolicy;
//! use swizzle_qos::core::{Policy, QosSwitch, SwitchConfig};
//! use swizzle_qos::sim::{Runner, Schedule};
//! use swizzle_qos::traffic::{FixedDest, Injector, Saturating};
//! use swizzle_qos::types::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut config = SwitchConfig::builder(Geometry::new(8, 128)?)
//!     .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
//!     .gb_buffer_flits(16)
//!     .build()?;
//! // Two saturated flows share Out0 3:1.
//! config.reservations_mut().reserve_gb(
//!     InputId::new(0), OutputId::new(0), Rate::new(0.75)?, 8)?;
//! config.reservations_mut().reserve_gb(
//!     InputId::new(1), OutputId::new(0), Rate::new(0.25)?, 8)?;
//!
//! let mut switch = QosSwitch::new(config)?;
//! for i in 0..2 {
//!     switch.add_injector(
//!         Injector::new(
//!             Box::new(Saturating::new(8)),
//!             Box::new(FixedDest::new(OutputId::new(0))),
//!             TrafficClass::GuaranteedBandwidth,
//!         )
//!         .for_input(InputId::new(i)),
//!     );
//! }
//! let end = Runner::new(Schedule::new(Cycles::new(2_000), Cycles::new(20_000)))
//!     .run(&mut switch);
//! let t0 = switch.gb_metrics()
//!     .flow(FlowId::new(InputId::new(0), OutputId::new(0)))
//!     .throughput(end);
//! let t1 = switch.gb_metrics()
//!     .flow(FlowId::new(InputId::new(1), OutputId::new(0)))
//!     .throughput(end);
//! assert!((t0 / t1 - 3.0).abs() < 0.3, "3:1 split, got {t0:.3}:{t1:.3}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssq_arbiter as arbiter;
pub use ssq_check as check;
pub use ssq_circuit as circuit;
pub use ssq_core as core;
pub use ssq_faults as faults;
pub use ssq_net as net;
pub use ssq_physical as physical;
pub use ssq_prof as prof;
pub use ssq_sim as sim;
pub use ssq_stats as stats;
pub use ssq_trace as trace;
pub use ssq_traffic as traffic;
pub use ssq_types as types;
pub use ssq_verify as verify;
