//! A minimal JSON reader for the BENCH trajectory documents.
//!
//! The workspace is fully offline (no serde), and the documents this
//! crate consumes are small and machine-written, so a strict
//! recursive-descent parser over a [`Json`] value tree is all that is
//! needed. Objects keep their key order in a `Vec` — deterministic
//! iteration is a workspace-wide invariant (`no-nondeterministic-order`)
//! and the documents are tiny, so linear key lookup is fine.

use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after document", pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

fn err(message: &str, at: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        at,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b) if b.is_ascii_digit() || *b == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
        None => Err(err("unexpected end of input", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes.get(*pos..*pos + word.len()) == Some(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf-8", start))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("malformed number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    // Caller guarantees an opening quote.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unmodified).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("bad utf-8", *pos))?;
                let ch = rest.chars().next().ok_or_else(|| err("empty char", *pos))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected object key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

/// Escapes a string for embedding in rendered JSON.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5e1}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        let b = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-25.0)
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse(r#"{"a": "#).is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1, 2").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn object_keys_keep_source_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        if let Json::Obj(fields) = &v {
            assert_eq!(fields[0].0, "z");
            assert_eq!(fields[1].0, "a");
        } else {
            panic!("not an object");
        }
    }
}
