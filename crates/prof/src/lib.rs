//! # ssq-prof
//!
//! Zero-overhead-when-off cycle-phase profiling and the perf-trajectory
//! record for swizzle-qos (DESIGN.md §11).
//!
//! Perf claims used to live as prose tables: the decide fraction was
//! measured by hand, and each PR's throughput snapshot was a one-off.
//! This crate turns both into tracked artifacts:
//!
//! * [`Profiler`] — a counter-sampled phase timer in the style of
//!   ssq-trace's zero-overhead contract. Instrumented code calls
//!   [`Profiler::begin_cycle`] once per cycle: disarmed it is a single
//!   predictable branch, armed it is one counter add plus a mask test,
//!   and only on sampled cycles do the [`Stopwatch`] reads run. The
//!   switch core and the parallel engine compile their hooks out
//!   entirely when their `prof` cargo feature is off, pinned by the
//!   `trace_overhead` microbench methodology.
//! * [`ProfReport`] — aggregated per-phase and per-shard breakdowns
//!   (wall-clock and sample counts), including the decide fraction that
//!   bounds parallel speedup (Amdahl's `f`).
//! * [`trajectory`] — the schema-versioned `results/BENCH_<pr>.json`
//!   document model: a hand-rolled parser/renderer (the workspace is
//!   fully offline), a diff with configurable regression thresholds
//!   backing `cargo xtask bench --diff`, and the cross-PR trajectory
//!   table behind `ssq perf-report`.
//!
//! The crate itself is dependency-free except for `ssq-stats` (table
//! rendering) and is always compiled; the `prof` features live on the
//! crates that embed the hooks (`ssq-core`, `ssq-sim`), so this library
//! stays usable for parsing and reporting even in unprofiled builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod profiler;
pub mod trajectory;

pub use profiler::{
    PhaseLine, ProfReport, Profiler, ShardLine, Stopwatch, ENGINE_STAGES, KERNEL_PHASES,
    PHASE_COMMIT, PHASE_DECIDE, PHASE_GATHER, PHASE_MERGE, PHASE_PREPARE,
};
pub use trajectory::{
    find_benches, trajectory_table, AmdahlPoint, BenchCell, BenchDoc, BenchEngine, BenchPhase,
    DiffReport,
};
