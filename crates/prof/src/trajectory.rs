//! The schema-versioned perf-trajectory record (`results/BENCH_*.json`).
//!
//! Every PR's `cargo xtask bench --json` run appends one document to
//! the trajectory: cycles/sec per (engine, radix, load) cell, the
//! profiler's per-phase breakdown, and enough host metadata (core
//! count, thread counts, build profile) to tell a measurement from an
//! Amdahl projection. `--diff` compares a fresh run against the latest
//! prior document and fails on regressions past a threshold, which is
//! what `scripts/check.sh` gates on; `ssq perf-report` renders the
//! whole trajectory as one table.
//!
//! Schema history:
//! * **1** (PR 6) — cells with `decide_fraction` and engine rows; no
//!   per-phase data, host core count at top level.
//! * **2** (PR 7) — adds `pr`, `quick`, a `host` object (cores, and the
//!   par engine's thread count so oversubscribed runs are labelled), a
//!   per-cell `phases` breakdown from the in-switch profiler, and
//!   per-cell `amdahl` projection points explicitly marked
//!   `"mode": "projected"`.
//!
//! The parser reads both; the renderer always writes the current
//! schema.

use std::path::{Path, PathBuf};

use ssq_stats::Table;

use crate::json::{escape, Json};

/// The schema version this crate writes.
pub const CURRENT_SCHEMA: u64 = 2;

/// One phase row of a cell's profiler breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPhase {
    /// Phase name (`prepare` / `decide` / `commit`).
    pub phase: String,
    /// Mean sampled nanoseconds per cycle.
    pub ns_per_cycle: f64,
    /// Share of total sampled cycle time.
    pub fraction: f64,
}

/// One measured engine row of a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEngine {
    /// Engine name (`sequential` / `par`).
    pub engine: String,
    /// Total compute threads the engine ran with.
    pub threads: u64,
    /// Measured wall-clock simulated cycles per second.
    pub cycles_per_sec: f64,
    /// Delivered flits (the seq-vs-par equality check).
    pub delivered_flits: u64,
}

/// One Amdahl projection point (never a measurement).
#[derive(Debug, Clone, PartialEq)]
pub struct AmdahlPoint {
    /// Hypothetical core/thread count.
    pub threads: u64,
    /// Projected speedup over sequential at that count.
    pub speedup: f64,
}

/// One (radix, load) cell of the benchmark matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Switch radix.
    pub radix: u64,
    /// Offered-load label (`bernoulli-0.5` / `saturated`).
    pub load: String,
    /// The decide phase's share of cycle time (Amdahl's `f`).
    pub decide_fraction: f64,
    /// Profiler per-phase breakdown (empty in schema-1 documents).
    pub phases: Vec<BenchPhase>,
    /// Measured engine rows.
    pub engines: Vec<BenchEngine>,
    /// Amdahl projections derived from `decide_fraction` (labelled
    /// projections, empty in schema-1 documents).
    pub amdahl: Vec<AmdahlPoint>,
}

impl BenchCell {
    /// The measured cycles/sec for an engine row, if present.
    #[must_use]
    pub fn rate(&self, engine: &str, threads: u64) -> Option<f64> {
        self.engines
            .iter()
            .find(|e| e.engine == engine && e.threads == threads)
            .map(|e| e.cycles_per_sec)
    }
}

/// One PR's complete benchmark capture.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Schema version the document was parsed from.
    pub schema: u64,
    /// PR number the capture belongs to (`BENCH_<pr>.json`).
    pub pr: u64,
    /// Build profile (`release` / `debug`) — cross-profile diffs are
    /// meaningless and are skipped.
    pub profile: String,
    /// Whether this was a `--quick` run (shorter matrix).
    pub quick: bool,
    /// Host core count at capture time.
    pub host_cores: u64,
    /// Thread count the par engine rows used (0 when unknown).
    pub par_threads: u64,
    /// Warm-up cycles per cell.
    pub warmup_cycles: u64,
    /// Measured cycles per cell.
    pub measure_cycles: u64,
    /// The benchmark matrix.
    pub cells: Vec<BenchCell>,
}

impl BenchDoc {
    /// The canonical `BENCH_<pr>` name.
    #[must_use]
    pub fn name(&self) -> String {
        format!("BENCH_{}", self.pr)
    }

    /// Finds a cell by (radix, load).
    #[must_use]
    pub fn cell(&self, radix: u64, load: &str) -> Option<&BenchCell> {
        self.cells
            .iter()
            .find(|c| c.radix == radix && c.load == load)
    }

    /// Parses a schema-1 or schema-2 BENCH document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let root = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = field_u64(&root, "schema")?;
        if schema == 0 || schema > CURRENT_SCHEMA {
            return Err(format!("unsupported BENCH schema {schema}"));
        }
        let bench_name = root
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let pr = match root.get("pr").and_then(Json::as_u64) {
            Some(pr) => pr,
            // Schema 1 carries the PR only in the name ("BENCH_6").
            None => bench_name
                .strip_prefix("BENCH_")
                .and_then(|n| n.parse::<u64>().ok())
                .ok_or_else(|| format!("cannot derive PR number from bench name {bench_name:?}"))?,
        };
        let (host_cores, par_threads) = match root.get("host") {
            Some(host) => (
                field_u64(host, "cores")?,
                host.get("par_threads").and_then(Json::as_u64).unwrap_or(0),
            ),
            None => (field_u64(&root, "host_cores")?, 0),
        };
        let mut cells = Vec::new();
        for cell in root
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing cells array")?
        {
            cells.push(parse_cell(cell)?);
        }
        Ok(BenchDoc {
            schema,
            pr,
            profile: root
                .get("profile")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            quick: root.get("quick").and_then(Json::as_bool).unwrap_or(false),
            host_cores,
            par_threads,
            warmup_cycles: field_u64(&root, "warmup_cycles")?,
            measure_cycles: field_u64(&root, "measure_cycles")?,
            cells,
        })
    }

    /// Renders the document at the current schema, byte-stable for a
    /// given value (the trajectory lives in git).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {CURRENT_SCHEMA},\n"));
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name())));
        out.push_str(&format!("  \"pr\": {},\n", self.pr));
        out.push_str(&format!("  \"profile\": \"{}\",\n", escape(&self.profile)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"host\": {{\"cores\": {}, \"par_threads\": {}}},\n",
            self.host_cores, self.par_threads
        ));
        out.push_str(&format!(
            "  \"warmup_cycles\": {},\n  \"measure_cycles\": {},\n  \"cells\": [",
            self.warmup_cycles, self.measure_cycles
        ));
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&render_cell(cell));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))?
        .to_string())
}

fn parse_cell(cell: &Json) -> Result<BenchCell, String> {
    let mut engines = Vec::new();
    for e in cell
        .get("engines")
        .and_then(Json::as_arr)
        .ok_or("cell missing engines array")?
    {
        engines.push(BenchEngine {
            engine: field_str(e, "engine")?,
            threads: field_u64(e, "threads")?,
            cycles_per_sec: field_f64(e, "cycles_per_sec")?,
            delivered_flits: field_u64(e, "delivered_flits")?,
        });
    }
    let mut phases = Vec::new();
    if let Some(list) = cell.get("phases").and_then(Json::as_arr) {
        for p in list {
            phases.push(BenchPhase {
                phase: field_str(p, "phase")?,
                ns_per_cycle: field_f64(p, "ns_per_cycle")?,
                fraction: field_f64(p, "fraction")?,
            });
        }
    }
    let mut amdahl = Vec::new();
    if let Some(list) = cell.get("amdahl").and_then(Json::as_arr) {
        for a in list {
            amdahl.push(AmdahlPoint {
                threads: field_u64(a, "threads")?,
                speedup: field_f64(a, "speedup")?,
            });
        }
    }
    Ok(BenchCell {
        radix: field_u64(cell, "radix")?,
        load: field_str(cell, "load")?,
        decide_fraction: field_f64(cell, "decide_fraction")?,
        phases,
        engines,
        amdahl,
    })
}

fn render_cell(cell: &BenchCell) -> String {
    let mut out = format!(
        "    {{\"radix\": {}, \"load\": \"{}\", \"decide_fraction\": {:.4},\n",
        cell.radix,
        escape(&cell.load),
        cell.decide_fraction
    );
    out.push_str("     \"phases\": [");
    for (i, p) in cell.phases.iter().enumerate() {
        out.push_str(if i == 0 { "" } else { ", " });
        out.push_str(&format!(
            "{{\"phase\": \"{}\", \"ns_per_cycle\": {:.1}, \"fraction\": {:.4}}}",
            escape(&p.phase),
            p.ns_per_cycle,
            p.fraction
        ));
    }
    out.push_str("],\n     \"engines\": [");
    for (i, e) in cell.engines.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "      {{\"engine\": \"{}\", \"threads\": {}, \"cycles_per_sec\": {:.0}, \
             \"delivered_flits\": {}, \"mode\": \"measured\"}}",
            escape(&e.engine),
            e.threads,
            e.cycles_per_sec,
            e.delivered_flits
        ));
    }
    out.push_str("\n     ],\n     \"amdahl\": [");
    for (i, a) in cell.amdahl.iter().enumerate() {
        out.push_str(if i == 0 { "" } else { ", " });
        out.push_str(&format!(
            "{{\"threads\": {}, \"speedup\": {:.2}, \"mode\": \"projected\"}}",
            a.threads, a.speedup
        ));
    }
    out.push_str("]}");
    out
}

/// The outcome of diffing a fresh capture against a prior one.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// One human-readable line per compared (engine, radix, load) cell.
    pub lines: Vec<String>,
    /// Cells whose throughput ratio fell below the threshold.
    pub regressions: Vec<String>,
    /// Why the comparison was skipped entirely, if it was.
    pub skipped: Option<String>,
}

impl DiffReport {
    /// Whether the diff gate passes (no regression past the threshold).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `next` against `prev` cell by cell. `threshold` is the
/// minimum acceptable `next/prev` cycles-per-second ratio — 0.5 means
/// "fail if throughput halved". Cross-profile comparisons (debug vs
/// release) are skipped: the numbers answer different questions.
#[must_use]
pub fn diff(prev: &BenchDoc, next: &BenchDoc, threshold: f64) -> DiffReport {
    let mut report = DiffReport::default();
    if prev.profile != next.profile {
        report.skipped = Some(format!(
            "profile mismatch ({} vs {}): wall-clock comparison skipped",
            prev.profile, next.profile
        ));
        return report;
    }
    for cell in &next.cells {
        let Some(prior) = prev.cell(cell.radix, &cell.load) else {
            report.lines.push(format!(
                "radix{} {}: new cell (no {} baseline)",
                cell.radix,
                cell.load,
                prev.name()
            ));
            continue;
        };
        for engine in &cell.engines {
            let label = format!(
                "radix{} {} {} x{}",
                cell.radix, cell.load, engine.engine, engine.threads
            );
            let Some(before) = prior.rate(&engine.engine, engine.threads) else {
                report.lines.push(format!("{label}: new engine row"));
                continue;
            };
            if before <= 0.0 {
                report
                    .lines
                    .push(format!("{label}: prior rate was zero, skipped"));
                continue;
            }
            let ratio = engine.cycles_per_sec / before;
            report.lines.push(format!(
                "{label}: {:.0} -> {:.0} cycles/sec ({ratio:.2}x vs {})",
                before,
                engine.cycles_per_sec,
                prev.name()
            ));
            if ratio < threshold {
                report.regressions.push(format!(
                    "{label}: {:.0} -> {:.0} cycles/sec ({ratio:.2}x < {threshold:.2}x threshold)",
                    before, engine.cycles_per_sec
                ));
            }
        }
    }
    report
}

/// Scans a results directory for `BENCH_<n>.json` files, sorted by PR
/// number. Unreadable directories yield an empty list (a fresh checkout
/// has no trajectory yet).
#[must_use]
pub fn find_benches(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            found.push((n, entry.path()));
        }
    }
    found.sort_by_key(|(n, _)| *n);
    found
}

/// Renders a set of parsed BENCH documents (oldest first) as one
/// trajectory table: one row per (pr, radix, load, engine).
#[must_use]
pub fn trajectory_table(docs: &[BenchDoc]) -> Table {
    let mut t = Table::with_columns(&[
        "pr",
        "profile",
        "cores",
        "radix",
        "load",
        "engine",
        "threads",
        "cycles/sec",
        "decide_frac",
    ]);
    t.numeric();
    for doc in docs {
        for cell in &doc.cells {
            for engine in &cell.engines {
                t.row(vec![
                    doc.pr.to_string(),
                    doc.profile.clone(),
                    doc.host_cores.to_string(),
                    cell.radix.to_string(),
                    cell.load.clone(),
                    engine.engine.clone(),
                    engine.threads.to_string(),
                    format!("{:.0}", engine.cycles_per_sec),
                    format!("{:.3}", cell.decide_fraction),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pr: u64, seq_rate: f64, par_rate: f64) -> BenchDoc {
        BenchDoc {
            schema: CURRENT_SCHEMA,
            pr,
            profile: "release".to_string(),
            quick: false,
            host_cores: 4,
            par_threads: 2,
            warmup_cycles: 200,
            measure_cycles: 1500,
            cells: vec![BenchCell {
                radix: 16,
                load: "saturated".to_string(),
                decide_fraction: 0.57,
                phases: vec![
                    BenchPhase {
                        phase: "prepare".to_string(),
                        ns_per_cycle: 1000.0,
                        fraction: 0.2,
                    },
                    BenchPhase {
                        phase: "decide".to_string(),
                        ns_per_cycle: 2850.0,
                        fraction: 0.57,
                    },
                    BenchPhase {
                        phase: "commit".to_string(),
                        ns_per_cycle: 1150.0,
                        fraction: 0.23,
                    },
                ],
                engines: vec![
                    BenchEngine {
                        engine: "sequential".to_string(),
                        threads: 1,
                        cycles_per_sec: seq_rate,
                        delivered_flits: 9000,
                    },
                    BenchEngine {
                        engine: "par".to_string(),
                        threads: 2,
                        cycles_per_sec: par_rate,
                        delivered_flits: 9000,
                    },
                ],
                amdahl: vec![AmdahlPoint {
                    threads: 4,
                    speedup: 1.75,
                }],
            }],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let original = doc(7, 75_000.0, 71_000.0);
        let text = original.render();
        let parsed = BenchDoc::parse(&text).expect("round trip parses");
        assert_eq!(parsed, original);
        // Byte-stable: rendering the parsed document reproduces the text.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn parses_schema_1_document() {
        // The shape PR 6 wrote (results/BENCH_6.json).
        let text = r#"{
  "schema": 1,
  "bench": "BENCH_6",
  "profile": "release",
  "host_cores": 1,
  "warmup_cycles": 200,
  "measure_cycles": 1500,
  "cells": [
    {"radix": 16, "load": "saturated", "decide_fraction": 0.5770, "engines": [
      {"engine": "sequential", "threads": 1, "cycles_per_sec": 75000, "delivered_flits": 100},
      {"engine": "par", "threads": 2, "cycles_per_sec": 70000, "delivered_flits": 100}
    ]}
  ]
}"#;
        let parsed = BenchDoc::parse(text).expect("schema 1 parses");
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed.pr, 6, "PR derived from the bench name");
        assert_eq!(parsed.host_cores, 1);
        assert!(parsed.phases_empty());
        assert_eq!(
            parsed.cell(16, "saturated").and_then(|c| c.rate("par", 2)),
            Some(70000.0)
        );
    }

    impl BenchDoc {
        fn phases_empty(&self) -> bool {
            self.cells.iter().all(|c| c.phases.is_empty())
        }
    }

    #[test]
    fn diff_accepts_steady_throughput() {
        let prev = doc(6, 75_000.0, 71_000.0);
        let next = doc(7, 74_000.0, 73_000.0);
        let report = diff(&prev, &next, 0.5);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.lines.len(), 2);
        assert!(report.lines[0].contains("0.99x"), "{:?}", report.lines);
    }

    #[test]
    fn diff_fails_on_injected_synthetic_regression() {
        // The ISSUE acceptance case: a synthetic 10x slowdown in one
        // engine cell must fail the gate.
        let prev = doc(6, 75_000.0, 71_000.0);
        let next = doc(7, 7_500.0, 71_000.0);
        let report = diff(&prev, &next, 0.5);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert!(
            report.regressions[0].contains("sequential x1"),
            "{:?}",
            report.regressions
        );
        assert!(report.regressions[0].contains("0.10x"));
    }

    #[test]
    fn diff_skips_cross_profile_comparison() {
        let prev = doc(6, 75_000.0, 71_000.0);
        let mut next = doc(7, 100.0, 100.0); // debug build: wildly slower
        next.profile = "debug".to_string();
        let report = diff(&prev, &next, 0.5);
        assert!(report.passed(), "skipped, not failed");
        assert!(report.skipped.is_some());
    }

    #[test]
    fn diff_reports_new_cells_and_rows_without_failing() {
        let mut prev = doc(6, 75_000.0, 71_000.0);
        prev.cells[0].engines.pop(); // prior run had no par row
        let mut next = doc(7, 74_000.0, 70_000.0);
        next.cells.push(BenchCell {
            radix: 64,
            load: "saturated".to_string(),
            decide_fraction: 0.6,
            phases: Vec::new(),
            engines: Vec::new(),
            amdahl: Vec::new(),
        });
        let report = diff(&prev, &next, 0.5);
        assert!(report.passed());
        assert!(report.lines.iter().any(|l| l.contains("new engine row")));
        assert!(report.lines.iter().any(|l| l.contains("new cell")));
    }

    #[test]
    fn find_benches_sorts_by_pr_number() {
        let dir = std::env::temp_dir().join(format!("ssq-prof-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [10, 2, 7] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), "{}").unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap(); // ignored
        std::fs::write(dir.join("lint.json"), "{}").unwrap(); // ignored
        let found = find_benches(&dir);
        let numbers: Vec<u64> = found.iter().map(|(n, _)| *n).collect();
        assert_eq!(numbers, vec![2, 7, 10]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trajectory_table_spans_documents() {
        let docs = vec![doc(6, 75_000.0, 71_000.0), doc(7, 80_000.0, 90_000.0)];
        let table = trajectory_table(&docs);
        let csv = table.to_csv();
        assert!(
            csv.starts_with("pr,profile,cores,radix,load,engine,threads,cycles/sec,decide_frac")
        );
        assert_eq!(csv.lines().count(), 5, "{csv}");
        assert!(csv.contains("7,release,4,16,saturated,par,2,90000,0.570"));
    }
}
