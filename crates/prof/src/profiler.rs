//! The counter-sampled phase profiler.
//!
//! A [`Profiler`] owns one wall-clock accumulator per named phase plus
//! optional per-shard accumulators for the decide phase. The embedding
//! loop drives it with three calls:
//!
//! 1. [`Profiler::begin_cycle`] once per simulated cycle — disarmed
//!    this is one branch; armed it is one counter add plus a mask test,
//!    and the return value says whether this cycle is sampled;
//! 2. on sampled cycles, [`Stopwatch`] laps around each phase feeding
//!    [`Profiler::record_phase`] (and, in detail mode,
//!    [`Profiler::record_shard`] per output);
//! 3. [`Profiler::report`] at the end of the run.
//!
//! Sampling is counter-based (every 2^k-th cycle, `k` chosen from the
//! requested rate) so the armed-but-unsampled hot path never touches the
//! OS clock. Phase sets are named slices: the switch kernel uses
//! [`KERNEL_PHASES`] (`prepare`/`decide`/`commit`), the parallel engine
//! [`ENGINE_STAGES`] (`gather`/`decide`/`merge`); both index their
//! `decide` at position 1, which is what [`ProfReport::decide_fraction`]
//! reads.

use std::time::Instant;

use ssq_stats::Table;

/// The sequential kernel's phase names, in cycle order.
pub const KERNEL_PHASES: &[&str] = &["prepare", "decide", "commit"];

/// The parallel engine's stage names, in cycle order.
pub const ENGINE_STAGES: &[&str] = &["gather", "decide", "merge"];

/// Index of the prepare phase in [`KERNEL_PHASES`].
pub const PHASE_PREPARE: usize = 0;
/// Index of the decide phase in both phase sets.
pub const PHASE_DECIDE: usize = 1;
/// Index of the commit phase in [`KERNEL_PHASES`].
pub const PHASE_COMMIT: usize = 2;
/// Index of the gather stage in [`ENGINE_STAGES`].
pub const PHASE_GATHER: usize = 0;
/// Index of the merge stage in [`ENGINE_STAGES`].
pub const PHASE_MERGE: usize = 2;

/// A monotonic nanosecond lap timer around one phase.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the watch now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds since the last start/lap, saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Reads the elapsed nanoseconds and restarts the watch, so
    /// consecutive laps tile a cycle without gaps.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = u64::try_from(now.duration_since(self.0).as_nanos()).unwrap_or(u64::MAX);
        self.0 = now;
        ns
    }
}

/// One accumulator: total nanoseconds and how many laps produced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Acc {
    ns: u64,
    samples: u64,
}

impl Acc {
    fn record(&mut self, ns: u64) {
        self.ns = self.ns.saturating_add(ns);
        self.samples = self.samples.saturating_add(1);
    }

    fn merge(&mut self, other: Acc) {
        self.ns = self.ns.saturating_add(other.ns);
        self.samples = self.samples.saturating_add(other.samples);
    }
}

/// Counter-sampled per-phase (and optionally per-shard) wall-clock
/// accumulators. See the module docs for the driving protocol.
#[derive(Debug, Clone)]
pub struct Profiler {
    names: &'static [&'static str],
    armed: bool,
    detail: bool,
    /// Sample when `cycles & mask == 0` (mask is `2^k - 1`).
    mask: u64,
    cycles: u64,
    sampled: u64,
    sampling: bool,
    phases: Vec<Acc>,
    shards: Vec<Acc>,
}

impl Profiler {
    /// A disarmed profiler over the given phase names.
    #[must_use]
    pub fn new(names: &'static [&'static str]) -> Self {
        Profiler {
            names,
            armed: false,
            detail: false,
            mask: 0,
            cycles: 0,
            sampled: 0,
            sampling: false,
            phases: vec![Acc::default(); names.len()],
            shards: Vec::new(),
        }
    }

    /// A disarmed profiler over the sequential kernel's phases.
    #[must_use]
    pub fn kernel() -> Self {
        Profiler::new(KERNEL_PHASES)
    }

    /// A disarmed profiler over the parallel engine's stages.
    #[must_use]
    pub fn engine() -> Self {
        Profiler::new(ENGINE_STAGES)
    }

    /// Arms sampling at roughly one cycle in `sample_every` (rounded up
    /// to the next power of two; `0` and `1` both mean every cycle).
    pub fn arm(&mut self, sample_every: u64) {
        self.armed = true;
        self.mask = sample_every.max(1).next_power_of_two().saturating_sub(1);
    }

    /// Arms like [`Profiler::arm`] and additionally attributes the
    /// decide phase per shard (one accumulator per output).
    pub fn arm_detailed(&mut self, sample_every: u64, shards: usize) {
        self.arm(sample_every);
        self.detail = true;
        if self.shards.len() < shards {
            self.shards.resize(shards, Acc::default());
        }
    }

    /// Stops sampling; accumulated totals are kept.
    pub fn disarm(&mut self) {
        self.armed = false;
        self.sampling = false;
    }

    /// Whether the profiler is currently armed.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Whether per-shard attribution is on.
    #[must_use]
    pub fn detailed(&self) -> bool {
        self.detail
    }

    /// Advances the cycle counter and decides whether this cycle is
    /// sampled. This is the only call on the armed-but-unsampled hot
    /// path: one add and one mask test.
    #[inline]
    pub fn begin_cycle(&mut self) -> bool {
        if !self.armed {
            return false;
        }
        let n = self.cycles;
        self.cycles = n.wrapping_add(1);
        self.sampling = n & self.mask == 0;
        if self.sampling {
            self.sampled = self.sampled.saturating_add(1);
        }
        self.sampling
    }

    /// Whether the current cycle is being sampled.
    #[must_use]
    pub fn sampling(&self) -> bool {
        self.sampling
    }

    /// Adds one lap to a phase accumulator. Unknown indices are ignored
    /// (the hot path must never panic on accounting).
    #[inline]
    pub fn record_phase(&mut self, phase: usize, ns: u64) {
        if let Some(acc) = self.phases.get_mut(phase) {
            acc.record(ns);
        }
    }

    /// Adds one decide lap to a shard accumulator (detail mode; unknown
    /// shards are ignored).
    #[inline]
    pub fn record_shard(&mut self, shard: usize, ns: u64) {
        if let Some(acc) = self.shards.get_mut(shard) {
            acc.record(ns);
        }
    }

    /// Cycles seen while armed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles that were sampled.
    #[must_use]
    pub fn sampled_cycles(&self) -> u64 {
        self.sampled
    }

    /// Folds another profiler's accumulators into this one (used to
    /// merge per-worker profilers after a parallel run). Phases are
    /// matched positionally; a mismatched phase set merges the common
    /// prefix rather than panicking — accounting must never abort a run.
    pub fn merge(&mut self, other: &Profiler) {
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(*theirs);
        }
        if self.shards.len() < other.shards.len() {
            self.shards.resize(other.shards.len(), Acc::default());
        }
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.merge(*theirs);
        }
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.sampled = self.sampled.saturating_add(other.sampled);
    }

    /// Snapshots the accumulated totals.
    #[must_use]
    pub fn report(&self) -> ProfReport {
        ProfReport {
            cycles: self.cycles,
            sampled_cycles: self.sampled,
            phases: self
                .names
                .iter()
                .zip(&self.phases)
                .map(|(name, acc)| PhaseLine {
                    name: (*name).to_string(),
                    ns: acc.ns,
                    samples: acc.samples,
                })
                .collect(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(shard, acc)| ShardLine {
                    shard,
                    ns: acc.ns,
                    samples: acc.samples,
                })
                .collect(),
        }
    }
}

/// One phase's accumulated totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLine {
    /// Phase name (`prepare`, `decide`, ...).
    pub name: String,
    /// Total sampled nanoseconds.
    pub ns: u64,
    /// Number of laps recorded.
    pub samples: u64,
}

/// One shard's accumulated decide totals (detail mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLine {
    /// Shard (output) index.
    pub shard: usize,
    /// Total sampled nanoseconds.
    pub ns: u64,
    /// Number of laps recorded.
    pub samples: u64,
}

/// An immutable snapshot of a [`Profiler`]'s accumulators.
#[derive(Debug, Clone, Default)]
pub struct ProfReport {
    /// Cycles seen while armed.
    pub cycles: u64,
    /// Cycles whose phases were timed.
    pub sampled_cycles: u64,
    /// Per-phase totals, in phase order.
    pub phases: Vec<PhaseLine>,
    /// Per-shard decide totals (empty unless detail mode was armed).
    pub shards: Vec<ShardLine>,
}

impl ProfReport {
    /// Whether nothing was sampled (feature off, disarmed, or an empty
    /// run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sampled_cycles == 0
    }

    /// Total sampled nanoseconds across all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().fold(0u64, |a, p| a.saturating_add(p.ns))
    }

    /// A named phase's share of total sampled time, if anything was
    /// sampled.
    #[must_use]
    pub fn fraction(&self, name: &str) -> Option<f64> {
        let total = self.total_ns();
        if total == 0 {
            return None;
        }
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ns as f64 / total as f64)
    }

    /// The decide phase's share of total sampled time — Amdahl's `f`
    /// bounding parallel speedup.
    #[must_use]
    pub fn decide_fraction(&self) -> Option<f64> {
        self.fraction("decide")
    }

    /// A named phase's mean nanoseconds per sampled cycle.
    #[must_use]
    pub fn ns_per_cycle(&self, name: &str) -> Option<f64> {
        if self.sampled_cycles == 0 {
            return None;
        }
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ns as f64 / self.sampled_cycles as f64)
    }

    /// The Amdahl projection `1 / ((1 - f) + f / threads)` for the
    /// measured decide fraction, or `None` if nothing was sampled.
    #[must_use]
    pub fn amdahl_projection(&self, threads: u64) -> Option<f64> {
        let f = self.decide_fraction()?;
        let t = threads.max(1) as f64;
        Some(1.0 / ((1.0 - f) + f / t))
    }

    /// The per-phase breakdown as a table (`phase`, `ns/cycle`,
    /// `fraction`, `samples`).
    #[must_use]
    pub fn phase_table(&self) -> Table {
        let mut t = Table::with_columns(&["phase", "ns/cycle", "fraction", "samples"]);
        t.numeric();
        for p in &self.phases {
            t.row(vec![
                p.name.clone(),
                self.ns_per_cycle(&p.name)
                    .map_or_else(|| String::from("-"), |v| format!("{v:.0}")),
                self.fraction(&p.name)
                    .map_or_else(|| String::from("-"), |v| format!("{:.1}%", v * 100.0)),
                p.samples.to_string(),
            ]);
        }
        t
    }

    /// The per-shard decide breakdown as a table (`shard`, `ns/cycle`,
    /// `share`, `samples`); empty unless detail mode was armed.
    #[must_use]
    pub fn shard_table(&self) -> Table {
        let mut t = Table::with_columns(&["shard", "decide ns/cycle", "share", "samples"]);
        t.numeric();
        let total: u64 = self.shards.iter().fold(0u64, |a, s| a.saturating_add(s.ns));
        for s in &self.shards {
            let per_cycle = if self.sampled_cycles == 0 {
                String::from("-")
            } else {
                format!("{:.0}", s.ns as f64 / self.sampled_cycles as f64)
            };
            let share = if total == 0 {
                String::from("-")
            } else {
                format!("{:.1}%", s.ns as f64 / total as f64 * 100.0)
            };
            t.row(vec![
                s.shard.to_string(),
                per_cycle,
                share,
                s.samples.to_string(),
            ]);
        }
        t
    }

    /// Renders the summary plus phase table as monospace text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "profiled {} of {} cycles\n",
            self.sampled_cycles, self.cycles
        );
        out.push_str(&self.phase_table().to_text());
        if let Some(f) = self.decide_fraction() {
            out.push_str(&format!("decide fraction: {:.1}%\n", f * 100.0));
        }
        if !self.shards.is_empty() {
            out.push_str(&self.shard_table().to_text());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_profiler_never_samples() {
        let mut p = Profiler::kernel();
        for _ in 0..100 {
            assert!(!p.begin_cycle());
        }
        assert!(p.report().is_empty());
        assert_eq!(p.cycles(), 0, "disarmed cycles are not even counted");
    }

    #[test]
    fn arm_one_samples_every_cycle() {
        let mut p = Profiler::kernel();
        p.arm(1);
        let mut sampled = 0;
        for _ in 0..64 {
            if p.begin_cycle() {
                sampled += 1;
                p.record_phase(PHASE_PREPARE, 10);
                p.record_phase(PHASE_DECIDE, 30);
                p.record_phase(PHASE_COMMIT, 10);
            }
        }
        assert_eq!(sampled, 64);
        let r = p.report();
        assert_eq!(r.sampled_cycles, 64);
        assert_eq!(r.total_ns(), 64 * 50);
        assert!((r.decide_fraction().unwrap() - 0.6).abs() < 1e-9);
        assert!((r.ns_per_cycle("prepare").unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_rate_rounds_to_power_of_two() {
        let mut p = Profiler::kernel();
        p.arm(6); // rounds to 8
        let sampled = (0..80).filter(|_| p.begin_cycle()).count();
        assert_eq!(sampled, 10);
        assert_eq!(p.cycles(), 80);
        assert_eq!(p.sampled_cycles(), 10);
    }

    #[test]
    fn detail_mode_attributes_shards() {
        let mut p = Profiler::kernel();
        p.arm_detailed(1, 4);
        assert!(p.begin_cycle());
        p.record_shard(0, 5);
        p.record_shard(3, 15);
        p.record_shard(99, 1); // out of range: ignored, not a panic
        let r = p.report();
        assert_eq!(r.shards.len(), 4);
        assert_eq!(r.shards[0].ns, 5);
        assert_eq!(r.shards[3].ns, 15);
        assert_eq!(r.shards[1].ns, 0);
        let text = r.shard_table().to_text();
        assert!(text.contains("75.0%"), "{text}");
    }

    #[test]
    fn merge_folds_phases_and_counts() {
        let mut a = Profiler::engine();
        a.arm(1);
        assert!(a.begin_cycle());
        a.record_phase(PHASE_GATHER, 7);
        let mut b = Profiler::engine();
        b.arm(1);
        assert!(b.begin_cycle());
        b.record_phase(PHASE_GATHER, 3);
        b.record_phase(PHASE_MERGE, 10);
        a.merge(&b);
        let r = a.report();
        assert_eq!(r.cycles, 2);
        assert_eq!(r.phases[PHASE_GATHER].ns, 10);
        assert_eq!(r.phases[PHASE_MERGE].ns, 10);
    }

    #[test]
    fn stopwatch_laps_are_monotone() {
        let mut w = Stopwatch::start();
        let a = w.lap_ns();
        let b = w.elapsed_ns();
        // Both reads are valid nanosecond counts (no panic, no wrap).
        assert!(a < u64::MAX && b < u64::MAX);
    }

    #[test]
    fn amdahl_projection_matches_formula() {
        let mut p = Profiler::kernel();
        p.arm(1);
        assert!(p.begin_cycle());
        p.record_phase(PHASE_DECIDE, 60);
        p.record_phase(PHASE_COMMIT, 40);
        let r = p.report();
        let projected = r.amdahl_projection(4).unwrap();
        assert!((projected - 1.0 / (0.4 + 0.6 / 4.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_report_renders_without_percentages() {
        let r = Profiler::kernel().report();
        assert!(r.is_empty());
        assert!(r.decide_fraction().is_none());
        assert!(r.render_text().contains("profiled 0 of 0 cycles"));
    }
}
