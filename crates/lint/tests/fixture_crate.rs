//! Fixture-crate integration tests: every registered lint is exercised
//! through its fire, waive, and baseline paths by feeding the files
//! under `fixtures/` to the engine at synthetic workspace paths that
//! trigger each rule's crate/file scoping.

use ssq_lint::{run_sources, Baseline, Diagnostic, EngineConfig, Report};

fn src(rel: &str, text: &str) -> (String, String) {
    (rel.to_string(), text.to_string())
}

/// The nine textual rules plus the two whole-set semantic lints, one
/// fixture file each, mapped to the paths their scoping demands.
fn textual_fixture_set() -> Vec<(String, String)> {
    vec![
        src(
            "crates/core/src/hot.rs",
            include_str!("../fixtures/textual_core.rs"),
        ),
        src(
            "crates/stats/src/counter.rs",
            include_str!("../fixtures/narrowing_counter.rs"),
        ),
        src(
            "crates/trace/src/lib.rs",
            "//! Stub lib root so `report.rs` counts as library code.\npub mod report;\n",
        ),
        src(
            "crates/trace/src/report.rs",
            include_str!("../fixtures/print_in_lib.rs"),
        ),
        src(
            "crates/core/src/switch.rs",
            include_str!("../fixtures/invariant_coverage.rs"),
        ),
        src(
            "crates/core/src/decide.rs",
            include_str!("../fixtures/shared_mut_decide.rs"),
        ),
        src(
            "crates/core/src/admission.rs",
            include_str!("../fixtures/silent_degrade.rs"),
        ),
        src(
            "crates/sim/src/order.rs",
            include_str!("../fixtures/nondet_order.rs"),
        ),
        src(
            "crates/faults/src/inject.rs",
            include_str!("../fixtures/feature_defs.rs"),
        ),
        src(
            "crates/circuit/src/uses.rs",
            include_str!("../fixtures/feature_use.rs"),
        ),
    ]
}

fn run_textual_fixtures() -> Report {
    run_sources(textual_fixture_set(), &EngineConfig::default())
}

fn by_rule<'r>(report: &'r Report, rule: &str) -> Vec<&'r Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .collect()
}

#[test]
fn every_non_reachability_lint_fires_exactly_once() {
    let report = run_textual_fixtures();
    let mut rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec![
            "feature-gate-hygiene",
            "invariant-site-coverage",
            "must-use-decision",
            "no-lossy-index",
            "no-narrowing-cast",
            "no-nondeterministic-order",
            "no-print-in-lib",
            "no-shared-mut-in-shards",
            "no-silent-degrade",
            "no-todo",
            "no-unwrap",
        ],
        "each fixture carries exactly one un-waived site per rule"
    );
    assert_eq!(report.blocking().len(), 11);
}

#[test]
fn fire_sites_land_on_the_expected_lines() {
    let report = run_textual_fixtures();
    let expect: &[(&str, &str, usize)] = &[
        ("no-unwrap", "crates/core/src/hot.rs", 6),
        ("no-todo", "crates/core/src/hot.rs", 13),
        ("must-use-decision", "crates/core/src/hot.rs", 21),
        ("no-lossy-index", "crates/core/src/hot.rs", 30),
        ("no-narrowing-cast", "crates/stats/src/counter.rs", 5),
        ("no-print-in-lib", "crates/trace/src/report.rs", 4),
        ("invariant-site-coverage", "crates/core/src/switch.rs", 11),
        ("no-shared-mut-in-shards", "crates/core/src/decide.rs", 5),
        ("no-silent-degrade", "crates/core/src/admission.rs", 6),
        ("no-nondeterministic-order", "crates/sim/src/order.rs", 8),
        ("feature-gate-hygiene", "crates/circuit/src/uses.rs", 6),
    ];
    for &(rule, file, line) in expect {
        let hits = by_rule(&report, rule);
        assert_eq!(hits.len(), 1, "{rule}: {hits:?}");
        assert_eq!(
            (hits[0].file.as_str(), hits[0].line),
            (file, line),
            "{rule}"
        );
    }
}

#[test]
fn waivers_suppress_the_twin_sites() {
    // Each fixture pairs every firing site with a waived twin; if a
    // waiver stopped parsing we would see a second finding for its rule.
    let report = run_textual_fixtures();
    for rule in [
        "no-unwrap",
        "no-todo",
        "must-use-decision",
        "no-lossy-index",
        "no-narrowing-cast",
        "no-print-in-lib",
        "invariant-site-coverage",
        "no-shared-mut-in-shards",
        "no-silent-degrade",
        "no-nondeterministic-order",
        "feature-gate-hygiene",
    ] {
        assert_eq!(by_rule(&report, rule).len(), 1, "waiver failed for {rule}");
    }
}

#[test]
fn feature_gate_stub_and_exempt_crate_pass() {
    let report = run_textual_fixtures();
    let hits = by_rule(&report, "feature-gate-hygiene");
    // The faults-crate reference and every FaultPlan mention stay clean;
    // only the ungated inject_fault reference in circuit fires.
    assert!(hits.iter().all(|d| d.file == "crates/circuit/src/uses.rs"));
    assert!(hits.iter().all(|d| d.message.contains("inject_fault")));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("FaultPlan")));
}

#[test]
fn prof_stub_twins_satisfy_feature_gate_hygiene() {
    // The profiler's CycleProf/EngineProf pattern: the type name is
    // dual-defined (real under `prof`, zero-sized stub otherwise) and
    // never fires; a prof-only helper with no stub twin fires exactly
    // once, from the one ungated reference.
    let report = run_sources(
        vec![
            src(
                "crates/core/src/prof.rs",
                include_str!("../fixtures/prof_stub_twin.rs"),
            ),
            src(
                "crates/sim/src/engineprof.rs",
                include_str!("../fixtures/prof_stub_use.rs"),
            ),
        ],
        &EngineConfig::default(),
    );
    let hits = by_rule(&report, "feature-gate-hygiene");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].file, "crates/sim/src/engineprof.rs");
    assert!(
        hits[0].message.contains("arm_detail_buffer"),
        "{}",
        hits[0].message
    );
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("CycleProf")));
}

#[test]
fn shard_purity_catches_impurity_two_hops_below_the_root() {
    // The ISSUE acceptance case: `tally` reads a static and sits two
    // call-graph hops below `decide_output`.
    let report = run_sources(
        vec![src(
            "crates/core/src/decide.rs",
            include_str!("../fixtures/purity_two_hops.rs"),
        )],
        &EngineConfig::default(),
    );
    let hits = by_rule(&report, "shard-purity");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    let d = hits[0];
    assert_eq!(d.line, 26, "anchored on `fn tally`");
    assert!(
        d.message
            .contains("Switch::decide_output -> Switch::gather_requests -> tally"),
        "path missing from: {}",
        d.message
    );
    assert!(d.message.contains("HOT_DEBUG (static item)"));
    // The waived impure helper (wall-clock access) is reachable too but
    // stays suppressed — and the whole report holds nothing else.
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("noisy_helper")));
    assert_eq!(report.diagnostics.len(), 1);
}

#[test]
fn panic_freedom_profiles_reachable_functions() {
    let report = run_sources(
        vec![src(
            "crates/core/src/switch.rs",
            include_str!("../fixtures/panic_freedom.rs"),
        )],
        &EngineConfig::default(),
    );
    let hits = by_rule(&report, "panic-freedom-reachability");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    let d = hits[0];
    assert!(d.message.contains("QosSwitch::commit"));
    assert_eq!(d.anchor, "QosSwitch::commit|p1i1a1");
    // `waived_hot` indexes a slot but carries a waiver.
    assert!(!report
        .diagnostics
        .iter()
        .any(|x| x.anchor.contains("waived_hot")));
    // The same `.unwrap()` also trips the textual hot-path rule.
    assert_eq!(by_rule(&report, "no-unwrap").len(), 1);
}

fn run_dataflow_fixtures() -> Report {
    // One connected workspace: the switch-file root calls into the
    // decide-kernel fixture, which calls into the arbiter crate.
    run_sources(
        vec![
            src(
                "crates/core/src/switch.rs",
                include_str!("../fixtures/mask_width.rs"),
            ),
            src(
                "crates/core/src/decide.rs",
                include_str!("../fixtures/hot_arith.rs"),
            ),
            src(
                "crates/arbiter/src/lrg.rs",
                include_str!("../fixtures/cross_crate_pick.rs"),
            ),
        ],
        &EngineConfig::default(),
    )
}

#[test]
fn mask_width_fires_on_shift_by_unbounded_variable() {
    let report = run_dataflow_fixtures();
    let hits = by_rule(&report, "mask-width-safety");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    let d = hits[0];
    assert_eq!(d.file, "crates/core/src/switch.rs");
    assert_eq!(d.line, 21, "anchored on the raw `1u64 << amt`");
    assert!(d.message.contains("shift_unbounded"), "{}", d.message);
    // The waived twin shifts by the same raw parameter but stays quiet
    // (it still fires panic-freedom — the waiver names only this rule).
    assert!(!report
        .diagnostics
        .iter()
        .any(|x| x.rule == "mask-width-safety" && x.anchor.contains("shift_waived")));
}

#[test]
fn mask_width_discharges_the_assert_bounded_shift() {
    let report = run_dataflow_fixtures();
    let proof = report
        .discharged
        .iter()
        .find(|d| d.rule == "mask-width-safety" && d.evidence.contains("shift_proven"))
        .expect("assert!(bits < 64) must certify the shift");
    assert_eq!(proof.file, "crates/core/src/switch.rs");
    assert!(
        proof.evidence.contains("<<"),
        "evidence names the operator: {}",
        proof.evidence
    );
}

#[test]
fn hot_arith_fires_waives_and_discharges() {
    let report = run_dataflow_fixtures();
    let hits = by_rule(&report, "unchecked-hot-arith");
    // Only the raw `a + b` fires; the masked add is proven and the
    // indexing site is waived.
    assert!(
        hits.iter().all(|d| d.file == "crates/core/src/decide.rs"),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|d| d.anchor.contains("unbounded_sum")),
        "{hits:?}"
    );
    assert!(!hits.iter().any(|d| d.anchor.contains("waived_mix")));
    assert!(!hits.iter().any(|d| d.anchor.contains("bounded_diff")));
    let proof = report
        .discharged
        .iter()
        .find(|d| d.rule == "unchecked-hot-arith" && d.evidence.contains("bounded_diff"))
        .expect("the masked add must be discharged with evidence");
    assert_eq!(proof.file, "crates/core/src/decide.rs");
}

#[test]
fn panic_freedom_reaches_across_crates_in_two_hops() {
    // step (core) -> hot_decide (core) -> cross_hop -> lrg::pick_winner
    // (arbiter): the unified workspace graph must carry the panic-freedom
    // contract into the second crate.
    let report = run_dataflow_fixtures();
    let hits = by_rule(&report, "panic-freedom-reachability");
    let cross = hits
        .iter()
        .find(|d| d.file == "crates/arbiter/src/lrg.rs")
        .expect("cross-crate target must be profiled");
    assert!(cross.message.contains("pick_winner"), "{}", cross.message);
    assert_eq!(cross.anchor, "pick_winner|p0i1a0");
}

#[test]
fn baseline_round_trip_unblocks_recorded_findings_only() {
    let report = run_textual_fixtures();
    assert_eq!(report.blocking().len(), 11);

    // Grandfather today's findings, re-run, apply: nothing blocks.
    let baseline = Baseline::parse(&ssq_lint::baseline::render(&report.diagnostics));
    assert_eq!(baseline.len(), 11);
    let mut rerun = run_textual_fixtures();
    baseline.apply(&mut rerun.diagnostics);
    assert!(rerun.blocking().is_empty(), "{:?}", rerun.blocking());

    // A brand-new violation still blocks against the same baseline.
    let mut sources = textual_fixture_set();
    sources.push(src(
        "crates/core/src/fresh.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    ));
    let mut with_new = run_sources(sources, &EngineConfig::default());
    baseline.apply(&mut with_new.diagnostics);
    let blocking = with_new.blocking();
    assert_eq!(blocking.len(), 1);
    assert_eq!(blocking[0].file, "crates/core/src/fresh.rs");
    assert_eq!(blocking[0].rule, "no-unwrap");
}

#[test]
fn runs_are_deterministic() {
    let a = run_textual_fixtures();
    let b = run_textual_fixtures();
    let key = |r: &Report| -> Vec<(String, usize, String, String)> {
        r.diagnostics
            .iter()
            .map(|d| (d.file.clone(), d.line, d.rule.to_string(), d.anchor.clone()))
            .collect()
    };
    assert_eq!(key(&a), key(&b));
}
