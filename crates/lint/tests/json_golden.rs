//! Golden-file test for the `--json` document: the rendered schema is
//! part of the tool contract (scripts/check.sh and external tooling
//! parse it), so any shape change must be made deliberately by
//! regenerating the golden with `UPDATE_GOLDEN=1 cargo test -p ssq-lint`.

use std::fs;
use std::path::PathBuf;

use ssq_lint::{render_json, rule_names, run_sources, EngineConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/lint.json")
}

/// A small deterministic run: one firing file, one baselined-free file.
fn document() -> String {
    let report = run_sources(
        vec![
            (
                "crates/core/src/hot.rs".to_string(),
                "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g() {\n    todo!()\n}\n"
                    .to_string(),
            ),
            (
                "crates/stats/src/counter.rs".to_string(),
                "pub fn fold(total: u64) -> u32 {\n    total as u32\n}\n".to_string(),
            ),
        ],
        &EngineConfig::default(),
    );
    render_json(
        &report.diagnostics,
        &report.discharged,
        report.files_scanned,
        &rule_names(),
    )
}

#[test]
fn json_document_matches_golden() {
    let doc = document();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &doc).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test -p ssq-lint",
            path.display()
        )
    });
    assert_eq!(
        doc, golden,
        "JSON schema drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn json_document_structural_contract() {
    let doc = document();
    for key in [
        "\"schema\": 2",
        "\"engine\": \"ssq-lint\"",
        "\"files_scanned\": 2",
        "\"rules\": [",
        "\"summary\": {\"total\": 3, \"new\": 3, \"baselined\": 0, \"discharged\": ",
        "\"findings\": [",
        "\"fingerprint\": \"",
        "\"severity\": \"deny\"",
    ] {
        assert!(doc.contains(key), "missing {key} in:\n{doc}");
    }
    // Every registered rule is listed.
    for rule in rule_names() {
        assert!(doc.contains(&format!("\"{rule}\"")), "rule {rule} unlisted");
    }
    // Balanced braces/brackets — the cheap well-formedness check an
    // offline workspace can afford without a JSON parser dependency.
    let opens = doc.matches(['{', '[']).count();
    let closes = doc.matches(['}', ']']).count();
    assert_eq!(opens, closes);
    assert!(doc.ends_with("}\n"));
}
