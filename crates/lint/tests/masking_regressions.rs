//! Regression pins for the regex engine's false-positive class: rule
//! patterns appearing inside string literals, comments, or doc examples
//! used to be flagged as real findings (and, worse, a quoted waiver
//! marker used to *suppress* real findings). The token engine must
//! leave all of these clean — and still catch the adjacent real sites.

use ssq_lint::{run_sources, EngineConfig, Report};

fn run_one(rel: &str, text: &str) -> Report {
    run_sources(
        vec![(rel.to_string(), text.to_string())],
        &EngineConfig::default(),
    )
}

#[test]
fn unwrap_inside_string_literal_is_not_a_finding() {
    let r = run_one(
        "crates/core/src/hot.rs",
        "pub fn f() -> &'static str {\n    \"call x.unwrap() at your peril\"\n}\n",
    );
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn panic_in_comment_and_doc_example_is_not_a_finding() {
    let r = run_one(
        "crates/arbiter/src/dwrr.rs",
        "// never panic! here\n/// ```\n/// x.unwrap();\n/// panic!(\"boom\");\n/// ```\npub fn f() {}\n",
    );
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn todo_inside_raw_string_is_not_a_finding() {
    let r = run_one(
        "crates/sim/src/run.rs",
        "pub fn marker() -> &'static str {\n    r#\"todo!() unimplemented!()\"#\n}\n",
    );
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn quoted_event_site_does_not_need_sanitizer_coverage() {
    // The window rules scan code-only line renders: an EventKind name
    // inside a string is not an emission site.
    let r = run_one(
        "crates/core/src/switch.rs",
        "pub fn label() -> &'static str {\n    \"EventKind::Grant\"\n}\n",
    );
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| d.rule == "invariant-site-coverage"),
        "{:?}",
        r.diagnostics
    );
}

#[test]
fn quoted_degrade_site_is_not_a_degradation() {
    let r = run_one(
        "crates/core/src/admission.rs",
        "pub fn help() -> &'static str {\n    \".set_gl_demoted( flips an output\" // .readmit( too\n}\n",
    );
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn hashmap_in_string_is_not_nondeterminism() {
    let r = run_one(
        "crates/core/src/order.rs",
        "pub fn why() -> &'static str {\n    \"HashMap iteration order is random\"\n}\n",
    );
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn shared_mut_names_in_strings_stay_clean_in_decide() {
    let r = run_one(
        "crates/core/src/decide.rs",
        "pub fn doc() -> &'static str {\n    \"no Mutex, RefCell, or AtomicU64 in shards\"\n}\n",
    );
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
}

#[test]
fn waiver_quoted_in_string_is_phantom_no_more() {
    // The regex engine read waivers from raw source text, so a quoted
    // marker on one line silently suppressed a real finding on the
    // next. The token engine reads waivers from comment tokens only:
    // the real .unwrap() below must still fire.
    let r = run_one(
        "crates/core/src/hot.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    let _m = \"// ssq-lint: allow(no-unwrap)\";\n    x.unwrap()\n}\n",
    );
    let rules: Vec<&str> = r.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec!["no-unwrap"], "{:?}", r.diagnostics);
    assert_eq!(r.diagnostics[0].line, 3);
}

#[test]
fn real_sites_next_to_quoted_lookalikes_still_fire() {
    // Masking must not cut the other way: blanking literal bytes from
    // the line render keeps columns, so neighbor-token logic still sees
    // the real call.
    let r = run_one(
        "crates/core/src/hot.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    let _s = \"x.unwrap()\"; x.unwrap()\n}\n",
    );
    let unwraps: Vec<_> = r
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-unwrap")
        .collect();
    assert_eq!(unwraps.len(), 1, "{:?}", r.diagnostics);
}
