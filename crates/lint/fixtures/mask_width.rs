// Fixture: mask-width-safety. Mounted at crates/core/src/switch.rs so
// `step` is the panic-freedom/mask-width root. `shift_unbounded` shifts
// by a raw parameter (the shift-by-unbounded-variable case) and fires;
// `shift_proven` bounds the amount with an assert and is discharged;
// `shift_waived` carries an in-source waiver. `step` also calls into
// the decide-kernel fixture (`hot_decide`) and, through it, a second
// crate — exercising the unified workspace graph.

pub struct MaskKernel;

impl MaskKernel {
    pub fn step(&mut self, amt: u64, bits: u64) -> u64 {
        let lanes = [0u64; 4];
        self.shift_unbounded(amt)
            ^ self.shift_proven(bits)
            ^ self.shift_waived(amt)
            ^ hot_decide(amt, bits, &lanes)
    }

    fn shift_unbounded(&self, amt: u64) -> u64 {
        1u64 << amt
    }

    fn shift_proven(&self, bits: u64) -> u64 {
        assert!(bits < 64, "lane count fits the u64 port mask");
        1u64 << bits
    }

    fn shift_waived(&self, amt: u64) -> u64 {
        // ssq-lint: allow(mask-width-safety) — amt is pre-masked by the crossbar setup
        1u64 << amt
    }
}
