// Fixture: no-silent-degrade in a core-crate file. The window is 25
// lines in either direction, so the silent and waived sites sit far
// above the announced one.

pub fn degrade_silently(&mut self, out: usize) {
    self.faultctl.set_gl_demoted(out);
}

pub fn degrade_waived(&mut self, out: usize) {
    // ssq-lint: allow(no-silent-degrade)
    self.admission.readmit(out);
}

// -- padding so the loud section below is outside the 25-line window --
// pad 01
// pad 02
// pad 03
// pad 04
// pad 05
// pad 06
// pad 07
// pad 08
// pad 09
// pad 10
// pad 11
// pad 12
// pad 13
// pad 14
// pad 15
// pad 16
// pad 17
// pad 18
// pad 19
// pad 20
// pad 21
// pad 22
// pad 23
// pad 24
// pad 25
// pad 26
// -- end padding --

pub fn degrade_loudly(&mut self, out: usize) {
    self.faultctl.set_lrg_fallback(out);
    self.trace.push(EventKind::Degraded);
}
