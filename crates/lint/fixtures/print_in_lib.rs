// Fixture: no-print-in-lib in a library crate module.

pub fn report(n: u64) {
    println!("done: {n}");
    // ssq-lint: allow(no-print-in-lib)
    eprintln!("warn: {n}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        println!("tests may print");
    }
}
