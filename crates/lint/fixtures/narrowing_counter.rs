// Fixture: no-narrowing-cast in counter arithmetic (mapped to
// crates/stats/src/counter.rs by the test).

pub fn fold(total: u64) -> u32 {
    let t = total as u32;
    // ssq-lint: allow(no-narrowing-cast)
    let u = (total >> 1) as u32;
    t + u
}
