// Fixture: definition side of the profiler stub-twin pattern (mapped
// to crates/core/src/prof.rs). `CycleProf` is dual-defined — real
// under the `prof` feature, zero-sized stub otherwise — so the name is
// unconditional and references to it never fire feature-gate-hygiene.
// `arm_detail_buffer` exists only under `prof` with no stub twin, so an
// ungated reference elsewhere must fire.

#[cfg(feature = "prof")]
pub struct CycleProf {
    pub mask: u64,
}

#[cfg(not(feature = "prof"))]
pub struct CycleProf;

#[cfg(feature = "prof")]
pub fn arm_detail_buffer(outputs: usize) -> usize {
    outputs.saturating_mul(2)
}
