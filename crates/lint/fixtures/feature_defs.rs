// Fixture: definition side of feature-gate-hygiene (mapped to
// crates/faults/src/inject.rs). `inject_fault` exists only under the
// `faults` feature; `FaultPlan` has an ungated stub twin, so the name
// is unconditional and never fires.

#[cfg(feature = "faults")]
pub fn inject_fault(x: u64) -> u64 {
    x ^ 1
}

#[cfg(feature = "faults")]
pub struct FaultPlan {
    pub mask: u64,
}

#[cfg(not(feature = "faults"))]
pub struct FaultPlan;

pub fn exempt_crate_reference() -> u64 {
    inject_fault(7)
}
