// Fixture: invariant-site-coverage in the switch core (mapped to
// crates/core/src/switch.rs). The rule looks backward only, so the
// waived and firing sites come before the first sanitize:: call.

pub fn emit_waived(&mut self) {
    // ssq-lint: allow(invariant-site-coverage)
    self.trace.push(EventKind::Chained);
}

pub fn emit_uncovered(&mut self) {
    self.trace.push(EventKind::Grant);
}

pub fn emit_covered(&mut self) {
    sanitize::check_grant(self);
    self.trace.push(EventKind::Inhibit);
}
