// Fixture: the shard-purity acceptance case. `tally` is impure (reads
// a static) and sits TWO hops below the decide root:
//   decide_output -> gather_requests -> tally
// A second impure helper is reachable but carries a waiver.

static HOT_DEBUG: u64 = 0;

pub struct Switch;

impl Switch {
    pub fn decide_output(&self) -> u64 {
        self.gather_requests() + self.noisy_helper()
    }

    fn gather_requests(&self) -> u64 {
        tally()
    }

    // ssq-lint: allow(shard-purity)
    fn noisy_helper(&self) -> u64 {
        let t = std::time::Instant::now();
        t.elapsed().as_nanos() as u64
    }
}

fn tally() -> u64 {
    HOT_DEBUG + 1
}
