// Fixture: no-nondeterministic-order in a kernel crate. BTreeMap is the
// sanctioned replacement; test modules are exempt.

use std::collections::BTreeMap;

pub fn build(n: usize) -> BTreeMap<usize, u64> {
    let mut m = BTreeMap::new();
    let bad = HashMap::new();
    // ssq-lint: allow(no-nondeterministic-order)
    let tolerated = HashSet::new();
    for i in 0..n {
        m.insert(i, bad.len() as u64 + tolerated.len() as u64);
    }
    m
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let _ = HashMap::<u8, u8>::new();
    }
}
