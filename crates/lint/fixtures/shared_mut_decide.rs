// Fixture: no-shared-mut-in-shards in the shard decide kernel (mapped
// to crates/core/src/decide.rs).

pub fn decide(&self) -> u64 {
    let cache = RefCell::new(0u64);
    // ssq-lint: allow(no-shared-mut-in-shards)
    let guard = Mutex::new(1u64);
    *cache.borrow() + *guard.lock().unwrap_or_default()
}
