// Fixture: reference side of feature-gate-hygiene (mapped to a
// non-exempt crate). One ungated reference fires; the gated, waived,
// and stub-name references do not.

pub fn ungated() -> u64 {
    inject_fault(3)
}

#[cfg(feature = "faults")]
pub fn gated() -> u64 {
    inject_fault(4)
}

pub fn waived() -> u64 {
    // ssq-lint: allow(feature-gate-hygiene)
    inject_fault(5)
}

pub fn stub_name_is_fine() -> FaultPlan {
    FaultPlan::default()
}
