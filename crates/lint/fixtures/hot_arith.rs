// Fixture: unchecked-hot-arith. Mounted at crates/core/src/decide.rs —
// the configured hot file — and reached from the `step` root in the
// mask_width fixture. `unbounded_sum` adds two raw u64s and fires;
// `bounded_diff` masks its operand so the interval domain proves the
// add cannot overflow (discharged); `waived_mix` indexes an
// unknown-length slice but carries an in-source waiver. `cross_hop`
// enters the arbiter crate through a module-qualified free-fn call —
// the two-hop cross-crate reachability case.

pub fn hot_decide(a: u64, b: u64, lanes: &[u64]) -> u64 {
    unbounded_sum(a, b) ^ bounded_diff(a) ^ waived_mix(a, lanes) ^ cross_hop(b)
}

fn unbounded_sum(a: u64, b: u64) -> u64 {
    a + b
}

fn bounded_diff(a: u64) -> u64 {
    let clamped = a & 0xFF;
    clamped + 1
}

fn waived_mix(a: u64, lanes: &[u64]) -> u64 {
    // ssq-lint: allow(unchecked-hot-arith) — lane table sized by the fabric ctor
    lanes[(a & 3) as usize]
}

fn cross_hop(b: u64) -> u64 {
    lrg::pick_winner(b)
}
