// Fixture: cross-crate reachability. Mounted at crates/arbiter/src/lrg.rs
// and reached from the core-crate `step` root two hops away
// (step -> hot_decide -> cross_hop -> lrg::pick_winner). The unchecked
// indexing here must surface as a panic-freedom-reachability finding in
// *this* crate — the per-crate graphs alone would dead-end at the
// crate boundary.

pub fn pick_winner(x: u64) -> u64 {
    let table = [1u64, 2, 4, 8];
    table[x as usize]
}
