// Fixture: the per-line textual rules in a hot-path (core) crate file.
// Every rule has a firing site and a waived twin; test-gated code is
// exempt.

pub fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    // ssq-lint: allow(no-unwrap)
    let b = x.unwrap();
    a + b
}

pub fn g() {
    todo!()
}

pub fn g2() {
    // ssq-lint: allow(no-todo)
    unimplemented!()
}

pub struct StepDecision;

#[must_use]
pub struct FinalGrant;

// ssq-lint: allow(must-use-decision)
pub struct RetryOutcome;

pub fn h(winner: usize, port: usize) -> (u32, u16) {
    let w = winner as u32;
    // ssq-lint: allow(no-lossy-index)
    let p = port as u16;
    (w, p as u16)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let x: Option<u8> = None;
        x.unwrap();
        todo!()
    }
}
