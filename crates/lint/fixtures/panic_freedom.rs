// Fixture: panic-freedom-reachability. `commit` (reachable from the
// step root) holds one panic site, one indexing site, and one
// arithmetic site; `waived_hot` is also reachable but waived.

pub struct QosSwitch {
    slots: Vec<u64>,
}

impl QosSwitch {
    pub fn step(&mut self, now: u64) {
        self.commit(now);
        self.waived_hot();
    }

    fn commit(&mut self, now: u64) -> u64 {
        let x = self.slots[0];
        let y = x + now;
        self.push(y).unwrap()
    }

    // ssq-lint: allow(panic-freedom-reachability)
    fn waived_hot(&mut self) -> u64 {
        self.slots[1]
    }

    fn push(&mut self, v: u64) -> Option<u64> {
        self.slots.push(v);
        Some(v)
    }
}
