// Fixture: reference side of the profiler stub-twin pattern (mapped to
// a non-exempt crate). The dual-defined `CycleProf` name is clean
// everywhere; the twinless prof-only `arm_detail_buffer` fires once,
// from the ungated reference only.

pub fn stub_twin_name_is_fine() -> CycleProf {
    CycleProf::default()
}

pub fn ungated_detail() -> usize {
    arm_detail_buffer(8)
}

#[cfg(feature = "prof")]
pub fn gated_detail() -> usize {
    arm_detail_buffer(16)
}

pub fn waived_detail() -> usize {
    // ssq-lint: allow(feature-gate-hygiene)
    arm_detail_buffer(32)
}
