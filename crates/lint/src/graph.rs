//! The per-workspace call graph and its reachability queries.
//!
//! Nodes are the parsed functions; edges come from name-based call-site
//! resolution. With no type information the resolution is deliberately
//! an *over*-approximation — a `.decide(…)` site links to every method
//! named `decide` in the scanned crates — which is the sound direction
//! for the reachability lints: extra edges can only widen the set of
//! functions held to the purity/panic-freedom contracts, never let a
//! real violation slip outside it. Std-library calls (`Vec::push`,
//! `iter`, `collect`) resolve to nothing and simply terminate paths.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{CallSite, FnItem};
use crate::source::SourceFile;

/// The resolved call graph over a set of parsed functions.
pub struct CallGraph<'a> {
    /// All functions, indexed by position.
    pub fns: &'a [FnItem],
    /// name → indices of non-test functions with that bare name.
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// `Qual::name` (final two segments) → indices.
    by_suffix: BTreeMap<String, Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Indexes `fns` for resolution. Test-gated functions are excluded
    /// as call targets and roots: test helpers must not widen hot-path
    /// reachability.
    #[must_use]
    pub fn build(fns: &'a [FnItem]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_suffix: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(&f.name).or_default().push(idx);
            let segs: Vec<&str> = f.qual.rsplit("::").collect();
            if segs.len() >= 2 {
                by_suffix
                    .entry(format!("{}::{}", segs[1], segs[0]))
                    .or_default()
                    .push(idx);
            }
        }
        CallGraph {
            fns,
            by_name,
            by_suffix,
        }
    }

    /// Indexes `fns` for *workspace-wide* resolution. On top of
    /// [`CallGraph::build`], every non-test free function also gains
    /// module-qualified aliases derived from its defining file — the
    /// file stem (`fairness::jains` for `crates/stats/src/fairness.rs`)
    /// and the owning crate (`ssq_stats::jains`) — so cross-crate
    /// `module::fn` call sites resolve to their targets instead of
    /// dead-ending at the crate boundary. The old per-crate index could
    /// only resolve `Type::method` suffixes, which provably missed
    /// two-hop chains entering another crate through a module-qualified
    /// free function.
    #[must_use]
    pub fn build_workspace(fns: &'a [FnItem], files: &[SourceFile]) -> Self {
        let mut g = Self::build(fns);
        for (idx, f) in fns.iter().enumerate() {
            if f.is_test || f.is_method {
                continue;
            }
            let Some(file) = files.get(f.file) else {
                continue;
            };
            let stem = file
                .rel
                .rsplit('/')
                .next()
                .unwrap_or("")
                .trim_end_matches(".rs");
            if !stem.is_empty() && !matches!(stem, "lib" | "mod" | "main") {
                push_unique(&mut g.by_suffix, format!("{stem}::{}", f.name), idx);
            }
            if !file.crate_name.is_empty() {
                let krate = file.crate_name.replace('-', "_");
                push_unique(&mut g.by_suffix, format!("ssq_{krate}::{}", f.name), idx);
                push_unique(&mut g.by_suffix, format!("{krate}::{}", f.name), idx);
            }
        }
        g
    }

    /// The function indices a call site may land on.
    #[must_use]
    pub fn resolve(&self, from: &FnItem, call: &CallSite) -> Vec<usize> {
        if let Some(q) = &call.qualifier {
            // `Qual::name`: exact suffix match only — `Vec::new` must
            // not fan out to every constructor in the workspace.
            return self
                .by_suffix
                .get(&format!("{q}::{}", call.name))
                .cloned()
                .unwrap_or_default();
        }
        let Some(candidates) = self.by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        if call.method {
            // `.name(…)`: any method with that name.
            return candidates
                .iter()
                .copied()
                .filter(|&i| self.fns[i].is_method)
                .collect();
        }
        // Bare `name(…)`: prefer same-file free functions, then fall
        // back to every free function with the name.
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| !self.fns[i].is_method && self.fns[i].file == from.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        candidates
            .iter()
            .copied()
            .filter(|&i| !self.fns[i].is_method)
            .collect()
    }

    /// Finds root functions by bare name, optionally constrained to a
    /// file (path suffix match on the owning file's `rel`).
    #[must_use]
    pub fn roots(&self, name: &str, file_rel: Option<&str>, rels: &[String]) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| {
                        file_rel.is_none_or(|want| {
                            rels.get(self.fns[i].file)
                                .is_some_and(|r| r.ends_with(want))
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every function reachable from `roots` (inclusive), as a sorted
    /// set of indices, with the call edge that first reached each node
    /// (for explainable diagnostics).
    #[must_use]
    pub fn reachable(&self, roots: &[usize]) -> Reachability {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut via: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if seen.insert(r) {
                queue.push(r);
            }
        }
        while let Some(at) = queue.pop() {
            let f = &self.fns[at];
            for call in &f.calls {
                for target in self.resolve(f, call) {
                    if seen.insert(target) {
                        via.insert(target, at);
                        queue.push(target);
                    }
                }
            }
        }
        Reachability { seen, via }
    }
}

/// Inserts `idx` under `key` unless already recorded there.
fn push_unique(map: &mut BTreeMap<String, Vec<usize>>, key: String, idx: usize) {
    let v = map.entry(key).or_default();
    if !v.contains(&idx) {
        v.push(idx);
    }
}

/// The result of a reachability sweep.
pub struct Reachability {
    /// Every reachable function index, roots included.
    pub seen: BTreeSet<usize>,
    /// For each non-root reached node: the caller that first reached it.
    via: BTreeMap<usize, usize>,
}

impl Reachability {
    /// A `root -> … -> target` path of qualified names, for messages.
    #[must_use]
    pub fn path_to(&self, target: usize, fns: &[FnItem]) -> String {
        let mut segs = vec![fns[target].qual.clone()];
        let mut at = target;
        let mut hops = 0;
        while let Some(&parent) = self.via.get(&at) {
            segs.push(fns[parent].qual.clone());
            at = parent;
            hops += 1;
            if hops > 32 {
                break;
            }
        }
        segs.reverse();
        segs.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::source::SourceFile;

    fn graph_of(src: &str) -> (Vec<FnItem>, Vec<String>) {
        let f = SourceFile::new("crates/core/src/demo.rs", src.to_string());
        (parse(&f, 0).fns, vec![f.rel.clone()])
    }

    #[test]
    fn two_hop_reachability_resolves_methods_and_frees() {
        let (fns, rels) = graph_of(
            "impl Switch {\n    fn decide_output(&self) { self.gather(); }\n    fn gather(&self) { tally(); }\n}\nfn tally() {}\nfn unrelated() {}\n",
        );
        let g = CallGraph::build(&fns);
        let roots = g.roots("decide_output", Some("demo.rs"), &rels);
        assert_eq!(roots.len(), 1);
        let r = g.reachable(&roots);
        let names: Vec<&str> = r.seen.iter().map(|&i| fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["decide_output", "gather", "tally"]);
        let tally = fns.iter().position(|f| f.name == "tally").unwrap();
        assert_eq!(
            r.path_to(tally, &fns),
            "Switch::decide_output -> Switch::gather -> tally"
        );
    }

    #[test]
    fn qualified_calls_do_not_fan_out_by_bare_name() {
        let (fns, _) = graph_of(
            "impl A {\n    fn new() { touch(); }\n}\nimpl B {\n    fn new() {}\n}\nfn root() { B::new(); }\nfn touch() {}\n",
        );
        let g = CallGraph::build(&fns);
        let root = vec![fns.iter().position(|f| f.name == "root").unwrap()];
        let r = g.reachable(&root);
        let names: Vec<&str> = r.seen.iter().map(|&i| fns[i].qual.as_str()).collect();
        assert!(names.contains(&"B::new"));
        assert!(!names.contains(&"A::new"));
        assert!(!names.contains(&"touch"));
    }

    #[test]
    fn workspace_graph_resolves_cross_crate_module_calls() {
        // `fairness::jains(...)` from core must reach the free fn in
        // `crates/stats/src/fairness.rs` — the per-crate `Type::method`
        // index alone cannot resolve this two-hop chain.
        let files = vec![
            SourceFile::new(
                "crates/core/src/decide.rs",
                "fn kernel() { helper(); }\nfn helper() { fairness::jains(1); }\n".to_string(),
            ),
            SourceFile::new(
                "crates/stats/src/fairness.rs",
                "pub fn jains(x: u64) -> u64 { x }\n".to_string(),
            ),
        ];
        let fns: Vec<FnItem> = files
            .iter()
            .enumerate()
            .flat_map(|(i, f)| parse(f, i).fns)
            .collect();

        let per_crate = CallGraph::build(&fns);
        let root = vec![fns.iter().position(|f| f.name == "kernel").unwrap()];
        assert_eq!(per_crate.reachable(&root).seen.len(), 2, "old graph stops");

        let ws = CallGraph::build_workspace(&fns, &files);
        let r = ws.reachable(&root);
        let names: Vec<&str> = r.seen.iter().map(|&i| fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["kernel", "helper", "jains"]);
        let jains = fns.iter().position(|f| f.name == "jains").unwrap();
        assert_eq!(r.path_to(jains, &fns), "kernel -> helper -> jains");
    }

    #[test]
    fn test_fns_are_not_targets() {
        let (fns, _) = graph_of(
            "fn root() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { std::fs::write(); }\n}\n",
        );
        let g = CallGraph::build(&fns);
        let root = vec![fns.iter().position(|f| f.name == "root").unwrap()];
        let r = g.reachable(&root);
        assert_eq!(r.seen.len(), 1);
    }
}
