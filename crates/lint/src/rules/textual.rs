//! The nine legacy rules, ported from the regex scanner to the token
//! stream. Semantics and rule names are unchanged — existing
//! `ssq-lint: allow(...)` waivers keep working — but matching now
//! happens on code tokens (or on the code-only line render for the
//! window rules), so nothing can fire inside a string literal or a
//! comment by construction.

use crate::diag::{Diagnostic, Severity};
use crate::parse::ParsedFile;
use crate::source::SourceFile;

/// Crates whose non-test code sits on the simulation hot path: panics
/// there abort entire sweeps, so fallible APIs must return `Result`.
const NO_PANIC_CRATES: &[&str] = &["arbiter", "circuit", "core", "sim"];

/// Files doing counter/thermometer arithmetic, where a narrowing `as`
/// cast silently truncates `auxVC` state.
const NO_NARROWING_FILES: &[&str] = &[
    "crates/arbiter/src/ssvc.rs",
    "crates/arbiter/src/thermometer.rs",
    "crates/stats/src/counter.rs",
];

/// Runs every applicable legacy rule over one file. `crate_has_lib`
/// says whether the owning crate has a `lib.rs` — binary-only crates
/// (like `xtask` itself) legitimately own stdout.
pub fn check_file(
    file: &SourceFile,
    parsed: &ParsedFile,
    crate_has_lib: bool,
    out: &mut Vec<Diagnostic>,
) {
    let rel = file.rel.as_str();
    let crate_name = file.crate_name.as_str();

    if NO_PANIC_CRATES.contains(&crate_name) {
        no_unwrap(file, out);
    }
    if NO_NARROWING_FILES.contains(&rel) {
        no_narrowing_cast(file, out);
    }
    if crate_has_lib && is_library_source(rel) {
        no_print_in_lib(file, out);
    }
    no_todo(file, out);
    must_use_decisions(file, parsed, out);
    if crate_name != "types" {
        no_lossy_index(file, out);
    }
    if rel.ends_with("crates/core/src/switch.rs") {
        invariant_site_coverage(file, out);
    }
    if rel.ends_with("crates/core/src/decide.rs") {
        no_shared_mut_in_shards(file, out);
    }
    if rel.contains("crates/core/src/") || rel.contains("crates/faults/src/") {
        no_silent_degrade(file, out);
    }
}

/// Whether `rel` is library code of a workspace crate: under a `src/`
/// directory but neither a binary (`src/bin/`) nor a binary crate root
/// (`main.rs`).
fn is_library_source(rel: &str) -> bool {
    rel.contains("/src/") && !rel.contains("/src/bin/") && !rel.ends_with("/main.rs")
}

/// Emits one finding, anchored on the trimmed code-line text plus the
/// number of earlier same-rule findings on the same text (so repeated
/// lines stay distinct but the baseline survives line-number drift).
pub(crate) fn push(
    file: &SourceFile,
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    line: usize,
    message: String,
) {
    let text = file.code_line(line).trim().to_string();
    let occurrence = out
        .iter()
        .filter(|d| d.rule == rule && d.anchor.starts_with(&text) && d.file == file.rel)
        .count();
    out.push(Diagnostic {
        rule,
        severity: Severity::Deny,
        file: file.rel.clone(),
        line: line + 1,
        message,
        anchor: format!("{text}#{occurrence}"),
        baselined: false,
    });
}

/// Iterates non-test code tokens as `(stream index, line, text)`.
pub(crate) fn hot_tokens<'f>(
    file: &'f SourceFile,
) -> impl Iterator<Item = (usize, usize, &'f str)> {
    file.code_tokens()
        .filter(|(_, t)| !file.is_test_line(t.line))
        .map(|(i, t)| (i, t.line, t.text(&file.text)))
}

/// The code token at stream index `i`, as text (comments and literals
/// are transparent to neighbor checks — they are skipped).
pub(crate) fn code_text_at(file: &SourceFile, i: usize, step: isize) -> Option<&str> {
    let mut j = i as isize;
    loop {
        j += step;
        let tok = file.tokens.get(usize::try_from(j).ok()?)?;
        if tok.kind.is_code() {
            return Some(tok.text(&file.text));
        }
    }
}

/// `no-unwrap`: no `.unwrap()`, `.expect(...)`, or `panic!` in non-test
/// code of hot-path crates.
fn no_unwrap(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line, text) in hot_tokens(file) {
        let (hit, advice) = match text {
            "unwrap"
                if code_text_at(file, i, -1) == Some(".")
                    && code_text_at(file, i, 1) == Some("(") =>
            {
                (
                    true,
                    "return a Result (or use unwrap_or/match) instead of .unwrap()",
                )
            }
            "expect"
                if code_text_at(file, i, -1) == Some(".")
                    && code_text_at(file, i, 1) == Some("(") =>
            {
                (
                    true,
                    "return a Result instead of .expect(); panics here abort whole sweeps",
                )
            }
            "panic" if code_text_at(file, i, 1) == Some("!") => (
                true,
                "propagate an error instead of panic! on the simulation hot path",
            ),
            _ => (false, ""),
        };
        if hit {
            push(file, out, "no-unwrap", line, advice.to_string());
        }
    }
}

/// `no-narrowing-cast`: no `as u8/u16/u32/i8/i16/i32` in counter and
/// thermometer arithmetic — `auxVC` values are 64-bit and a narrowing
/// cast silently truncates.
fn no_narrowing_cast(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (i, line, text) in hot_tokens(file) {
        if text == "as" {
            if let Some(target) = code_text_at(file, i, 1).filter(|t| NARROW.contains(t)) {
                push(
                    file,
                    out,
                    "no-narrowing-cast",
                    line,
                    format!(
                        "`as {target}` truncates counter state; use try_from or widen the type"
                    ),
                );
            }
        }
    }
}

/// `no-print-in-lib`: no `println!` / `eprintln!` in library crates
/// outside `cfg(test)` — libraries return data (or emit trace events);
/// only binaries own stdout.
fn no_print_in_lib(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line, text) in hot_tokens(file) {
        if matches!(text, "println" | "eprintln") && code_text_at(file, i, 1) == Some("!") {
            push(
                file,
                out,
                "no-print-in-lib",
                line,
                format!(
                    "{text}! in library code; return data (or emit a trace event) and let \
                     the binary print"
                ),
            );
        }
    }
}

/// `no-todo`: no `todo!` / `unimplemented!` outside tests, anywhere.
fn no_todo(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, line, text) in hot_tokens(file) {
        if matches!(text, "todo" | "unimplemented") && code_text_at(file, i, 1) == Some("!") {
            push(
                file,
                out,
                "no-todo",
                line,
                format!("{text}! must not ship in non-test code"),
            );
        }
    }
}

/// `must-use-decision`: arbitration result types (`*Decision`, `*Grant`,
/// `*Outcome`) must be `#[must_use]` — dropping one silently discards an
/// arbitration.
fn must_use_decisions(file: &SourceFile, parsed: &ParsedFile, out: &mut Vec<Diagnostic>) {
    for ty in &parsed.types {
        if file.is_test_line(ty.line) {
            continue;
        }
        let decisionish = ["Decision", "Grant", "Outcome"]
            .iter()
            .any(|suffix| ty.name.ends_with(suffix) && ty.name.len() > suffix.len());
        if !decisionish || ty.attrs.iter().any(|a| a.contains("must_use")) {
            continue;
        }
        push(
            file,
            out,
            "must-use-decision",
            ty.line,
            format!(
                "arbitration result type `{}` must be #[must_use]: dropping one discards a grant",
                ty.name
            ),
        );
    }
}

/// `no-lossy-index`: no narrowing `as` cast applied directly to a
/// port/flow identifier — `winner as u32`, `input.index() as u32` —
/// outside `ssq-types` (which owns the identifier newtypes).
fn no_lossy_index(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    /// Identifier-ish names whose direct narrowing loses port/flow bits.
    const ID_TOKENS: &[&str] = &["input", "output", "winner", "port", "flow", "lane", "index"];
    const NARROW: &[&str] = &["usize", "u8", "u16", "u32"];
    for (i, line, text) in hot_tokens(file) {
        if text != "as" {
            continue;
        }
        let Some(target) = code_text_at(file, i, 1).filter(|t| NARROW.contains(t)) else {
            continue;
        };
        let prev = code_text_at(file, i, -1);
        // `x.index() as u32` / `x.raw() as u32`: accessor narrowing.
        let accessor = prev == Some(")")
            && code_text_at(file, i, -2) == Some("(")
            && matches!(code_text_at(file, i, -3), Some("index") | Some("raw"))
            && code_text_at(file, i, -4) == Some(".");
        let ident_hit = prev.filter(|p| ID_TOKENS.contains(p));
        if accessor || ident_hit.is_some() {
            let what = if accessor {
                format!("{}()", code_text_at(file, i, -3).unwrap_or("index"))
            } else {
                ident_hit.unwrap_or("identifier").to_string()
            };
            push(
                file,
                out,
                "no-lossy-index",
                line,
                format!(
                    "`{what} as {target}` narrows a port/flow identifier; keep the newtype \
                     (or usize) and narrow through the waived wire() funnel"
                ),
            );
        }
    }
}

/// Whether `needle` occurs in the code-line `line` *not* followed by an
/// identifier continuation.
fn find_token(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let end = from + rel + needle.len();
        let boundary = line[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

/// `invariant-site-coverage`: every grant/inhibit/chain emission site in
/// the switch core must sit within sight of a sanitizer check — a
/// `sanitize::` call in the preceding window — so the runtime
/// invariant-sanitizer (DESIGN.md §7) cannot silently drift out of the
/// hot path as the code evolves.
fn invariant_site_coverage(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    /// How many preceding lines may separate a check from its site.
    const WINDOW: usize = 25;
    const SITES: &[&str] = &[
        "EventKind::Grant",
        "EventKind::Inhibit",
        "EventKind::Chained",
    ];
    let lines = file.code_lines();
    for (idx, line) in lines.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        let Some(site) = SITES.iter().find(|s| find_token(line, s)) else {
            continue;
        };
        let start = idx.saturating_sub(WINDOW);
        let covered = lines[start..=idx].iter().any(|l| l.contains("sanitize::"));
        if !covered {
            push(
                file,
                out,
                "invariant-site-coverage",
                idx,
                format!(
                    "{site} emission has no paired sanitize:: check within {WINDOW} lines; \
                     add the invariant-sanitizer call (or a waiver)"
                ),
            );
        }
    }
}

/// `no-shared-mut-in-shards`: the shard arbitration kernel must stay
/// free of shared mutable state — no locks, atomics, or interior
/// mutability. The parallel engine's determinism proof (DESIGN.md §9)
/// rests on `shard_decide` being a pure function of the prepared
/// snapshot.
fn no_shared_mut_in_shards(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (_, line, text) in hot_tokens(file) {
        let hit = matches!(
            text,
            "Mutex" | "RwLock" | "Condvar" | "Cell" | "RefCell" | "UnsafeCell"
        ) || text.starts_with("Atomic")
            || text == "atomic";
        if hit {
            push(
                file,
                out,
                "no-shared-mut-in-shards",
                line,
                format!(
                    "`{text}` in the shard decide kernel; shard_decide must be a pure \
                     function of the prepared snapshot (no shared mutable state)"
                ),
            );
        }
    }
}

/// `no-silent-degrade`: every QoS degradation site — flipping an output
/// into LRG fallback or GL demotion, or re-running admission — must sit
/// within sight of a fault-family trace emission. The two-outcome
/// contract of DESIGN.md §8 says a guarantee never weakens without a
/// structured event on the record.
fn no_silent_degrade(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    /// How many lines, in either direction, may separate a degradation
    /// from the event that announces it.
    const WINDOW: usize = 25;
    const SITES: &[&str] = &[".set_lrg_fallback(", ".set_gl_demoted(", ".readmit("];
    const LOUD: &[&str] = &[
        "EventKind::Degraded",
        "EventKind::GuaranteedRevoked",
        "EventKind::GuaranteeRevoked",
        "EventKind::Readmitted",
        "EventKind::Detected",
        "emit_degraded(",
        "detected_degrade(",
    ];
    let lines = file.code_lines();
    for (idx, line) in lines.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        // Collapse whitespace so `.readmit (` and token-spaced renders
        // still match the site patterns.
        let Some(site) = SITES.iter().find(|s| line.contains(**s)) else {
            continue;
        };
        let start = idx.saturating_sub(WINDOW);
        let end = (idx + WINDOW).min(lines.len().saturating_sub(1));
        let covered = lines[start..=end]
            .iter()
            .any(|l| LOUD.iter().any(|n| l.contains(n)));
        if !covered {
            push(
                file,
                out,
                "no-silent-degrade",
                idx,
                format!(
                    "degradation site `{}` has no fault-family trace emission within \
                     {WINDOW} lines; emit Degraded/GuaranteeRevoked/Readmitted (or add a waiver)",
                    site.trim_start_matches('.').trim_end_matches('(')
                ),
            );
        }
    }
}
