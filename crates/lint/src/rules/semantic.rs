//! The four semantic lints: checks that need the call graph, the
//! workspace definition map, or cfg-gate analysis rather than a single
//! line of tokens.
//!
//! * `shard-purity` — every function reachable from the shard decide
//!   kernel root must be free of statics, interior mutability, and I/O.
//! * `panic-freedom-reachability` — aggregate per-function profile of
//!   panic-capable sites (indexing, unwrap/expect, unchecked
//!   arithmetic) reachable from `QosSwitch::step`.
//! * `no-nondeterministic-order` — no `HashMap`/`HashSet` in kernel
//!   crates, whose iteration order would break replay determinism.
//! * `feature-gate-hygiene` — names defined *only* under a cargo
//!   feature must not be referenced outside that feature's gate.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Severity};
use crate::graph::CallGraph;
use crate::lexer::TokenKind;
use crate::parse::{FnItem, ParsedFile};
use crate::registry::EngineConfig;
use crate::source::SourceFile;

use super::textual::{hot_tokens, push};

/// Identifier-position keywords that can legally precede `[` or an
/// arithmetic operator without making the site value-like.
const VALUE_BREAK_KEYWORDS: &[&str] = &[
    "in", "return", "else", "match", "if", "while", "loop", "break", "mut", "ref", "let", "move",
    "box", "dyn", "as", "unsafe", "impl", "where", "for", "const", "static", "use", "pub",
];

/// Runs every semantic lint over the whole scanned set.
pub fn check(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    no_nondeterministic_order(files, config, out);
    feature_gate_hygiene(files, parsed, config, out);

    // Both reachability lints share one call graph over the hot-path
    // crate family.
    let rels: Vec<String> = files.iter().map(|f| f.rel.clone()).collect();
    let graph_fns: Vec<FnItem> = parsed
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            config
                .graph_crates
                .iter()
                .any(|c| c == &files[*i].crate_name)
        })
        .flat_map(|(_, p)| p.fns.iter().cloned())
        .collect();
    let statics: BTreeSet<String> = parsed
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            config
                .graph_crates
                .iter()
                .any(|c| c == &files[*i].crate_name)
        })
        .flat_map(|(_, p)| p.statics.iter().cloned())
        .collect();
    let graph = CallGraph::build(&graph_fns);

    shard_purity(files, &graph, &statics, &rels, config, out);
    panic_freedom(files, &graph, &rels, config, out);
}

/// `no-nondeterministic-order`: kernel crates must not touch hash-order
/// collections. Sweep replays (DESIGN.md §9) require byte-identical
/// event streams across runs; `HashMap`/`HashSet` iteration order is
/// seeded per-process and silently breaks that.
fn no_nondeterministic_order(
    files: &[SourceFile],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    for file in files {
        if !config.kernel_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        for (_, line, text) in hot_tokens(file) {
            if matches!(text, "HashMap" | "HashSet") {
                push(
                    file,
                    out,
                    "no-nondeterministic-order",
                    line,
                    format!(
                        "`{text}` in a kernel crate: iteration order is per-process random \
                         and breaks replay determinism; use Vec/BTreeMap/BTreeSet (or sort \
                         before iterating)"
                    ),
                );
            }
        }
    }
}

/// `feature-gate-hygiene`: a name whose every definition requires some
/// cargo feature forms that feature's gated API surface; referencing it
/// without a covering `#[cfg(feature = ...)]` won't compile in default
/// builds. Dual-definition stubs (a real item under the feature plus an
/// ungated no-op twin) make the name unconditional and pass
/// automatically.
fn feature_gate_hygiene(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    // name → the feature lists of each of its definitions.
    let mut defs: BTreeMap<&str, Vec<&[String]>> = BTreeMap::new();
    for p in parsed {
        for d in &p.defs {
            defs.entry(d.name.as_str()).or_default().push(&d.features);
        }
    }
    // The gated surface: names where every definition needs a feature,
    // keyed to the features common to all definitions.
    let mut gated: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (name, feats) in &defs {
        if feats.iter().any(|f| f.is_empty()) {
            continue;
        }
        let common: Vec<&str> = feats[0]
            .iter()
            .map(String::as_str)
            .filter(|f| feats.iter().all(|list| list.iter().any(|x| x == f)))
            .collect();
        if !common.is_empty() {
            gated.insert(name, common);
        }
    }
    if gated.is_empty() {
        return;
    }

    for file in files {
        if config
            .feature_exempt_crates
            .iter()
            .any(|c| c == &file.crate_name)
        {
            continue;
        }
        for (_, line, text) in hot_tokens(file) {
            let Some(required) = gated.get(text) else {
                continue;
            };
            let granted = file.line_features(line);
            if required.iter().any(|f| granted.iter().any(|g| g == f)) {
                continue;
            }
            push(
                file,
                out,
                "feature-gate-hygiene",
                line,
                format!(
                    "`{text}` is only defined under #[cfg(feature = \"{}\")] but is referenced \
                     here without that gate; add the cfg (or an ungated stub definition)",
                    required.join("\" / \"")
                ),
            );
        }
    }
}

/// Impurity markers: interior-mutability containers.
const INTERIOR_MUT: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Mutex",
    "RwLock",
    "Condvar",
];

/// Impurity markers: `std::<module>` paths that reach outside the
/// snapshot (I/O, environment, wall-clock, threads).
const IO_MODULES: &[&str] = &["fs", "io", "net", "process", "env", "thread", "time"];

/// Impurity markers: bare idents that imply I/O or wall-clock access.
const IO_IDENTS: &[&str] = &["stdout", "stderr", "stdin", "File", "Instant", "SystemTime"];

/// Impurity markers: output macros.
const IO_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

/// Scans a function body for impurity markers; returns the sorted set
/// of offending token texts (annotated by class).
fn impurities(file: &SourceFile, f: &FnItem, statics: &BTreeSet<String>) -> BTreeSet<String> {
    let body: Vec<&crate::lexer::Token> = file.tokens[f.body.clone()]
        .iter()
        .filter(|t| t.kind.is_code())
        .collect();
    let text_of = |k: usize| body.get(k).map(|t| file.tok_text(t));
    let mut found = BTreeSet::new();
    for (k, tok) in body.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let s = file.tok_text(tok);
        if INTERIOR_MUT.contains(&s) || (s.starts_with("Atomic") && s.len() > "Atomic".len()) {
            found.insert(format!("{s} (interior mutability)"));
        } else if s == "atomic" {
            found.insert("atomic:: (shared state)".to_string());
        } else if IO_IDENTS.contains(&s) {
            found.insert(format!("{s} (I/O or wall clock)"));
        } else if IO_MACROS.contains(&s) && text_of(k + 1) == Some("!") {
            found.insert(format!("{s}! (output)"));
        } else if IO_MODULES.contains(&s)
            && text_of(k.wrapping_sub(1)) == Some(":")
            && text_of(k.wrapping_sub(2)) == Some(":")
            && text_of(k.wrapping_sub(3)) == Some("std")
        {
            found.insert(format!("std::{s} (I/O)"));
        } else if statics.contains(s) {
            found.insert(format!("{s} (static item)"));
        }
    }
    found
}

/// `shard-purity`: the parallel engine's bit-exactness proof rests on
/// the decide kernel being a pure function of the prepared snapshot
/// (DESIGN.md §9). This walks everything reachable from the configured
/// root and reports any function whose body mentions statics, interior
/// mutability, or I/O.
fn shard_purity(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    statics: &BTreeSet<String>,
    rels: &[String],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    let roots = graph.roots(&config.purity_root_fn, Some(&config.purity_root_file), rels);
    if roots.is_empty() {
        return;
    }
    let reach = graph.reachable(&roots);
    for &idx in &reach.seen {
        let f = &graph.fns[idx];
        let file = &files[f.file];
        let found = impurities(file, f, statics);
        if found.is_empty() {
            continue;
        }
        let list: Vec<String> = found.iter().cloned().collect();
        out.push(Diagnostic {
            rule: "shard-purity",
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: f.line + 1,
            message: format!(
                "`{}` is reachable from `{}` ({}) but mentions {}; the shard decide kernel \
                 must stay a pure function of its snapshot",
                f.qual,
                config.purity_root_fn,
                reach.path_to(idx, graph.fns),
                list.join(", ")
            ),
            anchor: format!("{}|{}", f.qual, list.join(",")),
            baselined: false,
        });
    }
}

/// Whether the token text can end a value expression (making a
/// following `[` an index and a following `+` a binary op).
fn value_end(text: Option<&str>, kind: Option<TokenKind>) -> bool {
    match (text, kind) {
        (Some(t), Some(TokenKind::Ident)) => !VALUE_BREAK_KEYWORDS.contains(&t),
        (_, Some(TokenKind::Num)) => true,
        (Some(")" | "]"), Some(TokenKind::Punct)) => true,
        _ => false,
    }
}

/// Per-function panic-site profile.
#[derive(Debug, Default, PartialEq, Eq)]
struct PanicProfile {
    /// `.unwrap(` / `.expect(` / `panic!` / `unreachable!` / `assert*!`.
    panics: usize,
    /// `expr[...]` indexing sites.
    indexing: usize,
    /// Overflow/underflow/div-by-zero capable operators on values.
    arithmetic: usize,
}

/// Counts panic-capable sites in a function body.
fn panic_profile(file: &SourceFile, f: &FnItem) -> PanicProfile {
    let body: Vec<&crate::lexer::Token> = file.tokens[f.body.clone()]
        .iter()
        .filter(|t| t.kind.is_code())
        .collect();
    let text_of = |k: usize| body.get(k).map(|t| file.tok_text(t));
    let kind_of = |k: usize| body.get(k).map(|t| t.kind);
    let mut p = PanicProfile::default();
    for (k, tok) in body.iter().enumerate() {
        let s = file.tok_text(tok);
        match tok.kind {
            TokenKind::Ident => {
                let method = matches!(s, "unwrap" | "expect")
                    && k > 0
                    && text_of(k - 1) == Some(".")
                    && text_of(k + 1) == Some("(");
                let bang = matches!(
                    s,
                    "panic" | "unreachable" | "assert" | "assert_eq" | "assert_ne"
                ) && text_of(k + 1) == Some("!");
                if method || bang {
                    p.panics += 1;
                }
            }
            TokenKind::Punct => {
                let prev_ok = k > 0 && value_end(text_of(k - 1), kind_of(k - 1));
                match s {
                    "[" if prev_ok => p.indexing += 1,
                    "+" | "-" | "*" | "/" | "%" if prev_ok => {
                        // `->` is an arrow, not subtraction; a shifted
                        // `<<` is handled below.
                        if s == "-" && text_of(k + 1) == Some(">") {
                            continue;
                        }
                        let next_ok = matches!(
                            (text_of(k + 1), kind_of(k + 1)),
                            (_, Some(TokenKind::Ident | TokenKind::Num))
                                | (Some("(" | "&" | "-" | "*" | "!" | "="), _)
                        );
                        if next_ok {
                            p.arithmetic += 1;
                        }
                    }
                    "<" if prev_ok => {
                        // Adjacent `<<` is a shift; a spaced `< <` is not.
                        let shifted = body
                            .get(k + 1)
                            .is_some_and(|n| file.tok_text(n) == "<" && n.start == tok.end);
                        if shifted {
                            p.arithmetic += 1;
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    p
}

/// `panic-freedom-reachability`: one aggregate finding per function
/// reachable from the step root that contains panic-capable sites. The
/// anchor embeds the site counts, so adding a site to an already-known
/// function re-fires CI while untouched functions stay baselined.
fn panic_freedom(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    rels: &[String],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    let roots = graph.roots(&config.panic_root_fn, Some(&config.panic_root_file), rels);
    if roots.is_empty() {
        return;
    }
    let reach = graph.reachable(&roots);
    for &idx in &reach.seen {
        let f = &graph.fns[idx];
        let file = &files[f.file];
        let p = panic_profile(file, f);
        if p == PanicProfile::default() {
            continue;
        }
        out.push(Diagnostic {
            rule: "panic-freedom-reachability",
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: f.line + 1,
            message: format!(
                "`{}` is reachable from `{}` and holds {} panic-capable call(s), {} unchecked \
                 indexing site(s), {} overflow-capable arithmetic op(s); prefer get()/checked \
                 ops, or baseline deliberate sites",
                f.qual, config.panic_root_fn, p.panics, p.indexing, p.arithmetic
            ),
            anchor: format!("{}|p{}i{}a{}", f.qual, p.panics, p.indexing, p.arithmetic),
            baselined: false,
        });
    }
}
