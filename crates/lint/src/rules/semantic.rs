//! The four semantic lints: checks that need the call graph, the
//! workspace definition map, or cfg-gate analysis rather than a single
//! line of tokens.
//!
//! * `shard-purity` — every function reachable from the shard decide
//!   kernel root must be free of statics, interior mutability, and I/O.
//! * `panic-freedom-reachability` — aggregate per-function profile of
//!   panic-capable sites (indexing, unwrap/expect, unchecked
//!   arithmetic) reachable from `QosSwitch::step`.
//! * `no-nondeterministic-order` — no `HashMap`/`HashSet` in kernel
//!   crates, whose iteration order would break replay determinism.
//! * `feature-gate-hygiene` — names defined *only* under a cargo
//!   feature must not be referenced outside that feature's gate.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::sites::{self, SiteKind};
use crate::dataflow::{analyze_fn, FnAnalysis, SiteProof, WorkspaceFacts};
use crate::diag::{Diagnostic, Discharge, Severity};
use crate::graph::{CallGraph, Reachability};
use crate::lexer::TokenKind;
use crate::parse::{FnItem, ParsedFile};
use crate::registry::EngineConfig;
use crate::source::SourceFile;

use super::textual::{hot_tokens, push};

/// Runs every semantic lint over the whole scanned set.
pub fn check(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
    discharged: &mut Vec<Discharge>,
) {
    no_nondeterministic_order(files, config, out);
    feature_gate_hygiene(files, parsed, config, out);

    // All reachability lints share one *workspace-wide* call graph:
    // every scanned crate's functions join, and module-qualified free
    // functions resolve across crate boundaries.
    let rels: Vec<String> = files.iter().map(|f| f.rel.clone()).collect();
    let mut graph_fns: Vec<FnItem> = Vec::new();
    let mut locs: Vec<(usize, usize)> = Vec::new();
    for (fi, p) in parsed.iter().enumerate() {
        if config.graph_exempt_crates.contains(&files[fi].crate_name) {
            continue;
        }
        for (fk, f) in p.fns.iter().enumerate() {
            graph_fns.push(f.clone());
            locs.push((fi, fk));
        }
    }
    let statics: BTreeSet<String> = parsed
        .iter()
        .flat_map(|p| p.statics.iter().cloned())
        .collect();
    let graph = CallGraph::build_workspace(&graph_fns, files);

    shard_purity(files, &graph, &statics, &rels, config, out);

    // The panic-freedom family shares the step-kernel reachable set and
    // one abstract-interpreter pass per reachable function.
    let roots = graph.roots(&config.panic_root_fn, Some(&config.panic_root_file), &rels);
    if roots.is_empty() {
        return;
    }
    let reach = graph.reachable(&roots);
    let facts = WorkspaceFacts::build(files, parsed);
    let analyses: BTreeMap<usize, FnAnalysis> = reach
        .seen
        .iter()
        .map(|&idx| {
            let (fi, fk) = locs[idx];
            (idx, analyze_fn(files, parsed, &facts, fi, fk))
        })
        .collect();

    panic_freedom(files, &graph, &reach, &analyses, config, out, discharged);
    mask_width_safety(files, &graph, &reach, &analyses, config, out, discharged);
    unchecked_hot_arith(files, &graph, &reach, &analyses, config, out, discharged);
}

/// `no-nondeterministic-order`: kernel crates must not touch hash-order
/// collections. Sweep replays (DESIGN.md §9) require byte-identical
/// event streams across runs; `HashMap`/`HashSet` iteration order is
/// seeded per-process and silently breaks that.
fn no_nondeterministic_order(
    files: &[SourceFile],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    for file in files {
        if !config.kernel_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        for (_, line, text) in hot_tokens(file) {
            if matches!(text, "HashMap" | "HashSet") {
                push(
                    file,
                    out,
                    "no-nondeterministic-order",
                    line,
                    format!(
                        "`{text}` in a kernel crate: iteration order is per-process random \
                         and breaks replay determinism; use Vec/BTreeMap/BTreeSet (or sort \
                         before iterating)"
                    ),
                );
            }
        }
    }
}

/// `feature-gate-hygiene`: a name whose every definition requires some
/// cargo feature forms that feature's gated API surface; referencing it
/// without a covering `#[cfg(feature = ...)]` won't compile in default
/// builds. Dual-definition stubs (a real item under the feature plus an
/// ungated no-op twin) make the name unconditional and pass
/// automatically.
fn feature_gate_hygiene(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    // name → the feature lists of each of its definitions.
    let mut defs: BTreeMap<&str, Vec<&[String]>> = BTreeMap::new();
    for p in parsed {
        for d in &p.defs {
            defs.entry(d.name.as_str()).or_default().push(&d.features);
        }
    }
    // The gated surface: names where every definition needs a feature,
    // keyed to the features common to all definitions.
    let mut gated: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (name, feats) in &defs {
        if feats.iter().any(|f| f.is_empty()) {
            continue;
        }
        let common: Vec<&str> = feats[0]
            .iter()
            .map(String::as_str)
            .filter(|f| feats.iter().all(|list| list.iter().any(|x| x == f)))
            .collect();
        if !common.is_empty() {
            gated.insert(name, common);
        }
    }
    if gated.is_empty() {
        return;
    }

    for file in files {
        if config
            .feature_exempt_crates
            .iter()
            .any(|c| c == &file.crate_name)
        {
            continue;
        }
        for (_, line, text) in hot_tokens(file) {
            let Some(required) = gated.get(text) else {
                continue;
            };
            let granted = file.line_features(line);
            if required.iter().any(|f| granted.iter().any(|g| g == f)) {
                continue;
            }
            push(
                file,
                out,
                "feature-gate-hygiene",
                line,
                format!(
                    "`{text}` is only defined under #[cfg(feature = \"{}\")] but is referenced \
                     here without that gate; add the cfg (or an ungated stub definition)",
                    required.join("\" / \"")
                ),
            );
        }
    }
}

/// Impurity markers: interior-mutability containers.
const INTERIOR_MUT: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Mutex",
    "RwLock",
    "Condvar",
];

/// Impurity markers: `std::<module>` paths that reach outside the
/// snapshot (I/O, environment, wall-clock, threads).
const IO_MODULES: &[&str] = &["fs", "io", "net", "process", "env", "thread", "time"];

/// Impurity markers: bare idents that imply I/O or wall-clock access.
const IO_IDENTS: &[&str] = &["stdout", "stderr", "stdin", "File", "Instant", "SystemTime"];

/// Impurity markers: output macros.
const IO_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

/// Scans a function body for impurity markers; returns the sorted set
/// of offending token texts (annotated by class).
fn impurities(file: &SourceFile, f: &FnItem, statics: &BTreeSet<String>) -> BTreeSet<String> {
    let body: Vec<&crate::lexer::Token> = file.tokens[f.body.clone()]
        .iter()
        .filter(|t| t.kind.is_code())
        .collect();
    let text_of = |k: usize| body.get(k).map(|t| file.tok_text(t));
    let mut found = BTreeSet::new();
    for (k, tok) in body.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let s = file.tok_text(tok);
        if INTERIOR_MUT.contains(&s) || (s.starts_with("Atomic") && s.len() > "Atomic".len()) {
            found.insert(format!("{s} (interior mutability)"));
        } else if s == "atomic" {
            found.insert("atomic:: (shared state)".to_string());
        } else if IO_IDENTS.contains(&s) {
            found.insert(format!("{s} (I/O or wall clock)"));
        } else if IO_MACROS.contains(&s) && text_of(k + 1) == Some("!") {
            found.insert(format!("{s}! (output)"));
        } else if IO_MODULES.contains(&s)
            && text_of(k.wrapping_sub(1)) == Some(":")
            && text_of(k.wrapping_sub(2)) == Some(":")
            && text_of(k.wrapping_sub(3)) == Some("std")
        {
            found.insert(format!("std::{s} (I/O)"));
        } else if statics.contains(s) {
            found.insert(format!("{s} (static item)"));
        }
    }
    found
}

/// `shard-purity`: the parallel engine's bit-exactness proof rests on
/// the decide kernel being a pure function of the prepared snapshot
/// (DESIGN.md §9). This walks everything reachable from the configured
/// root and reports any function whose body mentions statics, interior
/// mutability, or I/O.
fn shard_purity(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    statics: &BTreeSet<String>,
    rels: &[String],
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
) {
    let roots = graph.roots(&config.purity_root_fn, Some(&config.purity_root_file), rels);
    if roots.is_empty() {
        return;
    }
    let reach = graph.reachable(&roots);
    for &idx in &reach.seen {
        let f = &graph.fns[idx];
        let file = &files[f.file];
        let found = impurities(file, f, statics);
        if found.is_empty() {
            continue;
        }
        let list: Vec<String> = found.iter().cloned().collect();
        out.push(Diagnostic {
            rule: "shard-purity",
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: f.line + 1,
            message: format!(
                "`{}` is reachable from `{}` ({}) but mentions {}; the shard decide kernel \
                 must stay a pure function of its snapshot",
                f.qual,
                config.purity_root_fn,
                reach.path_to(idx, graph.fns),
                list.join(", ")
            ),
            anchor: format!("{}|{}", f.qual, list.join(",")),
            baselined: false,
        });
    }
}

/// Per-function panic-site profile.
#[derive(Debug, Default, PartialEq, Eq)]
struct PanicProfile {
    /// `.unwrap(` / `.expect(` / `panic!` / `unreachable!` / `assert*!`.
    panics: usize,
    /// `expr[...]` indexing sites.
    indexing: usize,
    /// Overflow/underflow/div-by-zero capable operators on values.
    arithmetic: usize,
}

/// Counts panic-capable sites in a function body, via the shared
/// [`sites`] enumerator the dataflow interpreter also consumes — the
/// profile and the per-site proofs are over the *same* site set by
/// construction.
fn panic_profile(file: &SourceFile, f: &FnItem) -> PanicProfile {
    let mut p = PanicProfile::default();
    for site in sites::enumerate(file, f) {
        match site.kind {
            SiteKind::Panic => p.panics += 1,
            SiteKind::Index => p.indexing += 1,
            SiteKind::Arith(_) | SiteKind::Shl => p.arithmetic += 1,
            // `>>` cannot overflow and was never profiled.
            SiteKind::Shr => {}
        }
    }
    p
}

/// Compresses a function's site proofs into one bounded evidence line.
fn evidence_summary(proofs: &[&SiteProof]) -> String {
    let mut parts: Vec<String> = proofs
        .iter()
        .take(3)
        .map(|p| format!("L{}: {}", p.site.line + 1, p.why))
        .collect();
    if proofs.len() > 3 {
        parts.push(format!("(+{} more)", proofs.len() - 3));
    }
    let mut s = parts.join("; ");
    if s.len() > 360 {
        s.truncate(357);
        s.push_str("...");
    }
    s
}

/// `panic-freedom-reachability`: one aggregate finding per function
/// reachable from the step root that contains panic-capable sites. The
/// anchor embeds the site counts, so adding a site to an already-known
/// function re-fires CI while untouched functions stay baselined.
///
/// Functions whose every profiled arithmetic/indexing site the abstract
/// interpreter proves in-bounds (and that hold no panic-capable calls)
/// are *discharged*: the finding is suppressed and its fingerprint plus
/// evidence land in the report's `discharged` section, licensing the
/// removal of the matching `lint-baseline.txt` entry.
fn panic_freedom(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    reach: &Reachability,
    analyses: &BTreeMap<usize, FnAnalysis>,
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
    discharged: &mut Vec<Discharge>,
) {
    for &idx in &reach.seen {
        let f = &graph.fns[idx];
        let file = &files[f.file];
        let p = panic_profile(file, f);
        if p == PanicProfile::default() {
            continue;
        }
        let diag = Diagnostic {
            rule: "panic-freedom-reachability",
            severity: Severity::Deny,
            file: file.rel.clone(),
            line: f.line + 1,
            message: format!(
                "`{}` is reachable from `{}` and holds {} panic-capable call(s), {} unchecked \
                 indexing site(s), {} overflow-capable arithmetic op(s); prefer get()/checked \
                 ops, or baseline deliberate sites",
                f.qual, config.panic_root_fn, p.panics, p.indexing, p.arithmetic
            ),
            anchor: format!("{}|p{}i{}a{}", f.qual, p.panics, p.indexing, p.arithmetic),
            baselined: false,
        };
        let analysis = analyses.get(&idx);
        if p.panics == 0 && analysis.is_some_and(FnAnalysis::all_profiled_safe) {
            let proofs: Vec<&SiteProof> = analysis
                .map(|a| {
                    a.proofs
                        .values()
                        .filter(|pr| pr.site.kind.profiled())
                        .collect()
                })
                .unwrap_or_default();
            discharged.push(Discharge {
                rule: diag.rule,
                file: diag.file.clone(),
                line: diag.line,
                fingerprint: diag.fingerprint(),
                evidence: format!(
                    "`{}`: all {} profiled site(s) proven in-bounds — {}",
                    f.qual,
                    proofs.len(),
                    evidence_summary(&proofs)
                ),
            });
            continue;
        }
        out.push(diag);
    }
}

/// `mask-width-safety`: every shift reachable from the step kernel must
/// have a provably in-range amount (`< lhs width`, i.e. bounded by the
/// radix for the u64 port masks). Proven sites become `discharged`
/// certificates carrying the interpreter's evidence; unprovable sites
/// fire.
fn mask_width_safety(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    reach: &Reachability,
    analyses: &BTreeMap<usize, FnAnalysis>,
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
    discharged: &mut Vec<Discharge>,
) {
    for &idx in &reach.seen {
        let f = &graph.fns[idx];
        let file = &files[f.file];
        let Some(analysis) = analyses.get(&idx) else {
            continue;
        };
        let mut occ = 0usize;
        for proof in analysis.proofs.values() {
            let op = match proof.site.kind {
                SiteKind::Shl => "<<",
                SiteKind::Shr => ">>",
                _ => continue,
            };
            let diag = Diagnostic {
                rule: "mask-width-safety",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: proof.site.line + 1,
                message: format!(
                    "`{}` is reachable from `{}` and shifts (`{}`) by an amount the dataflow \
                     layer cannot bound below the operand width: {}; mask the amount (`& 63`), \
                     assert! the bound, or waive with evidence",
                    f.qual, config.panic_root_fn, op, proof.why
                ),
                anchor: format!("{}|{}#{}", f.qual, op, occ),
                baselined: false,
            };
            occ += 1;
            if proof.safe {
                discharged.push(Discharge {
                    rule: diag.rule,
                    file: diag.file.clone(),
                    line: diag.line,
                    fingerprint: diag.fingerprint(),
                    evidence: format!("`{}` `{}`: {}", f.qual, op, proof.why),
                });
            } else {
                out.push(diag);
            }
        }
    }
}

/// `unchecked-hot-arith`: add/sub/mul/div/index sites in the configured
/// hot files (the decide kernel) reachable from the step root whose
/// operands the joint interval/known-bits domains cannot bound. Proven
/// sites become `discharged` certificates.
fn unchecked_hot_arith(
    files: &[SourceFile],
    graph: &CallGraph<'_>,
    reach: &Reachability,
    analyses: &BTreeMap<usize, FnAnalysis>,
    config: &EngineConfig,
    out: &mut Vec<Diagnostic>,
    discharged: &mut Vec<Discharge>,
) {
    for &idx in &reach.seen {
        let f = &graph.fns[idx];
        let file = &files[f.file];
        if !config.hot_arith_files.iter().any(|h| &file.rel == h) {
            continue;
        }
        let Some(analysis) = analyses.get(&idx) else {
            continue;
        };
        let mut occ = 0usize;
        for proof in analysis.proofs.values() {
            let what = match proof.site.kind {
                SiteKind::Arith(op) => format!("`{op}`"),
                SiteKind::Index => "indexing".to_string(),
                _ => continue,
            };
            let diag = Diagnostic {
                rule: "unchecked-hot-arith",
                severity: Severity::Deny,
                file: file.rel.clone(),
                line: proof.site.line + 1,
                message: format!(
                    "`{}` is hot-path code reachable from `{}` with {} whose operands the \
                     dataflow layer cannot bound: {}; tighten the types, guard the range, or \
                     use checked/wrapping ops",
                    f.qual, config.panic_root_fn, what, proof.why
                ),
                anchor: format!("{}|{}#{}", f.qual, what, occ),
                baselined: false,
            };
            occ += 1;
            if proof.safe {
                discharged.push(Discharge {
                    rule: diag.rule,
                    file: diag.file.clone(),
                    line: diag.line,
                    fingerprint: diag.fingerprint(),
                    evidence: format!("`{}` {}: {}", f.qual, what, proof.why),
                });
            } else {
                out.push(diag);
            }
        }
    }
}
