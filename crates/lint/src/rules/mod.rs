//! The rule set: the nine ported textual rules plus the four semantic
//! lints built on the parser and call graph.

pub mod semantic;
pub mod textual;
