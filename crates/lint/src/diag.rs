//! Lint diagnostics: severity, stable fingerprints, and the
//! machine-readable JSON rendering behind `cargo xtask lint --json`.
//!
//! Fingerprints are FNV-1a over `(rule, file, anchor)`, where the
//! anchor is a drift-stable identity payload chosen by each rule —
//! typically the trimmed source line text plus an occurrence index, so
//! findings survive unrelated line-number churn, or a per-function
//! summary for the aggregated reachability lints. The baseline matches
//! on fingerprints, never on line numbers.

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A new (un-baselined, un-waived) finding fails the lint pass.
    Deny,
    /// Reported for visibility; never fails the pass.
    Warn,
}

impl Severity {
    /// The JSON/label spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule identifier (usable in `ssq-lint: allow(...)`).
    pub rule: &'static str,
    /// Whether a new instance fails the pass.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong and what to do instead.
    pub message: String,
    /// Drift-stable identity payload (see module docs).
    pub anchor: String,
    /// Whether the checked-in baseline already records this finding.
    pub baselined: bool,
}

impl Diagnostic {
    /// The finding's stable fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.rule.as_bytes());
        h.write(&[0]);
        h.write(self.file.as_bytes());
        h.write(&[0]);
        h.write(self.anchor.as_bytes());
        h.finish()
    }

    /// The human one-liner, matching the engine's historic format.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{} · {} · {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding the dataflow layer proved cannot fire: the site (or the
/// whole per-function profile) was certified in-bounds by the abstract
/// interpreter, so the would-be diagnostic is suppressed and reported
/// here with its evidence instead. Discharges never gate CI; they are
/// the machine-checkable audit trail for baseline shrinkage.
#[derive(Debug, Clone)]
pub struct Discharge {
    /// The rule whose finding was discharged.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number of the certified site (or function).
    pub line: usize,
    /// Fingerprint the suppressed finding *would* have had — matches
    /// the entry that may be removed from `lint-baseline.txt`.
    pub fingerprint: u64,
    /// The interpreter's proof, human-readable.
    pub evidence: String,
}

/// FNV-1a, 64-bit: the one hash the offline workspace needs.
pub struct Fnv(u64);

impl Fnv {
    /// The standard offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Escapes `s` for a JSON string body.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full diagnostics document (schema version 2: adds the
/// `discharged` section carrying the dataflow layer's certificates).
/// Findings and discharges must already be in their final
/// deterministic order.
#[must_use]
pub fn render_json(
    diags: &[Diagnostic],
    discharged: &[Discharge],
    files_scanned: usize,
    rules: &[&str],
) -> String {
    let mut out = String::from("{\n  \"schema\": 2,\n  \"engine\": \"ssq-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!(
        "  \"rules\": [{}],\n",
        rules
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let new = diags.iter().filter(|d| !d.baselined).count();
    out.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"new\": {}, \"baselined\": {}, \"discharged\": {}}},\n",
        diags.len(),
        new,
        diags.len() - new,
        discharged.len()
    ));
    out.push_str("  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"fingerprint\": \"{:016x}\", \"baselined\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            d.severity.label(),
            json_escape(&d.file),
            d.line,
            d.fingerprint(),
            d.baselined,
            json_escape(&d.message),
        ));
    }
    out.push_str(if diags.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"discharged\": [");
    for (i, d) in discharged.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"fingerprint\": \"{:016x}\", \"evidence\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            d.fingerprint,
            json_escape(&d.evidence),
        ));
    }
    out.push_str(if discharged.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, anchor: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: "crates/core/src/demo.rs".to_string(),
            line: 3,
            message: "msg with \"quotes\" and\nnewline".to_string(),
            anchor: anchor.to_string(),
            baselined: false,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_anchor_sensitive() {
        let a = diag("no-unwrap", "x.unwrap();#0");
        let b = diag("no-unwrap", "x.unwrap();#0");
        let c = diag("no-unwrap", "x.unwrap();#1");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_line_numbers() {
        let mut a = diag("no-unwrap", "same");
        let mut b = diag("no-unwrap", "same");
        a.line = 10;
        b.line = 999;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_document_shape() {
        let doc = render_json(&[diag("no-unwrap", "a")], &[], 2, &["no-unwrap"]);
        assert!(doc.contains("\"schema\": 2"));
        assert!(doc.contains("\"files_scanned\": 2"));
        assert!(doc.contains(
            "\"summary\": {\"total\": 1, \"new\": 1, \"baselined\": 0, \"discharged\": 0}"
        ));
        assert!(doc.contains("\"rule\": \"no-unwrap\""));
        assert!(doc.contains("\"discharged\": []"));
    }

    #[test]
    fn json_discharged_section_carries_evidence() {
        let d = Discharge {
            rule: "mask-width-safety",
            file: "crates/core/src/decide.rs".to_string(),
            line: 7,
            fingerprint: 0xdead_beef,
            evidence: "shift amount in [0, 63] (radix premise)".to_string(),
        };
        let doc = render_json(&[], &[d], 1, &["mask-width-safety"]);
        assert!(doc.contains("\"findings\": []"));
        assert!(doc.contains("\"discharged\": 1"));
        assert!(doc.contains("\"fingerprint\": \"00000000deadbeef\""));
        assert!(doc.contains("shift amount in [0, 63] (radix premise)"));
        let opens = doc.matches(['{', '[']).count();
        assert_eq!(opens, doc.matches(['}', ']']).count());
    }
}
