//! The lint registry and the engine driver: rule metadata, engine
//! configuration, workspace loading, and the full
//! lex → parse → rules → waivers → sort pipeline behind
//! `cargo xtask lint`.

use std::fs;
use std::io;
use std::path::Path;

use crate::diag::{Diagnostic, Discharge, Severity};
use crate::parse::{parse, ParsedFile};
use crate::rules;
use crate::source::SourceFile;

/// Metadata for one registered lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// The rule identifier (usable in `ssq-lint: allow(...)` and the
    /// baseline file).
    pub name: &'static str,
    /// How new findings gate CI.
    pub severity: Severity,
    /// One-line summary for `--help`-style listings.
    pub summary: &'static str,
}

/// Every lint the engine knows, in stable listing order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: "no-unwrap",
        severity: Severity::Deny,
        summary: "no .unwrap()/.expect()/panic! in hot-path crates",
    },
    LintInfo {
        name: "no-narrowing-cast",
        severity: Severity::Deny,
        summary: "no narrowing `as` casts in counter/thermometer arithmetic",
    },
    LintInfo {
        name: "no-print-in-lib",
        severity: Severity::Deny,
        summary: "no println!/eprintln! in library crates",
    },
    LintInfo {
        name: "no-todo",
        severity: Severity::Deny,
        summary: "no todo!/unimplemented! outside tests",
    },
    LintInfo {
        name: "must-use-decision",
        severity: Severity::Deny,
        summary: "arbitration result types must be #[must_use]",
    },
    LintInfo {
        name: "no-lossy-index",
        severity: Severity::Deny,
        summary: "no narrowing casts applied to port/flow identifiers",
    },
    LintInfo {
        name: "invariant-site-coverage",
        severity: Severity::Deny,
        summary: "grant/inhibit/chain emissions need a nearby sanitize:: check",
    },
    LintInfo {
        name: "no-shared-mut-in-shards",
        severity: Severity::Deny,
        summary: "no locks/atomics/interior mutability in the shard decide kernel",
    },
    LintInfo {
        name: "no-silent-degrade",
        severity: Severity::Deny,
        summary: "QoS degradation sites need a nearby fault-family trace event",
    },
    LintInfo {
        name: "shard-purity",
        severity: Severity::Deny,
        summary: "everything reachable from decide_output must be snapshot-pure",
    },
    LintInfo {
        name: "panic-freedom-reachability",
        severity: Severity::Deny,
        summary: "panic/index/overflow sites reachable from QosSwitch::step, per fn",
    },
    LintInfo {
        name: "mask-width-safety",
        severity: Severity::Deny,
        summary: "shift amounts reachable from QosSwitch::step must be provably in-range",
    },
    LintInfo {
        name: "unchecked-hot-arith",
        severity: Severity::Deny,
        summary: "decide-kernel arithmetic/indexing must have dataflow-bounded operands",
    },
    LintInfo {
        name: "no-nondeterministic-order",
        severity: Severity::Deny,
        summary: "no HashMap/HashSet iteration-order dependence in kernel crates",
    },
    LintInfo {
        name: "feature-gate-hygiene",
        severity: Severity::Deny,
        summary: "feature-only names must be referenced under their cfg gate",
    },
];

/// The registered rule names, in listing order.
#[must_use]
pub fn rule_names() -> Vec<&'static str> {
    LINTS.iter().map(|l| l.name).collect()
}

/// Engine knobs: the semantic lints' roots and crate scopes. Defaults
/// describe the real workspace; tests override them to point at
/// fixtures.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bare name of the shard-purity root function.
    pub purity_root_fn: String,
    /// Path suffix of the file declaring the purity root.
    pub purity_root_file: String,
    /// Bare name of the panic-freedom root function.
    pub panic_root_fn: String,
    /// Path suffix of the file declaring the panic-freedom root.
    pub panic_root_file: String,
    /// Crates under `no-nondeterministic-order`.
    pub kernel_crates: Vec<String>,
    /// Crates exempt from `feature-gate-hygiene` (they force-enable the
    /// features whose surface they drive).
    pub feature_exempt_crates: Vec<String>,
    /// Files whose step-reachable functions are held to
    /// `unchecked-hot-arith` (the decide kernel).
    pub hot_arith_files: Vec<String>,
    /// Crates excluded from the workspace call graph entirely: the
    /// analysis tooling itself (its `step`/`reduce`/`peek` methods
    /// collide by name with switch hot-path code but can never be
    /// called from it).
    pub graph_exempt_crates: Vec<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let owned = |names: &[&str]| names.iter().map(|s| (*s).to_string()).collect();
        EngineConfig {
            purity_root_fn: "decide_output".to_string(),
            purity_root_file: "crates/core/src/decide.rs".to_string(),
            panic_root_fn: "step".to_string(),
            panic_root_file: "crates/core/src/switch.rs".to_string(),
            kernel_crates: owned(&["types", "arbiter", "circuit", "core", "sim", "prof"]),
            feature_exempt_crates: owned(&["faults", "net"]),
            hot_arith_files: owned(&["crates/core/src/decide.rs"]),
            graph_exempt_crates: owned(&["lint", "xtask"]),
        }
    }
}

/// The outcome of one engine run.
#[derive(Debug)]
pub struct Report {
    /// All findings after waiver filtering, in deterministic order
    /// (file, line, rule, anchor).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings the dataflow layer proved cannot fire, with evidence,
    /// in deterministic order (file, line, rule, fingerprint).
    pub discharged: Vec<Discharge>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that should fail CI: new (un-baselined) `Deny`
    /// findings. Waived findings were already dropped by the engine.
    #[must_use]
    pub fn blocking(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| !d.baselined && d.severity == Severity::Deny)
            .collect()
    }
}

/// Runs the full engine over in-memory sources: `(workspace-relative
/// path, text)` pairs. This is the pure core `cargo xtask lint` wraps;
/// fixture tests call it directly with synthetic paths.
#[must_use]
pub fn run_sources(sources: Vec<(String, String)>, config: &EngineConfig) -> Report {
    let files: Vec<SourceFile> = sources
        .into_iter()
        .map(|(rel, text)| SourceFile::new(&rel, text))
        .collect();
    let parsed: Vec<ParsedFile> = files.iter().enumerate().map(|(i, f)| parse(f, i)).collect();

    // Crates that have a lib.rs in the scanned set (the root crate's
    // library is `src/lib.rs`, keyed by the empty crate name).
    let libs: std::collections::BTreeSet<&str> = files
        .iter()
        .filter(|f| {
            f.rel == "src/lib.rs"
                || (f.rel.starts_with("crates/") && f.rel.ends_with("/src/lib.rs"))
        })
        .map(|f| f.crate_name.as_str())
        .collect();

    let mut diags = Vec::new();
    let mut discharged = Vec::new();
    for (file, parsed_file) in files.iter().zip(&parsed) {
        let crate_has_lib = libs.contains(file.crate_name.as_str());
        rules::textual::check_file(file, parsed_file, crate_has_lib, &mut diags);
    }
    rules::semantic::check(&files, &parsed, config, &mut diags, &mut discharged);

    // Drop waived findings: the waiver line is the finding's own line
    // (`diag.line` is 1-based; waivers are 0-based).
    let by_rel = |rel: &str| files.iter().find(|f| f.rel == rel);
    diags.retain(|d| by_rel(&d.file).is_none_or(|f| !f.waived(d.line.saturating_sub(1), d.rule)));

    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.anchor.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.anchor.as_str(),
        ))
    });
    discharged.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.fingerprint).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.fingerprint,
        ))
    });
    Report {
        files_scanned: files.len(),
        diagnostics: diags,
        discharged,
    }
}

/// Loads every workspace Rust source the engine lints: `crates/*/src`
/// trees plus the root `src/` tree, sorted by relative path. Fixture
/// directories (anything not under a `src/`) are not loaded.
pub fn load_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(root, &src, &mut sources)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(root, &root_src, &mut sources)?;
    }
    sources.sort();
    Ok(sources)
}

/// Recursively collects `.rs` files under `dir` as `(rel, text)`.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(rel: &str, text: &str) -> (String, String) {
        (rel.to_string(), text.to_string())
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let names = rule_names();
        assert_eq!(names.len(), 15);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn engine_runs_end_to_end_and_sorts_deterministically() {
        let report = run_sources(
            vec![
                src(
                    "crates/core/src/b.rs",
                    "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
                ),
                src("crates/core/src/a.rs", "fn g() {\n    todo!()\n}\n"),
            ],
            &EngineConfig::default(),
        );
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["no-todo", "no-unwrap"]);
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.blocking().len(), 2);
    }

    #[test]
    fn waived_findings_are_dropped_entirely() {
        let report = run_sources(
            vec![src(
                "crates/core/src/a.rs",
                "fn f(x: Option<u8>) -> u8 {\n    // ssq-lint: allow(no-unwrap)\n    x.unwrap()\n}\n",
            )],
            &EngineConfig::default(),
        );
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }
}
