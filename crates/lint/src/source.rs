//! The lint-ready view of one source file: its token stream plus the
//! derived per-line facts every rule consumes — `#[cfg(...)]` gating
//! (test regions and feature requirements), `ssq-lint: allow(...)`
//! waivers, and a column-preserving render of only the *code* tokens.
//!
//! Waivers are collected exclusively from comment tokens, and the code
//! render contains no bytes from strings, chars, or comments — the two
//! properties that retire the regex engine's false-positive and
//! phantom-suppression classes in one move.

use crate::lexer::{lex, Token, TokenKind};

/// What a `#[cfg(...)]` region grants to the lines it covers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineGates {
    /// Covered by a cfg gating on the `test` token (`#[cfg(test)]`,
    /// `#[cfg(all(test, feature = "faults"))]`, …) or by `#[test]`.
    pub test: bool,
    /// Cargo features the covering cfg attributes mention un-negated
    /// (`#[cfg(feature = "faults")]` grants `faults`).
    pub features: Vec<String>,
}

/// One source file, lexed and annotated.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated
    /// (`crates/core/src/decide.rs`).
    pub rel: String,
    /// The owning crate's directory name under `crates/` (`core`), or
    /// the empty string for the root `src/` crate.
    pub crate_name: String,
    /// The raw source text.
    pub text: String,
    /// The complete token stream.
    pub tokens: Vec<Token>,
    /// Per 0-based line: cfg gates in force.
    gates: Vec<LineGates>,
    /// Per 0-based line: rules waived there.
    waivers: Vec<Vec<String>>,
    /// Per 0-based line: the line's code tokens only, columns kept.
    code_lines: Vec<String>,
}

impl SourceFile {
    /// Lexes and annotates `text` as the file at `rel`.
    #[must_use]
    pub fn new(rel: &str, text: String) -> Self {
        let rel = rel.replace('\\', "/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let tokens = lex(&text);
        let line_count = text.lines().count().max(1);
        let code_lines = render_code_lines(&text, &tokens, line_count);
        let gates = line_gates(&text, &tokens, line_count);
        let waivers = collect_waivers(&text, &tokens, &code_lines, line_count);
        SourceFile {
            rel,
            crate_name,
            text,
            tokens,
            gates,
            waivers,
            code_lines,
        }
    }

    /// The number of lines.
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.code_lines.len()
    }

    /// The 0-based line's code-only render (strings, chars, and
    /// comments blanked; columns preserved).
    #[must_use]
    pub fn code_line(&self, line: usize) -> &str {
        self.code_lines.get(line).map_or("", String::as_str)
    }

    /// All code-only line renders, for window-scanning rules.
    #[must_use]
    pub fn code_lines(&self) -> &[String] {
        &self.code_lines
    }

    /// Whether the 0-based line sits inside a test-gated region.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.gates.get(line).is_some_and(|g| g.test)
    }

    /// The features granted to the 0-based line by covering cfgs.
    #[must_use]
    pub fn line_features(&self, line: usize) -> &[String] {
        self.gates.get(line).map_or(&[], |g| &g.features)
    }

    /// Whether `rule` is waived on the 0-based line.
    #[must_use]
    pub fn waived(&self, line: usize, rule: &str) -> bool {
        self.waivers
            .get(line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// The token's text.
    #[must_use]
    pub fn tok_text(&self, tok: &Token) -> &str {
        tok.text(&self.text)
    }

    /// Iterates the code tokens (everything except comments and
    /// string/char literals) with their stream indices.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.is_code())
    }
}

/// Renders each line keeping only code tokens at their original
/// columns; bytes from comments and literals become spaces.
fn render_code_lines(text: &str, tokens: &[Token], line_count: usize) -> Vec<String> {
    // Start byte of each line.
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    let mut lines: Vec<Vec<u8>> = text
        .lines()
        .map(|l| vec![b' '; l.len()])
        .collect::<Vec<_>>();
    lines.resize(line_count.max(lines.len()), Vec::new());
    for tok in tokens.iter().filter(|t| t.kind.is_code()) {
        // Code tokens never span lines (only strings and comments do).
        let Some(&line_start) = starts.get(tok.line) else {
            continue;
        };
        let col = tok.start - line_start;
        if let Some(row) = lines.get_mut(tok.line) {
            let end = (col + (tok.end - tok.start)).min(row.len());
            row[col..end].copy_from_slice(&text.as_bytes()[tok.start..tok.start + (end - col)]);
        }
    }
    lines
        .into_iter()
        .map(|row| String::from_utf8_lossy(&row).into_owned())
        .collect()
}

/// Computes per-line cfg gates by walking every `#[cfg(...)]` / `#[test]`
/// attribute in the code-token stream and brace-matching the item (or
/// statement) it covers.
fn line_gates(text: &str, tokens: &[Token], line_count: usize) -> Vec<LineGates> {
    let mut gates = vec![LineGates::default(); line_count];
    // Strings stay in this stream (comments do not): an attribute's
    // normalized text must keep `feature = "faults"` values. A string
    // can never *start* an attribute (`#` and `[` are Punct tokens), so
    // gating still cannot be conjured from literal content.
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_comment())
        .collect();

    let mut ci = 0;
    while ci < code.len() {
        let (_, tok) = code[ci];
        let is_outer_attr = tok.kind == TokenKind::Punct
            && tok.text(text) == "#"
            && code
                .get(ci + 1)
                .is_some_and(|(_, t)| t.text(text) == "[" && t.kind == TokenKind::Punct);
        if !is_outer_attr {
            ci += 1;
            continue;
        }
        // Bracket-match the attribute in the code stream.
        let attr_start_ci = ci;
        let mut depth = 0usize;
        let mut cj = ci + 1;
        while cj < code.len() {
            match code[cj].1.text(text) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        cj += 1;
                        break;
                    }
                }
                _ => {}
            }
            cj += 1;
        }
        let attr_norm: String = code[attr_start_ci + 2..cj.saturating_sub(1)]
            .iter()
            .map(|(_, t)| t.text(text))
            .collect();
        let (is_cfg, is_test_attr) = (
            attr_norm.starts_with("cfg(") || attr_norm.starts_with("cfg_attr("),
            attr_norm == "test",
        );
        if !is_cfg && !is_test_attr {
            ci = cj.max(ci + 1);
            continue;
        }
        let grants_test = is_test_attr || cfg_mentions(&attr_norm, "test");
        let features = cfg_features(&attr_norm);
        if !grants_test && features.is_empty() {
            ci = cj.max(ci + 1);
            continue;
        }

        // Skip any further attributes to the covered item/statement.
        let mut ck = cj;
        while ck + 1 < code.len()
            && code[ck].1.text(text) == "#"
            && code[ck + 1].1.text(text) == "["
        {
            let mut d = 0usize;
            let mut cm = ck + 1;
            while cm < code.len() {
                match code[cm].1.text(text) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            cm += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                cm += 1;
            }
            ck = cm;
        }
        // Brace-match the covered region: to the matching close of the
        // first `{`, or to a `;`/`,` at depth 0, or to the close of the
        // enclosing block (an annotated last-in-block expression).
        let mut d = 0usize;
        let mut end_line = code.get(ck).map_or(tok.line, |(_, t)| t.line);
        let mut cm = ck;
        while cm < code.len() {
            let t = code[cm].1;
            match t.text(text) {
                "{" => d += 1,
                "}" if d > 0 => {
                    d -= 1;
                    if d == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                "}" => break, // enclosing block closed first
                ";" | "," if d == 0 => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            end_line = t.line;
            cm += 1;
        }
        for g in gates
            .iter_mut()
            .take(end_line.min(line_count.saturating_sub(1)) + 1)
            .skip(tok.line)
        {
            if grants_test {
                g.test = true;
            }
            for f in &features {
                if !g.features.contains(f) {
                    g.features.push(f.clone());
                }
            }
        }
        ci = cj.max(ci + 1);
    }
    gates
}

/// Whether the normalized cfg text mentions the bare token `word`
/// outside a `not(...)` — `cfg(all(test,feature="x"))` mentions `test`,
/// `cfg(not(test))` and `cfg(feature="latest")` do not.
fn cfg_mentions(norm: &str, word: &str) -> bool {
    let bytes = norm.as_bytes();
    let mut from = 0;
    while let Some(rel) = norm[from..].find(word) {
        let at = from + rel;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + word.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok && !norm[..at].ends_with("not(") {
            return true;
        }
        from = after;
    }
    false
}

/// Feature names the normalized cfg text grants: every
/// `feature="name"` occurrence outside a `not(...)`.
fn cfg_features(norm: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = norm[from..].find("feature=\"") {
        let at = from + rel;
        let val_start = at + "feature=\"".len();
        let Some(close) = norm[val_start..].find('"') else {
            break;
        };
        let name = &norm[val_start..val_start + close];
        if !norm[..at].ends_with("not(") && !out.iter().any(|n| n == name) {
            out.push(name.to_string());
        }
        from = val_start + close + 1;
    }
    out
}

/// Collects `ssq-lint: allow(rule, …)` waivers from comment tokens. A
/// waiver applies to the comment's own line; when that line holds no
/// code, it also applies to the next line.
fn collect_waivers(
    text: &str,
    tokens: &[Token],
    code_lines: &[String],
    line_count: usize,
) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = vec![Vec::new(); line_count];
    for tok in tokens.iter().filter(|t| t.kind.is_comment()) {
        let body = tok.text(text);
        let mut from = 0;
        while let Some(rel) = body[from..].find("ssq-lint: allow(") {
            let start = from + rel + "ssq-lint: allow(".len();
            let Some(close) = body[start..].find(')') else {
                break;
            };
            let rules: Vec<String> = body[start..start + close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let comment_only = code_lines.get(tok.line).is_none_or(|l| l.trim().is_empty());
            if let Some(slot) = out.get_mut(tok.line) {
                slot.extend(rules.iter().cloned());
            }
            if comment_only {
                if let Some(slot) = out.get_mut(tok.line + 1) {
                    slot.extend(rules);
                }
            }
            from = start + close;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/core/src/demo.rs", src.to_string())
    }

    #[test]
    fn code_lines_blank_strings_and_comments() {
        let f = file("let a = \".unwrap()\"; // panic!\nlet b = 2;\n");
        assert!(!f.code_line(0).contains("unwrap"));
        assert!(!f.code_line(0).contains("panic"));
        assert!(f.code_line(0).contains("let a ="));
        assert_eq!(f.code_line(1), "let b = 2;");
    }

    #[test]
    fn code_lines_preserve_columns() {
        let f = file("abc(\"xx\", y);\n");
        assert_eq!(f.code_line(0), "abc(    , y);");
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let f = file("fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn also() {}\n");
        let flags: Vec<bool> = (0..6).map(|l| f.is_test_line(l)).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_test_feature_grants_both() {
        let f = file("#[cfg(all(test, feature = \"faults\"))]\nmod m {\n    fn t() {}\n}\n");
        assert!(f.is_test_line(2));
        assert_eq!(f.line_features(2), ["faults"]);
    }

    #[test]
    fn cfg_not_test_and_lookalike_features_do_not_gate() {
        let f = file("#[cfg(not(test))]\nfn a() {}\n#[cfg(feature = \"latest\")]\nfn b() {}\n");
        assert!((0..4).all(|l| !f.is_test_line(l)));
        assert!(f.line_features(3).is_empty() || f.line_features(3) == ["latest"]);
    }

    #[test]
    fn statement_level_feature_gate_covers_the_statement() {
        let f = file(
            "fn f(&mut self) {\n    #[cfg(feature = \"faults\")]\n    self.faultctl.note();\n    self.other();\n}\n",
        );
        assert_eq!(f.line_features(2), ["faults"]);
        assert!(f.line_features(3).is_empty());
    }

    #[test]
    fn test_attribute_gates_the_function() {
        let f = file("#[test]\nfn t() {\n    boom();\n}\nfn hot() {}\n");
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(4));
    }

    #[test]
    fn cfg_test_enum_variant_covers_only_its_lines() {
        let f = file("enum T {\n    A,\n    #[cfg(test)]\n    B,\n}\nfn hot() {}\n");
        let flags: Vec<bool> = (0..6).map(|l| f.is_test_line(l)).collect();
        assert_eq!(flags, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn waiver_applies_to_own_and_next_line() {
        let f = file(
            "// ssq-lint: allow(no-unwrap)\nlet a = x.unwrap();\nlet b = 1; // ssq-lint: allow(no-todo, no-unwrap)\nlet c = 2;\n",
        );
        assert!(f.waived(0, "no-unwrap"));
        assert!(f.waived(1, "no-unwrap"));
        assert!(f.waived(2, "no-todo") && f.waived(2, "no-unwrap"));
        assert!(!f.waived(3, "no-unwrap"));
    }

    #[test]
    fn waiver_inside_string_literal_is_phantom_no_more() {
        // The regex engine read waivers from raw source, so a quoted
        // marker suppressed real findings on the next line. The token
        // engine reads only comment tokens.
        let f = file("let s = \"// ssq-lint: allow(no-unwrap)\";\nlet a = x.unwrap();\n");
        assert!(!f.waived(0, "no-unwrap"));
        assert!(!f.waived(1, "no-unwrap"));
    }

    #[test]
    fn cfg_gate_inside_a_string_does_not_gate() {
        let f = file("let s = \"#[cfg(test)] mod t {\";\nfn hot() {}\n");
        assert!(!f.is_test_line(1));
    }
}
