//! # ssq-lint — token-aware static analysis for the SSQ workspace
//!
//! A self-contained static-analysis engine (zero external
//! dependencies) replacing the old regex scanners in `xtask`:
//!
//! * [`lexer`] — a real Rust lexer: raw strings, nested block
//!   comments, lifetimes vs. char literals, raw identifiers. Rules see
//!   *tokens*, so nothing fires inside a string or comment.
//! * [`source`] — the per-file fact layer: cfg-gate line maps
//!   (test regions, feature grants), `ssq-lint: allow(...)` waivers
//!   (comment tokens only), and code-only line renders.
//! * [`parse`] — a lightweight item parser: functions with qualified
//!   names and bodies, call sites, types with attributes, statics,
//!   feature-gated definitions.
//! * [`graph`] — the name-resolved call graph with reachability and
//!   explanatory paths; deliberately an over-approximation, the sound
//!   direction for purity and panic-freedom lints. The workspace
//!   build adds module/crate aliases so cross-crate free-fn calls
//!   resolve instead of dead-ending at the crate boundary.
//! * [`dataflow`] — the abstract interpreter: joint interval +
//!   known-bits domains widened at loop heads, workspace fact
//!   harvesting (ctor-assert field invariants with revocation, method
//!   summaries), and per-site safety proofs that *discharge* findings
//!   with evidence.
//! * [`rules`] — the nine ported textual rules plus the six semantic
//!   lints (`shard-purity`, `panic-freedom-reachability`,
//!   `mask-width-safety`, `unchecked-hot-arith`,
//!   `no-nondeterministic-order`, `feature-gate-hygiene`).
//! * [`diag`] / [`baseline`] — severities, stable fingerprints, the
//!   `--json` document (schema 2, findings plus discharge
//!   certificates), and the checked-in baseline that keeps legacy
//!   findings from blocking CI while new ones still fail it.
//! * [`registry`] — rule metadata and the engine driver
//!   ([`registry::run_sources`] over in-memory files,
//!   [`registry::load_workspace`] for the real tree).
//!
//! The no-external-deps lexer is a deliberate design decision: the
//! build environment is offline, so the engine leans on a small
//! hand-rolled lexer instead of `syn`/`proc-macro2`, trading full
//! grammar fidelity for zero supply-chain surface and sub-second
//! whole-workspace runs. See DESIGN.md §10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod dataflow;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod registry;
pub mod rules;
pub mod source;

pub use baseline::{Baseline, BASELINE_FILE};
pub use diag::{render_json, Diagnostic, Discharge, Severity};
pub use registry::{
    load_workspace, rule_names, run_sources, EngineConfig, LintInfo, Report, LINTS,
};
pub use source::SourceFile;
