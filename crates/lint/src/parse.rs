//! A lightweight item parser over the token stream: enough structure to
//! build a per-crate call graph — functions with qualified names and
//! body spans, the calls each body makes, `static` items, type
//! declarations with their attributes, and the cfg requirements of
//! every definition.
//!
//! This is deliberately not a full Rust parser. It tracks module and
//! `impl` nesting by brace-matching, recognizes `fn`/`struct`/`enum`/
//! `static` items, and extracts call sites as name references
//! (`path::segment(`, `.method(`, `bare(`). Name-based resolution
//! over-approximates the true call graph, which is the safe direction
//! for the reachability lints: a spurious edge can only make the purity
//! and panic-freedom checks *stricter*, never let a real violation
//! escape.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Rust keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "in", "move", "break", "continue", "else",
    "unsafe", "let", "ref", "mut", "box", "dyn", "impl", "where", "as", "fn",
];

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee's final name segment (`decide`, `push`, `new`).
    pub name: String,
    /// For path calls, the qualifying segment before the final `::`
    /// (`Request` in `Request::new`).
    pub qualifier: Option<String>,
    /// Whether this is a `.name(...)` method call.
    pub method: bool,
    /// 0-based line of the call.
    pub line: usize,
}

/// One parsed function (free function or method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the owning file in the engine's file list.
    pub file: usize,
    /// The bare name (`decide_output`).
    pub name: String,
    /// The qualified name: enclosing modules and `impl` type joined
    /// with `::` (`QosSwitch::decide_output`, `tests::helper`).
    pub qual: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function is declared inside an `impl` block.
    pub is_method: bool,
    /// Whether it sits in a test-gated region (excluded from the call
    /// graph: test helpers must not widen hot-path reachability).
    pub is_test: bool,
    /// Token-index range of the body, exclusive of the braces. Empty
    /// for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Every call site extracted from the body.
    pub calls: Vec<CallSite>,
}

/// A `struct`/`enum` declaration, for attribute-driven rules.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// The declared name.
    pub name: String,
    /// 0-based line of the declaring keyword.
    pub line: usize,
    /// Normalized texts of the attributes directly above it
    /// (`derive(Debug)`, `must_use`, `cfg(test)`).
    pub attrs: Vec<String>,
}

/// Any named definition with the cfg features it requires — the raw
/// material for the `feature-gate-hygiene` surface map.
#[derive(Debug, Clone)]
pub struct Definition {
    /// The defined name (`fault_set_link`, `FaultControl`).
    pub name: String,
    /// Features required by covering cfg gates at the definition site.
    pub features: Vec<String>,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// `struct`/`enum` declarations, in source order.
    pub types: Vec<TypeItem>,
    /// Names of `static` items declared in the file.
    pub statics: Vec<String>,
    /// All named definitions (fns, types, statics) with cfg features.
    pub defs: Vec<Definition>,
}

/// Parses `file` (index `file_idx` in the engine's list).
#[must_use]
pub fn parse(file: &SourceFile, file_idx: usize) -> ParsedFile {
    let code: Vec<(usize, Token)> = file.code_tokens().map(|(i, t)| (i, *t)).collect();
    let mut out = ParsedFile::default();
    // Context stack: one frame per open brace.
    let mut stack: Vec<Frame> = Vec::new();
    let mut ci = 0;
    while ci < code.len() {
        let text = file.tok_text(&code[ci].1);
        let kind = code[ci].1.kind;
        match (kind, text) {
            (TokenKind::Punct, "{") => {
                stack.push(Frame::Block);
                ci += 1;
            }
            (TokenKind::Punct, "}") => {
                stack.pop();
                ci += 1;
            }
            (TokenKind::Ident, "mod") => {
                // `mod name {` contributes a segment; `mod name;` none.
                let name = code
                    .get(ci + 1)
                    .filter(|(_, t)| t.kind == TokenKind::Ident)
                    .map(|(_, t)| file.tok_text(t).to_string());
                if code
                    .get(ci + 2)
                    .is_some_and(|(_, t)| file.tok_text(t) == "{")
                {
                    stack.push(name.map_or(Frame::Block, Frame::Mod));
                    ci += 3;
                } else {
                    ci += 1;
                }
            }
            (TokenKind::Ident, "impl") => {
                let (seg, next) = impl_type(file, &code, ci);
                if next < code.len() && file.tok_text(&code[next].1) == "{" {
                    stack.push(seg.map_or(Frame::Block, Frame::Impl));
                    ci = next + 1;
                } else {
                    ci = next.max(ci + 1);
                }
            }
            (TokenKind::Ident, "fn") => {
                ci = parse_fn(file, file_idx, &code, ci, &stack, &mut out);
            }
            (TokenKind::Ident, "struct" | "enum") => {
                if let Some((_, t)) = code.get(ci + 1).filter(|(_, t)| t.kind == TokenKind::Ident) {
                    let name = file.tok_text(t).to_string();
                    let line = code[ci].1.line;
                    out.defs.push(Definition {
                        name: name.clone(),
                        features: file.line_features(line).to_vec(),
                    });
                    out.types.push(TypeItem {
                        name,
                        line,
                        attrs: attrs_before(file, &code, ci),
                    });
                }
                ci += 2;
            }
            (TokenKind::Ident, "static") => {
                // `static NAME` or `static mut NAME`.
                let mut cj = ci + 1;
                if code.get(cj).is_some_and(|(_, t)| file.tok_text(t) == "mut") {
                    cj += 1;
                }
                if let Some((_, t)) = code.get(cj).filter(|(_, t)| t.kind == TokenKind::Ident) {
                    let name = file.tok_text(t).to_string();
                    out.defs.push(Definition {
                        name: name.clone(),
                        features: file.line_features(code[ci].1.line).to_vec(),
                    });
                    out.statics.push(name);
                }
                ci = cj + 1;
            }
            _ => ci += 1,
        }
    }
    out
}

/// One open brace on the parser's context stack.
#[derive(Debug, Clone)]
enum Frame {
    /// A plain block (fn body, trait body, expression block, …).
    Block,
    /// A named module body.
    Mod(String),
    /// An `impl` body for the named `Self` type.
    Impl(String),
}

impl Frame {
    fn segment(&self) -> Option<&str> {
        match self {
            Frame::Block => None,
            Frame::Mod(s) | Frame::Impl(s) => Some(s),
        }
    }
}

/// Reads an `impl` header: returns the contributed path segment (the
/// `Self` type's final name) and the code index of the opening `{` (or
/// wherever scanning stopped).
fn impl_type(
    file: &SourceFile,
    code: &[(usize, Token)],
    impl_ci: usize,
) -> (Option<String>, usize) {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut cj = impl_ci + 1;
    while cj < code.len() {
        let t = &code[cj].1;
        let s = file.tok_text(t);
        match (t.kind, s) {
            (TokenKind::Punct, "{") if angle <= 0 => break,
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => {
                // `->` decrements nothing; a bare `>` closes a bracket.
                let arrow = cj > 0 && file.tok_text(&code[cj - 1].1) == "-";
                if !arrow {
                    angle -= 1;
                }
            }
            (TokenKind::Ident, "for") if angle <= 0 => saw_for = true,
            (TokenKind::Ident, "where") if angle <= 0 => {
                // Type name is settled; scan on to the brace.
            }
            (TokenKind::Ident, _) if angle <= 0 => {
                if saw_for {
                    after_for = Some(s.to_string());
                } else {
                    last_ident = Some(s.to_string());
                }
            }
            _ => {}
        }
        cj += 1;
    }
    (after_for.or(last_ident), cj)
}

/// Parses one `fn` item starting at the `fn` keyword; returns the code
/// index to continue from (just past the signature — the body is
/// consumed here for call extraction but re-walked by the outer loop so
/// nested items are still seen).
fn parse_fn(
    file: &SourceFile,
    file_idx: usize,
    code: &[(usize, Token)],
    fn_ci: usize,
    stack: &[Frame],
    out: &mut ParsedFile,
) -> usize {
    let Some((_, name_tok)) = code
        .get(fn_ci + 1)
        .filter(|(_, t)| t.kind == TokenKind::Ident)
    else {
        return fn_ci + 1;
    };
    let name = file.tok_text(name_tok).to_string();
    let line = code[fn_ci].1.line;

    // Find the body's opening brace: first `{` outside parens/angles.
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut cj = fn_ci + 2;
    let mut body_open: Option<usize> = None;
    while cj < code.len() {
        let t = &code[cj].1;
        match (t.kind, file.tok_text(t)) {
            (TokenKind::Punct, "(") => paren += 1,
            (TokenKind::Punct, ")") => paren -= 1,
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => {
                if !(cj > 0 && file.tok_text(&code[cj - 1].1) == "-") {
                    angle -= 1;
                }
            }
            (TokenKind::Punct, "{") if paren == 0 => {
                body_open = Some(cj);
                break;
            }
            (TokenKind::Punct, ";") if paren == 0 && angle <= 0 => break,
            _ => {}
        }
        cj += 1;
    }

    let mut body = 0..0;
    let mut calls = Vec::new();
    if let Some(open) = body_open {
        // Brace-match the body in code-token space. Malformed input
        // (an unclosed brace) degrades to "body runs to end of file"
        // rather than panicking — lint must cope with any source.
        let mut depth = 0usize;
        let mut close = code.len().saturating_sub(1);
        for (k, (_, t)) in code.iter().enumerate().skip(open) {
            match file.tok_text(t) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close.max(open);
        body = code[open].0 + 1..code.get(close).map_or(code[open].0 + 1, |(i, _)| *i);
        calls = extract_calls(file, &code[open + 1..close.max(open + 1)]);
    }

    let qual_segments: Vec<&str> = stack
        .iter()
        .filter_map(Frame::segment)
        .chain(std::iter::once(name.as_str()))
        .collect();
    out.defs.push(Definition {
        name: name.clone(),
        features: file.line_features(line).to_vec(),
    });
    out.fns.push(FnItem {
        file: file_idx,
        qual: qual_segments.join("::"),
        is_method: matches!(stack.last(), Some(Frame::Impl(_))),
        is_test: file.is_test_line(line),
        name,
        line,
        body,
        calls,
    });
    // Continue from just inside the body (or past the signature) so the
    // outer loop's brace tracking stays balanced and nested items are
    // parsed in their own right.
    body_open.map_or(cj + 1, |open| open)
}

/// Extracts call sites from a body slice of code tokens.
fn extract_calls(file: &SourceFile, body: &[(usize, Token)]) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for k in 0..body.len() {
        let t = &body[k].1;
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = file.tok_text(t);
        let next = body.get(k + 1).map(|(_, t)| file.tok_text(t));
        if next != Some("(") || NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `name!(…)` is a macro, not a call — but `!` precedes `(` in
        // the token stream, so `next` already filtered it out. Check
        // the *previous* token for `.` (method) or `::` (path).
        let prev = k.checked_sub(1).map(|p| file.tok_text(&body[p].1));
        let prev2 = k.checked_sub(2).map(|p| file.tok_text(&body[p].1));
        if prev == Some(".") {
            calls.push(CallSite {
                name: name.to_string(),
                qualifier: None,
                method: true,
                line: t.line,
            });
        } else if prev == Some(":") && prev2 == Some(":") {
            // Walk back over `Qual::name`: the qualifier is the ident
            // before the `::` (turbofish and longer paths keep just
            // their final qualifying segment).
            let qualifier = k
                .checked_sub(3)
                .map(|p| &body[p].1)
                .filter(|q| q.kind == TokenKind::Ident)
                .map(|q| file.tok_text(q).to_string());
            calls.push(CallSite {
                name: name.to_string(),
                qualifier,
                method: false,
                line: t.line,
            });
        } else {
            calls.push(CallSite {
                name: name.to_string(),
                qualifier: None,
                method: false,
                line: t.line,
            });
        }
    }
    calls
}

/// Normalized texts of the attribute groups directly above the item
/// whose keyword sits at code index `item_ci`, skipping visibility and
/// other modifiers (`pub`, `pub(crate)`, `const`, `unsafe`, …).
fn attrs_before(file: &SourceFile, code: &[(usize, Token)], item_ci: usize) -> Vec<String> {
    const MODIFIERS: &[&str] = &[
        "pub", "crate", "const", "unsafe", "async", "extern", "default", "in", "super", "self",
    ];
    let mut attrs = Vec::new();
    let mut cj = item_ci;
    loop {
        // Step back over modifiers (and the parens of `pub(crate)`).
        while cj > 0 {
            let prev = file.tok_text(&code[cj - 1].1);
            if MODIFIERS.contains(&prev) || prev == ")" || prev == "(" {
                cj -= 1;
            } else {
                break;
            }
        }
        // An attribute group ends with `]` directly above.
        if cj == 0 || file.tok_text(&code[cj - 1].1) != "]" {
            break;
        }
        let close = cj - 1;
        let mut depth = 0usize;
        let mut open = close;
        while open > 0 {
            match file.tok_text(&code[open].1) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            open -= 1;
        }
        if open == 0 || file.tok_text(&code[open - 1].1) != "#" {
            break;
        }
        let norm: String = code[open + 1..close]
            .iter()
            .map(|(_, t)| file.tok_text(t))
            .collect();
        attrs.push(norm);
        cj = open - 1;
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse(
            &SourceFile::new("crates/core/src/demo.rs", src.to_string()),
            0,
        )
    }

    #[test]
    fn free_fn_and_method_qualified_names() {
        let p = parsed(
            "fn top() {}\nmod inner {\n    fn nested() {}\n}\nimpl QosSwitch {\n    fn decide_output(&self) {}\n}\nimpl Model for QosSwitch {\n    fn step(&mut self) {}\n}\n",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "top",
                "inner::nested",
                "QosSwitch::decide_output",
                "QosSwitch::step"
            ]
        );
        assert!(p.fns[2].is_method);
        assert!(!p.fns[0].is_method);
    }

    #[test]
    fn generic_impl_header_resolves_self_type() {
        let p = parsed("impl<'a, T: Clone> Holder<'a, T> {\n    fn get(&self) {}\n}\n");
        assert_eq!(p.fns[0].qual, "Holder::get");
    }

    #[test]
    fn calls_are_extracted_with_shape() {
        let p = parsed(
            "fn f(&self) {\n    self.gather(1);\n    Request::new(2);\n    helper();\n    mac!(ignored);\n    if (x) {}\n}\n",
        );
        let c = &p.fns[0].calls;
        assert_eq!(c.len(), 3, "{c:?}");
        assert!(c[0].method && c[0].name == "gather");
        assert_eq!(c[1].qualifier.as_deref(), Some("Request"));
        assert!(!c[2].method && c[2].qualifier.is_none() && c[2].name == "helper");
    }

    #[test]
    fn nested_fn_is_its_own_item() {
        let p = parsed("fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner"));
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let p = parsed("#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn hot() {}\n");
        assert!(p.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
        assert!(!p.fns.iter().find(|f| f.name == "hot").unwrap().is_test);
    }

    #[test]
    fn types_carry_their_attributes() {
        let p =
            parsed("#[derive(Debug)]\n#[must_use]\npub struct StepDecision;\nenum Plain { A }\n");
        assert_eq!(p.types[0].name, "StepDecision");
        assert!(p.types[0].attrs.iter().any(|a| a == "must_use"));
        assert!(p.types[1].attrs.is_empty());
    }

    #[test]
    fn statics_and_gated_defs_are_recorded() {
        let p = parsed(
            "static GLOBAL: u64 = 0;\nstatic mut DANGER: u64 = 0;\n#[cfg(feature = \"faults\")]\nfn fault_set_link() {}\n",
        );
        assert_eq!(p.statics, vec!["GLOBAL", "DANGER"]);
        let def = p.defs.iter().find(|d| d.name == "fault_set_link").unwrap();
        assert_eq!(def.features, vec!["faults"]);
    }

    #[test]
    fn bodyless_trait_method_has_empty_body() {
        let p = parsed("trait Model {\n    fn step(&mut self, now: Cycle);\n}\n");
        let f = p.fns.iter().find(|f| f.name == "step").unwrap();
        assert!(f.body.is_empty());
        assert!(f.calls.is_empty());
    }

    #[test]
    fn where_clause_and_return_arrow_do_not_confuse_body_search() {
        let p = parsed("fn f<T>(x: T) -> Vec<u8>\nwhere\n    T: Into<u8>,\n{\n    convert(x)\n}\n");
        let f = &p.fns[0];
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "convert");
    }
}
