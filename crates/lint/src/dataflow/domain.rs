//! The joint abstract domains of the dataflow layer: unsigned
//! **intervals** and **known-bits**, reduced against each other.
//!
//! Every integer value the interpreter tracks is a [`AbsVal`]: an
//! interval `[lo, hi]` (kept in `u128` so `u64` arithmetic can be
//! modelled without overflowing the *analysis*) plus a known-bits pair
//! `(zeros, ones)` where bit `i` of `zeros` means "bit `i` is provably
//! 0" and bit `i` of `ones` means "bit `i` is provably 1". The two
//! domains catch different idioms — `x % 8` gives a tight interval,
//! `x & 0x3f` gives tight known-bits — and [`AbsVal::reduce`] folds
//! each domain's implied bound into the other, so `(x & 63) + 1` ends
//! up with the interval `[1, 64]` even though neither domain alone
//! would get there.
//!
//! All transfer functions are *sound over-approximations* of the
//! corresponding wrapped-at-`u64` Rust semantics for values that do not
//! overflow; where an operation may overflow/underflow `u64`, the
//! transfer function returns ⊤ (full range) and the interpreter
//! records the hazard at the site instead of trusting the result. The
//! domains never claim a value the concrete execution could not take.

/// The largest value any tracked quantity can concretely hold
/// (`u64::MAX`; `usize` is at most 64-bit on every supported target).
pub const VALUE_MAX: u128 = u64::MAX as u128;

/// An unsigned interval `[lo, hi]`, `lo <= hi`, over `0..=u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value the quantity can take.
    pub lo: u128,
    /// Largest value the quantity can take.
    pub hi: u128,
}

impl Interval {
    /// The full `u64` range: no information.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: VALUE_MAX,
    };

    /// The interval holding exactly `v`.
    #[must_use]
    pub fn exact(v: u64) -> Interval {
        Interval {
            lo: u128::from(v),
            hi: u128::from(v),
        }
    }

    /// `[lo, hi]`, clamped into the representable range.
    #[must_use]
    pub fn new(lo: u128, hi: u128) -> Interval {
        let hi = hi.min(VALUE_MAX);
        Interval { lo: lo.min(hi), hi }
    }

    /// Whether this is the no-information interval.
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == VALUE_MAX
    }

    /// Whether the interval is a single value.
    #[must_use]
    pub fn as_exact(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo as u64)
    }

    /// The least upper bound of two intervals.
    #[must_use]
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Per-bit knowledge over the low 64 bits: `zeros` marks bits provably
/// 0, `ones` marks bits provably 1. The two masks never overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBits {
    /// Bits provably zero.
    pub zeros: u64,
    /// Bits provably one.
    pub ones: u64,
}

impl KnownBits {
    /// Nothing known about any bit.
    pub const TOP: KnownBits = KnownBits { zeros: 0, ones: 0 };

    /// Every bit known: the constant `v`.
    #[must_use]
    pub fn exact(v: u64) -> KnownBits {
        KnownBits { zeros: !v, ones: v }
    }

    /// The largest value consistent with the known-zero bits.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        !self.zeros
    }

    /// The least upper bound: keep only agreement.
    #[must_use]
    pub fn join(&self, other: &KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
    }
}

/// The joint abstract value: interval × known-bits, mutually reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// The interval component.
    pub iv: Interval,
    /// The known-bits component.
    pub kb: KnownBits,
}

impl AbsVal {
    /// No information: the full `u64` range.
    pub const TOP: AbsVal = AbsVal {
        iv: Interval::TOP,
        kb: KnownBits::TOP,
    };

    /// The constant `v`.
    #[must_use]
    pub fn exact(v: u64) -> AbsVal {
        AbsVal {
            iv: Interval::exact(v),
            kb: KnownBits::exact(v),
        }
    }

    /// The range `[lo, hi]` with known-bits derived from `hi`.
    #[must_use]
    pub fn range(lo: u64, hi: u64) -> AbsVal {
        AbsVal {
            iv: Interval::new(u128::from(lo), u128::from(hi)),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// Whether nothing is known.
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.iv.is_top() && self.kb == KnownBits::TOP
    }

    /// The proven-inclusive upper bound.
    #[must_use]
    pub fn hi(&self) -> u128 {
        self.iv.hi
    }

    /// The proven-inclusive lower bound.
    #[must_use]
    pub fn lo(&self) -> u128 {
        self.iv.lo
    }

    /// Whether the value is provably `< bound`.
    #[must_use]
    pub fn lt(&self, bound: u128) -> bool {
        self.iv.hi < bound
    }

    /// Whether the value is provably nonzero.
    #[must_use]
    pub fn nonzero(&self) -> bool {
        self.iv.lo >= 1 || self.kb.ones != 0
    }

    /// Folds each domain's implied bound into the other: known-zero high
    /// bits cap the interval; an interval below `2^k` proves bits `>= k`
    /// zero; a nonzero ones-mask raises the interval floor.
    #[must_use]
    pub fn reduce(mut self) -> AbsVal {
        // Known bits → interval.
        let kb_hi = u128::from(self.kb.max_value());
        if kb_hi < self.iv.hi {
            self.iv.hi = kb_hi;
        }
        let kb_lo = u128::from(self.kb.ones);
        if kb_lo > self.iv.lo {
            self.iv.lo = kb_lo;
        }
        if self.iv.lo > self.iv.hi {
            // The domains disagree (dead code under analysis); collapse
            // conservatively rather than invent an empty value.
            self.iv.lo = self.iv.hi;
        }
        // Interval → known bits: everything at or above the highest
        // possible set bit is zero.
        if self.iv.hi < VALUE_MAX {
            let width = 128 - u128::leading_zeros(self.iv.hi.max(1));
            if width < 64 {
                self.kb.zeros |= !((1u64 << width) - 1);
            }
        }
        self
    }

    /// The least upper bound of two values.
    #[must_use]
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(&other.iv),
            kb: self.kb.join(&other.kb),
        }
        .reduce()
    }

    /// `self + other` under `u64` semantics. Returns ⊤ when the sum may
    /// exceed `u64::MAX` (the interpreter records the overflow hazard
    /// separately).
    #[must_use]
    pub fn add(&self, other: &AbsVal) -> AbsVal {
        let hi = self.iv.hi + other.iv.hi;
        if hi > VALUE_MAX {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(self.iv.lo + other.iv.lo, hi),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// `self - other` under `u64` semantics. Returns ⊤ when the
    /// subtraction may underflow.
    #[must_use]
    pub fn sub(&self, other: &AbsVal) -> AbsVal {
        if self.iv.lo < other.iv.hi {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(self.iv.lo - other.iv.hi, self.iv.hi - other.iv.lo),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// `self * other`; ⊤ when the product may overflow.
    #[must_use]
    pub fn mul(&self, other: &AbsVal) -> AbsVal {
        let hi = self.iv.hi.saturating_mul(other.iv.hi);
        if hi > VALUE_MAX {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(self.iv.lo * other.iv.lo, hi),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// `self / other`; ⊤ when the divisor may be zero.
    #[must_use]
    pub fn div(&self, other: &AbsVal) -> AbsVal {
        if !other.nonzero() {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(
                self.iv.lo / other.iv.hi.max(1),
                self.iv.hi / other.iv.lo.max(1),
            ),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// `self % other`; ⊤ when the divisor may be zero. The result is
    /// below the divisor and never above the dividend.
    #[must_use]
    pub fn rem(&self, other: &AbsVal) -> AbsVal {
        if !other.nonzero() {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(0, (other.iv.hi - 1).min(self.iv.hi)),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// Bitwise AND: known bits compose exactly; the interval is capped
    /// by both operands.
    #[must_use]
    pub fn and(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: Interval::new(0, self.iv.hi.min(other.iv.hi)),
            kb: KnownBits {
                zeros: self.kb.zeros | other.kb.zeros,
                ones: self.kb.ones & other.kb.ones,
            },
        }
        .reduce()
    }

    /// Bitwise OR: a bit is zero iff zero in both.
    #[must_use]
    pub fn or(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: Interval::TOP,
            kb: KnownBits {
                zeros: self.kb.zeros & other.kb.zeros,
                ones: self.kb.ones | other.kb.ones,
            },
        }
        .reduce()
    }

    /// Bitwise XOR: a bit is known only when known in both.
    #[must_use]
    pub fn xor(&self, other: &AbsVal) -> AbsVal {
        let known = (self.kb.zeros | self.kb.ones) & (other.kb.zeros | other.kb.ones);
        let value = (self.kb.ones ^ other.kb.ones) & known;
        AbsVal {
            iv: Interval::TOP,
            kb: KnownBits {
                zeros: known & !value,
                ones: value,
            },
        }
        .reduce()
    }

    /// `self << other` under `u64` semantics; ⊤ when the amount may
    /// reach the width or the result may overflow.
    #[must_use]
    pub fn shl(&self, other: &AbsVal) -> AbsVal {
        if other.iv.hi >= 64 {
            return AbsVal::TOP;
        }
        let hi = self.iv.hi << other.iv.hi;
        if hi > VALUE_MAX {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(self.iv.lo << other.iv.lo, hi),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// `self >> other`; ⊤ when the amount may reach the width.
    #[must_use]
    pub fn shr(&self, other: &AbsVal) -> AbsVal {
        if other.iv.hi >= 64 {
            return AbsVal::TOP;
        }
        AbsVal {
            iv: Interval::new(self.iv.lo >> other.iv.hi, self.iv.hi >> other.iv.lo),
            kb: KnownBits {
                zeros: if other.iv.lo == other.iv.hi {
                    // An exact shift moves known-zero bits down exactly;
                    // the vacated top bits become known zero.
                    (self.kb.zeros >> other.iv.lo) | !(u64::MAX >> other.iv.lo)
                } else {
                    0
                },
                ones: if other.iv.lo == other.iv.hi {
                    self.kb.ones >> other.iv.lo
                } else {
                    0
                },
            },
        }
        .reduce()
    }

    /// `self.min(other)`.
    #[must_use]
    pub fn min(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: Interval::new(self.iv.lo.min(other.iv.lo), self.iv.hi.min(other.iv.hi)),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// `self.max(other)`.
    #[must_use]
    pub fn max(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: Interval::new(self.iv.lo.max(other.iv.lo), self.iv.hi.max(other.iv.hi)),
            kb: KnownBits::TOP,
        }
        .reduce()
    }

    /// Caps the value at `hi` (used by `<`/`<=` branch refinement).
    #[must_use]
    pub fn refine_below(&self, hi: u128) -> AbsVal {
        AbsVal {
            iv: Interval::new(self.iv.lo.min(hi), self.iv.hi.min(hi)),
            kb: self.kb,
        }
        .reduce()
    }

    /// Raises the floor to `lo` (used by `>`/`>=` branch refinement).
    #[must_use]
    pub fn refine_above(&self, lo: u128) -> AbsVal {
        AbsVal {
            iv: Interval::new(self.iv.lo.max(lo), self.iv.hi.max(lo)),
            kb: self.kb,
        }
        .reduce()
    }

    /// A compact human rendering for evidence strings: exact values
    /// print as themselves, ranges as `[lo, hi]` (with known-bits masks
    /// when they add information), ⊤ as `unbounded`.
    #[must_use]
    pub fn describe(&self) -> String {
        if self.is_top() {
            return "unbounded".to_string();
        }
        if let Some(v) = self.iv.as_exact() {
            return format!("= {v}");
        }
        let mut out = format!("in [{}, {}]", self.iv.lo, self.iv.hi);
        if self.kb.zeros != 0 {
            let implied = if self.iv.hi < VALUE_MAX {
                let width = 128 - u128::leading_zeros(self.iv.hi.max(1));
                if width < 64 {
                    !((1u64 << width) - 1)
                } else {
                    0
                }
            } else {
                0
            };
            if self.kb.zeros & !implied != 0 {
                out.push_str(&format!(" (known-zero mask {:#x})", self.kb.zeros));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arithmetic_stays_exact() {
        let a = AbsVal::exact(5);
        let b = AbsVal::exact(3);
        assert_eq!(a.add(&b).iv.as_exact(), Some(8));
        assert_eq!(a.sub(&b).iv.as_exact(), Some(2));
        assert_eq!(a.mul(&b).iv.as_exact(), Some(15));
        assert_eq!(a.div(&b).iv.as_exact(), Some(1));
        assert_eq!(a.rem(&b).iv.hi, 2);
    }

    #[test]
    fn overflow_and_underflow_collapse_to_top() {
        let big = AbsVal::exact(u64::MAX);
        assert!(big.add(&AbsVal::exact(1)).is_top());
        assert!(AbsVal::exact(1).sub(&AbsVal::exact(2)).is_top());
        assert!(big.mul(&AbsVal::exact(2)).is_top());
        assert!(AbsVal::TOP.div(&AbsVal::range(0, 4)).is_top());
    }

    #[test]
    fn mask_reduces_interval_and_mod_reduces_bits() {
        // x & 0x3f: known-bits cap the interval at 63.
        let masked = AbsVal::TOP.and(&AbsVal::exact(0x3f));
        assert_eq!(masked.iv.hi, 63);
        assert!(masked.lt(64));
        // x % 8: interval [0,7] implies bits >= 3 known zero.
        let modded = AbsVal::TOP.rem(&AbsVal::exact(8));
        assert_eq!(modded.iv.hi, 7);
        assert_eq!(modded.kb.zeros & !0b111, !0b111);
    }

    #[test]
    fn reduction_composes_across_domains() {
        // (x & 63) + 1 ∈ [1, 64] — interval math over a bit-derived cap.
        let v = AbsVal::TOP.and(&AbsVal::exact(63)).add(&AbsVal::exact(1));
        assert_eq!(v.iv.lo, 1);
        assert_eq!(v.iv.hi, 64);
    }

    #[test]
    fn shifts_guard_the_width() {
        assert!(AbsVal::exact(1).shl(&AbsVal::range(0, 64)).is_top());
        let ok = AbsVal::exact(1).shl(&AbsVal::range(0, 63));
        assert_eq!(ok.iv.lo, 1);
        assert_eq!(ok.iv.hi, 1u128 << 63);
        let down = AbsVal::range(0, 4095).shr(&AbsVal::exact(9));
        assert_eq!(down.iv.hi, 7);
    }

    #[test]
    fn join_widens_and_refine_narrows() {
        let a = AbsVal::range(1, 3).join(&AbsVal::range(5, 9));
        assert_eq!((a.iv.lo, a.iv.hi), (1, 9));
        let r = AbsVal::TOP.refine_below(63);
        assert!(r.lt(64));
        let f = AbsVal::TOP.refine_above(1);
        assert!(f.nonzero());
    }

    #[test]
    fn describe_is_compact() {
        assert_eq!(AbsVal::exact(7).describe(), "= 7");
        assert_eq!(AbsVal::range(0, 63).describe(), "in [0, 63]");
        assert_eq!(AbsVal::TOP.describe(), "unbounded");
    }

    #[test]
    fn min_max_and_exact_shr_bits() {
        let m = AbsVal::TOP.min(&AbsVal::exact(63));
        assert!(m.lt(64));
        let m2 = AbsVal::range(10, 20).max(&AbsVal::exact(15));
        assert_eq!((m2.iv.lo, m2.iv.hi), (15, 20));
        let v = AbsVal::range(0, 0xfff).shr(&AbsVal::exact(9));
        assert!(v.lt(8));
    }
}
