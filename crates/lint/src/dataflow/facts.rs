//! Workspace-level facts feeding the abstract interpreter: struct field
//! types, constructor-established field invariants, literal `const`/
//! `static` values, array shapes, and a method map used for bounded
//! accessor inlining.
//!
//! Everything here is harvested from the token stream with the same
//! deliberately-approximate discipline as the item parser: when a shape
//! is ambiguous the fact is *dropped*, never guessed, so the
//! interpreter can trust whatever survives. Constructor invariants are
//! additionally guarded by a whole-workspace construction scan — a
//! struct-literal construction of `T` outside `T::new` (in non-test
//! code) invalidates every invariant `T::new`'s asserts established.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::parse::ParsedFile;
use crate::source::SourceFile;

/// The shape of a type as far as the interpreter cares: integer width,
/// signedness, float-ness, array/vec structure, or a named struct that
/// can be looked up in [`WorkspaceFacts::structs`].
#[derive(Debug, Clone, Default)]
pub struct TyInfo {
    /// Final path segment of a named (non-primitive) type.
    pub name: Option<String>,
    /// Bit width for primitive integers (`u8` → 8, `usize` → 64).
    /// `None` for non-integers and for `u128`/`i128`, which exceed the
    /// value domain and stay unmodeled.
    pub width: Option<u32>,
    /// Whether the primitive integer is signed.
    pub signed: bool,
    /// Whether the type is `f32`/`f64` (arithmetic on floats cannot
    /// panic, so float sites discharge unconditionally).
    pub float: bool,
    /// Whether the type is a `Vec<_>` (length in `[0, isize::MAX]`).
    pub is_vec: bool,
    /// Element count for `[T; N]` arrays with a literal or resolvable
    /// const length.
    pub arr_len: Option<u128>,
    /// Element type for arrays, slices, and vecs.
    pub elem: Option<Box<TyInfo>>,
}

impl TyInfo {
    /// A primitive-integer `TyInfo` by name, if `name` is one.
    #[must_use]
    pub fn prim(name: &str) -> Option<TyInfo> {
        let (width, signed, float) = match name {
            "u8" => (Some(8), false, false),
            "u16" => (Some(16), false, false),
            "u32" => (Some(32), false, false),
            "u64" | "usize" => (Some(64), false, false),
            "i8" => (Some(8), true, false),
            "i16" => (Some(16), true, false),
            "i32" => (Some(32), true, false),
            "i64" | "isize" => (Some(64), true, false),
            "bool" => (Some(1), false, false),
            "f32" | "f64" => (None, false, true),
            // Wider than the value domain: keep the name, drop the width
            // so every operation on it degrades to unbounded.
            "u128" | "i128" => (None, name.starts_with('i'), false),
            _ => return None,
        };
        Some(TyInfo {
            name: Some(name.to_string()),
            width,
            signed,
            float,
            ..TyInfo::default()
        })
    }

    /// Largest representable value, when the width is known and the
    /// type unsigned (signed types keep their positive half).
    #[must_use]
    pub fn max_value(&self) -> Option<u128> {
        let w = self.width?;
        if self.float {
            return None;
        }
        let bits = if self.signed { w.saturating_sub(1) } else { w };
        Some(if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        })
    }
}

/// One struct field: its type plus any constructor-proved value bounds.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Parsed field type.
    pub ty: TyInfo,
    /// Inclusive lower bound established by `T::new` asserts.
    pub lo: Option<u128>,
    /// Inclusive upper bound established by `T::new` asserts.
    pub hi: Option<u128>,
    /// Human-readable evidence for the bounds (empty when none).
    pub why: String,
}

/// A constructor-proved ordering between two fields of one struct.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Smaller field name.
    pub lhs: String,
    /// Larger field name.
    pub rhs: String,
    /// `lhs < rhs` when true, `lhs <= rhs` when false.
    pub strict: bool,
    /// Evidence string.
    pub why: String,
}

/// Everything known about one struct type.
#[derive(Debug, Clone, Default)]
pub struct StructFacts {
    /// Fields by name (tuple structs use `"0"`, `"1"`, …).
    pub fields: BTreeMap<String, FieldInfo>,
    /// Constructor-proved field orderings.
    pub relations: Vec<Relation>,
    /// Whether ctor invariants hold workspace-wide: false once any
    /// non-test struct-literal construction outside `T::new` is seen.
    pub invariants_valid: bool,
}

/// A literal `const`/immutable-`static` value.
#[derive(Debug, Clone)]
pub struct ConstVal {
    /// The literal value.
    pub value: u128,
    /// Where it was defined (`file:line`).
    pub why: String,
}

/// `(file index, fn index within that file's `ParsedFile::fns`)`.
pub type FnRef = (usize, usize);

/// The assembled workspace fact base.
#[derive(Debug, Default)]
pub struct WorkspaceFacts {
    /// Struct shapes and invariants by type name. Ambiguous names
    /// (defined more than once workspace-wide) are absent.
    pub structs: BTreeMap<String, StructFacts>,
    /// Bare-name literal consts and immutable statics. Ambiguous names
    /// are absent.
    pub consts: BTreeMap<String, ConstVal>,
    /// `const`/`static` arrays: name → (length, element type).
    pub arrays: BTreeMap<String, (Option<u128>, TyInfo)>,
    /// `(TypeName, method)` → definition, for accessor inlining.
    /// Ambiguous pairs (duplicate inherent/trait impls) are absent.
    pub methods: BTreeMap<(String, String), FnRef>,
}

/// Paper-premise summaries for identifier-like accessors whose bounds
/// are a stated modeling assumption rather than a local proof. The
/// radix bound is the paper's own premise (high-radix crossbar,
/// radix ≤ 64) and is restated in every evidence string that uses it.
#[must_use]
pub fn seed_summary(ty: &str, method: &str) -> Option<(u128, u128, &'static str)> {
    const PORT: &str = "port id < 64 by the paper's radix <= 64 premise (ids are \
                        constructed from geometry-bounded port loops)";
    match (ty, method) {
        ("InputId" | "OutputId", "index") => Some((0, 63, PORT)),
        ("Request", "input") => Some((0, 63, PORT)),
        ("Request", "len_flits") => {
            Some((1, u64::MAX as u128, "Request::new asserts len_flits > 0"))
        }
        _ => None,
    }
}

/// Parses a numeric literal token text: value plus the suffix type, if
/// any (`63`, `0x3F`, `1_000u64`, `0b1_0000usize`).
#[must_use]
pub fn parse_num(text: &str) -> Option<(u128, Option<TyInfo>)> {
    let t = text.replace('_', "");
    if t.contains('.') {
        return None;
    }
    let (body, suffix) = match t
        .char_indices()
        .find(|&(i, c)| c.is_ascii_alphabetic() && !(i == 1 && matches!(c, 'x' | 'o' | 'b')))
        .map(|(i, _)| i)
    {
        // `0x3F` hex digits are alphabetic: retry the split after the
        // radix prefix by scanning for a known suffix instead.
        Some(_) if t.starts_with("0x") || t.starts_with("0X") => {
            let digits_end = 2 + t[2..]
                .find(|c: char| !c.is_ascii_hexdigit())
                .unwrap_or(t.len() - 2);
            (&t[..digits_end], &t[digits_end..])
        }
        Some(i) => (&t[..i], &t[i..]),
        None => (t.as_str(), ""),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u128::from_str_radix(bin, 2).ok()?
    } else if let Some(oct) = body.strip_prefix("0o").or_else(|| body.strip_prefix("0O")) {
        u128::from_str_radix(oct, 8).ok()?
    } else {
        body.parse::<u128>().ok()?
    };
    let ty = if suffix.is_empty() {
        None
    } else {
        // An unknown suffix poisons the literal rather than mistyping it.
        Some(TyInfo::prim(suffix)?)
    };
    Some((value, ty))
}

impl WorkspaceFacts {
    /// Harvests facts from every scanned file.
    #[must_use]
    pub fn build(files: &[SourceFile], parsed: &[ParsedFile]) -> WorkspaceFacts {
        let mut facts = WorkspaceFacts::default();
        let mut dup_structs = BTreeSet::new();
        let mut dup_consts = BTreeSet::new();
        let mut dup_methods = BTreeSet::new();

        // Pass 1: consts/statics first, so array lengths written as
        // named consts resolve during struct parsing.
        for file in files {
            harvest_consts(file, &mut facts, &mut dup_consts);
        }
        for name in &dup_consts {
            facts.consts.remove(name);
            facts.arrays.remove(name);
        }

        // Pass 2: struct shapes.
        for file in files {
            harvest_structs(file, &facts.consts.clone(), &mut facts, &mut dup_structs);
        }
        for name in &dup_structs {
            facts.structs.remove(name);
        }

        // Pass 3: method map from the item parser's qualified names.
        for (fi, p) in parsed.iter().enumerate() {
            for (k, f) in p.fns.iter().enumerate() {
                if f.is_test || !f.is_method {
                    continue;
                }
                let Some((ty, _)) = f.qual.rsplit_once("::") else {
                    continue;
                };
                let ty = ty.rsplit("::").next().unwrap_or(ty).to_string();
                let key = (ty, f.name.clone());
                if facts.methods.insert(key.clone(), (fi, k)).is_some() {
                    dup_methods.insert(key);
                }
            }
        }
        for key in &dup_methods {
            facts.methods.remove(key);
        }

        // Pass 4: constructor invariants, then the workspace-wide
        // construction scan that can revoke them.
        harvest_ctor_invariants(files, parsed, &mut facts);
        revoke_escaped_constructions(files, parsed, &mut facts);
        revoke_assigned_fields(files, parsed, &mut facts);
        derive_relation_bounds(&mut facts);
        facts
    }

    /// Field lookup honoring invariant validity: bounds are stripped
    /// when the type's invariants were revoked.
    #[must_use]
    pub fn field(&self, ty: &str, field: &str) -> Option<FieldInfo> {
        let s = self.structs.get(ty)?;
        let f = s.fields.get(field)?;
        if s.invariants_valid {
            Some(f.clone())
        } else {
            Some(FieldInfo {
                ty: f.ty.clone(),
                lo: None,
                hi: None,
                why: String::new(),
            })
        }
    }

    /// Relations for `ty`, empty when invariants were revoked.
    #[must_use]
    pub fn relations(&self, ty: &str) -> &[Relation] {
        match self.structs.get(ty) {
            Some(s) if s.invariants_valid => &s.relations,
            _ => &[],
        }
    }
}

/// Collects the code tokens of a file.
fn code(file: &SourceFile) -> Vec<&Token> {
    file.tokens.iter().filter(|t| t.kind.is_code()).collect()
}

/// Public type-parsing entry for the interpreter: parses a `: Ty`
/// annotation's token slice.
#[must_use]
pub fn ty_of_tokens(
    file: &SourceFile,
    toks: &[&Token],
    consts: &BTreeMap<String, ConstVal>,
) -> TyInfo {
    parse_ty(file, toks, consts)
}

/// Parses a type from a token slice (a field's `: …` tail or a const's
/// annotation). Unknown shapes come back as `TyInfo::default()`.
fn parse_ty(file: &SourceFile, toks: &[&Token], consts: &BTreeMap<String, ConstVal>) -> TyInfo {
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        let s = file.tok_text(t);
        if t.kind == TokenKind::Lifetime || matches!(s, "&" | "mut" | "dyn") {
            i += 1;
        } else {
            break;
        }
    }
    let Some(&first) = toks.get(i) else {
        return TyInfo::default();
    };
    let s = file.tok_text(first);
    if s == "[" {
        // `[T; N]` array or `[T]` slice: split on the `;` at depth 1.
        let mut depth = 0i32;
        let mut semi = None;
        let mut close = toks.len();
        for (j, t) in toks.iter().enumerate().skip(i) {
            match file.tok_text(t) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                ";" if depth == 1 && semi.is_none() => semi = Some(j),
                _ => {}
            }
        }
        let elem_end = semi.unwrap_or(close);
        let elem = parse_ty(file, &toks[i + 1..elem_end.min(toks.len())], consts);
        let arr_len = semi.and_then(|j| {
            let t = toks.get(j + 1)?;
            let s = file.tok_text(t);
            match t.kind {
                TokenKind::Num => parse_num(s).map(|(v, _)| v),
                TokenKind::Ident => consts.get(s).map(|c| c.value),
                _ => None,
            }
        });
        return TyInfo {
            arr_len,
            elem: Some(Box::new(elem)),
            ..TyInfo::default()
        };
    }
    if first.kind != TokenKind::Ident {
        return TyInfo::default();
    }
    // Walk the path to its final segment before any generic args.
    let mut seg = s;
    let mut j = i;
    while toks.get(j + 1).is_some_and(|t| file.tok_text(t) == ":")
        && toks.get(j + 2).is_some_and(|t| file.tok_text(t) == ":")
        && toks.get(j + 3).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        j += 3;
        seg = file.tok_text(toks[j]);
    }
    if let Some(prim) = TyInfo::prim(seg) {
        return prim;
    }
    if seg == "Vec" && toks.get(j + 1).is_some_and(|t| file.tok_text(t) == "<") {
        // Element type: everything inside the matching angle pair.
        let mut depth = 0i32;
        let mut close = toks.len();
        for (k, t) in toks.iter().enumerate().skip(j + 1) {
            match file.tok_text(t) {
                "<" => depth += 1,
                ">" if !(k > 0 && file.tok_text(toks[k - 1]) == "-") => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let elem = parse_ty(file, &toks[j + 2..close.min(toks.len())], consts);
        return TyInfo {
            name: Some("Vec".to_string()),
            is_vec: true,
            elem: Some(Box::new(elem)),
            ..TyInfo::default()
        };
    }
    TyInfo {
        name: Some(seg.to_string()),
        ..TyInfo::default()
    }
}

/// Scans one file for literal consts, immutable statics, and
/// const/static arrays.
fn harvest_consts(file: &SourceFile, facts: &mut WorkspaceFacts, dups: &mut BTreeSet<String>) {
    let toks = code(file);
    let text = |k: usize| toks.get(k).map(|t| file.tok_text(t));
    for k in 0..toks.len() {
        let kw = file.tok_text(toks[k]);
        if !(kw == "const" || kw == "static") || toks[k].kind != TokenKind::Ident {
            continue;
        }
        // `const fn`, `static mut` (mutable → no stable value), and the
        // `*const T` pointer sigil all disqualify.
        if matches!(text(k + 1), Some("fn" | "mut")) {
            continue;
        }
        let Some(name_tok) = toks.get(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if text(k + 2) != Some(":") {
            continue;
        }
        let name = file.tok_text(name_tok).to_string();
        if file.is_test_line(toks[k].line) {
            continue;
        }
        // Type annotation runs to the `=` at zero bracket depth.
        let mut depth = 0i32;
        let mut eq = None;
        for (j, t) in toks.iter().enumerate().skip(k + 3) {
            match file.tok_text(t) {
                "[" | "(" | "<" => depth += 1,
                "]" | ")" => depth -= 1,
                ">" if !(j > 0 && file.tok_text(toks[j - 1]) == "-") => depth -= 1,
                "=" if depth == 0 => {
                    eq = Some(j);
                    break;
                }
                ";" | "{" if depth == 0 => break,
                _ => {}
            }
        }
        let Some(eq) = eq else { continue };
        let ty = parse_ty(file, &toks[k + 3..eq], &facts.consts);
        let why = format!("{}:{}", file.rel, toks[k].line + 1);
        if ty.elem.is_some() {
            if facts
                .arrays
                .insert(name.clone(), (ty.arr_len, ty))
                .is_some()
            {
                dups.insert(name);
            }
            continue;
        }
        // A scalar const with a single literal initializer.
        let lit = toks
            .get(eq + 1)
            .filter(|t| t.kind == TokenKind::Num && text(eq + 2) == Some(";"));
        let Some((value, _)) = lit.and_then(|t| parse_num(file.tok_text(t))) else {
            continue;
        };
        if facts
            .consts
            .insert(name.clone(), ConstVal { value, why })
            .is_some()
        {
            dups.insert(name);
        }
    }
}

/// Scans one file for struct declarations and their field lists.
fn harvest_structs(
    file: &SourceFile,
    consts: &BTreeMap<String, ConstVal>,
    facts: &mut WorkspaceFacts,
    dups: &mut BTreeSet<String>,
) {
    let toks = code(file);
    let text = |k: usize| toks.get(k).map(|t| file.tok_text(t));
    for k in 0..toks.len() {
        if file.tok_text(toks[k]) != "struct" || toks[k].kind != TokenKind::Ident {
            continue;
        }
        let Some(name_tok) = toks.get(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if file.is_test_line(toks[k].line) {
            continue;
        }
        let name = file.tok_text(name_tok).to_string();
        // Skip generics to the body opener.
        let mut j = k + 2;
        if text(j) == Some("<") {
            let mut depth = 0i32;
            while j < toks.len() {
                match text(j) {
                    Some("<") => depth += 1,
                    Some(">") if text(j - 1) != Some("-") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut sf = StructFacts {
            invariants_valid: true,
            ..StructFacts::default()
        };
        match text(j) {
            Some("{") => {
                let mut fi = j + 1;
                while fi < toks.len() && text(fi) != Some("}") {
                    // Skip attributes and visibility.
                    while text(fi) == Some("#") {
                        fi += 1; // `[`
                        let mut d = 0i32;
                        while fi < toks.len() {
                            match text(fi) {
                                Some("[") => d += 1,
                                Some("]") => {
                                    d -= 1;
                                    if d == 0 {
                                        fi += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            fi += 1;
                        }
                    }
                    if text(fi) == Some("pub") {
                        fi += 1;
                        if text(fi) == Some("(") {
                            while fi < toks.len() && text(fi) != Some(")") {
                                fi += 1;
                            }
                            fi += 1;
                        }
                    }
                    let Some(ft) = toks.get(fi).filter(|t| t.kind == TokenKind::Ident) else {
                        break;
                    };
                    if text(fi + 1) != Some(":") {
                        break;
                    }
                    let fname = file.tok_text(ft).to_string();
                    // Field type runs to the `,` or `}` at zero depth.
                    let start = fi + 2;
                    let mut depth = 0i32;
                    let mut end = start;
                    while end < toks.len() {
                        match text(end) {
                            Some("<" | "(" | "[") => depth += 1,
                            Some(")" | "]") => depth -= 1,
                            Some(">") if text(end - 1) != Some("-") => depth -= 1,
                            Some(",") if depth == 0 => break,
                            Some("}") if depth <= 0 => break,
                            _ => {}
                        }
                        end += 1;
                    }
                    sf.fields.insert(
                        fname,
                        FieldInfo {
                            ty: parse_ty(file, &toks[start..end], consts),
                            lo: None,
                            hi: None,
                            why: String::new(),
                        },
                    );
                    fi = if text(end) == Some(",") { end + 1 } else { end };
                }
            }
            Some("(") => {
                // Tuple struct: fields `0`, `1`, … split on depth-0 `,`.
                let mut depth = 0i32;
                let mut start = j + 1;
                let mut idx = 0usize;
                let mut end = j;
                loop {
                    end += 1;
                    let Some(s) = text(end) else { break };
                    match s {
                        "(" | "[" | "<" => depth += 1,
                        "]" => depth -= 1,
                        ">" if text(end - 1) != Some("-") => depth -= 1,
                        "," if depth == 0 => {
                            push_tuple_field(file, &toks, start..end, idx, consts, &mut sf);
                            idx += 1;
                            start = end + 1;
                        }
                        ")" => {
                            if depth == 0 {
                                if end > start {
                                    push_tuple_field(file, &toks, start..end, idx, consts, &mut sf);
                                }
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
        if facts.structs.insert(name.clone(), sf).is_some() {
            dups.insert(name);
        }
    }
}

fn push_tuple_field(
    file: &SourceFile,
    toks: &[&Token],
    range: std::ops::Range<usize>,
    idx: usize,
    consts: &BTreeMap<String, ConstVal>,
    sf: &mut StructFacts,
) {
    // Visibility on tuple fields sits inside the range.
    let mut start = range.start;
    if toks.get(start).map(|t| file.tok_text(t)) == Some("pub") {
        start += 1;
        if toks.get(start).map(|t| file.tok_text(t)) == Some("(") {
            while start < range.end && toks.get(start).map(|t| file.tok_text(t)) != Some(")") {
                start += 1;
            }
            start += 1;
        }
    }
    sf.fields.insert(
        idx.to_string(),
        FieldInfo {
            ty: parse_ty(file, &toks[start..range.end], consts),
            lo: None,
            hi: None,
            why: String::new(),
        },
    );
}

/// For every struct with a `T::new`, harvests `assert!` conjuncts as
/// field invariants — but only for fields the constructor's struct
/// literal initializes by shorthand from the asserted binding, and only
/// when that binding is never reassigned in the body.
fn harvest_ctor_invariants(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    facts: &mut WorkspaceFacts,
) {
    let names: Vec<String> = facts.structs.keys().cloned().collect();
    for tname in names {
        let Some(&(fi, fk)) = facts.methods.get(&(tname.clone(), "new".to_string())) else {
            continue;
        };
        let file = &files[fi];
        let f = &parsed[fi].fns[fk];
        let body: Vec<&Token> = file.tokens[f.body.clone()]
            .iter()
            .filter(|t| t.kind.is_code())
            .collect();
        let text = |k: usize| body.get(k).map(|t| file.tok_text(t));

        // Bindings reassigned anywhere in the body lose their asserts.
        let mut reassigned = BTreeSet::new();
        for (k, tok) in body.iter().enumerate() {
            if tok.kind == TokenKind::Ident
                && text(k + 1) == Some("=")
                && text(k + 2) != Some("=")
                && !matches!(text(k.wrapping_sub(1)), Some("<" | ">" | "!" | "=" | "let"))
            {
                reassigned.insert(file.tok_text(tok).to_string());
            }
        }

        // Shorthand-initialized fields of the result struct literal
        // (`Self { sig_bits, … }` or `field: field`).
        let mut shorthand = BTreeSet::new();
        for k in 0..body.len() {
            let s = file.tok_text(body[k]);
            if !(s == "Self" || s == tname) || text(k + 1) != Some("{") {
                continue;
            }
            let mut j = k + 2;
            let mut depth = 1i32;
            while j < body.len() && depth > 0 {
                match text(j) {
                    Some("{") => depth += 1,
                    Some("}") => depth -= 1,
                    Some(",") | None => {}
                    _ => {}
                }
                if depth == 1 && body[j].kind == TokenKind::Ident {
                    let fname = file.tok_text(body[j]).to_string();
                    let ok = match text(j + 1) {
                        Some("," | "}") => true,
                        Some(":") => text(j + 2) == Some(fname.as_str()),
                        _ => false,
                    };
                    if ok && !reassigned.contains(&fname) {
                        shorthand.insert(fname);
                    }
                    // Skip this initializer to its depth-1 comma.
                    let mut d = 0i32;
                    while j < body.len() {
                        match text(j) {
                            Some("(" | "[" | "{") => d += 1,
                            Some(")" | "]") => d -= 1,
                            Some("}") => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            Some(",") if d == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                j += 1;
            }
        }

        // Harvest assert! conjuncts.
        let sf = facts.structs.get_mut(&tname).expect("present by loop");
        for k in 0..body.len() {
            if file.tok_text(body[k]) != "assert" || text(k + 1) != Some("!") {
                continue;
            }
            if text(k + 2) != Some("(") {
                continue;
            }
            let mut depth = 0i32;
            let mut close = body.len();
            for (j, t) in body.iter().enumerate().skip(k + 2) {
                match file.tok_text(t) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            close = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            // Split on depth-0 `&&`; a `,` ends the condition (message).
            let mut cstart = k + 3;
            let mut d = 0i32;
            let mut conjuncts: Vec<std::ops::Range<usize>> = Vec::new();
            for j in k + 3..close {
                match text(j) {
                    Some("(" | "[" | "{") => d += 1,
                    Some(")" | "]" | "}") => d -= 1,
                    Some(",") if d == 0 => {
                        conjuncts.push(cstart..j);
                        cstart = close;
                        break;
                    }
                    Some("&") if d == 0 && text(j + 1) == Some("&") && j > cstart => {
                        conjuncts.push(cstart..j);
                        cstart = j + 2;
                    }
                    _ => {}
                }
            }
            if cstart < close {
                conjuncts.push(cstart..close);
            }
            for c in conjuncts {
                apply_conjunct(file, &body, c, &tname, &shorthand, sf);
            }
        }
    }
}

/// Applies one assert conjunct as a field bound or relation.
fn apply_conjunct(
    file: &SourceFile,
    body: &[&Token],
    c: std::ops::Range<usize>,
    tname: &str,
    shorthand: &BTreeSet<String>,
    sf: &mut StructFacts,
) {
    let toks: Vec<&str> = body[c].iter().map(|t| file.tok_text(t)).collect();
    let render = toks.join(" ");
    let why = format!("{tname}::new asserts `{render}`");
    // `f.is_power_of_two()` implies `f >= 1` (zero is not a power).
    if toks
        == [
            toks.first().copied().unwrap_or(""),
            ".",
            "is_power_of_two",
            "(",
            ")",
        ]
        && sf.fields.contains_key(toks[0])
        && shorthand.contains(toks[0])
    {
        if let Some(f) = sf.fields.get_mut(toks[0]) {
            f.lo = Some(f.lo.map_or(1, |old| old.max(1)));
            if !f.why.is_empty() {
                f.why.push_str("; ");
            }
            f.why.push_str(&why);
        }
        return;
    }
    // Recognized shapes (op is one or two tokens):
    //   ident OP num | num OP ident | ident OP ident
    //   ident + ident OP num   (unsigned sum bound)
    let (l, op, r): (&[&str], String, &[&str]) = {
        let pos = toks.iter().position(|t| matches!(*t, "<" | ">" | "="));
        let Some(p) = pos else { return };
        let two = matches!(toks.get(p + 1).copied(), Some("=")) && toks[p] != "=";
        let eq = toks[p] == "=" && matches!(toks.get(p + 1).copied(), Some("="));
        let op = if two || eq {
            format!("{}{}", toks[p], "=")
        } else if toks[p] == "=" {
            return; // lone `=`: not a comparison
        } else {
            toks[p].to_string()
        };
        let rhs_start = if two || eq { p + 2 } else { p + 1 };
        (&toks[..p], op, &toks[rhs_start..])
    };
    let is_field = |name: &str| sf.fields.contains_key(name) && shorthand.contains(name);
    let num = |t: &[&str]| {
        if t.len() == 1 {
            parse_num(t[0]).map(|(v, _)| v)
        } else {
            None
        }
    };
    let ident = |t: &[&str]| {
        if t.len() == 1 && is_field(t[0]) {
            Some(t[0].to_string())
        } else {
            None
        }
    };
    fn apply_bound(
        fields: &mut BTreeMap<String, FieldInfo>,
        why: &str,
        name: &str,
        lo: Option<u128>,
        hi: Option<u128>,
    ) {
        if let Some(f) = fields.get_mut(name) {
            if let Some(v) = lo {
                f.lo = Some(f.lo.map_or(v, |old| old.max(v)));
            }
            if let Some(v) = hi {
                f.hi = Some(f.hi.map_or(v, |old| old.min(v)));
            }
            if !f.why.is_empty() {
                f.why.push_str("; ");
            }
            f.why.push_str(why);
        }
    }
    match (ident(l), num(l), ident(r), num(r)) {
        (Some(a), _, _, Some(k)) => match op.as_str() {
            "<" => apply_bound(&mut sf.fields, &why, &a, None, k.checked_sub(1)),
            "<=" => apply_bound(&mut sf.fields, &why, &a, None, Some(k)),
            ">" => apply_bound(&mut sf.fields, &why, &a, k.checked_add(1), None),
            ">=" => apply_bound(&mut sf.fields, &why, &a, Some(k), None),
            "==" => apply_bound(&mut sf.fields, &why, &a, Some(k), Some(k)),
            _ => {}
        },
        (_, Some(k), Some(a), _) => match op.as_str() {
            ">" => apply_bound(&mut sf.fields, &why, &a, None, k.checked_sub(1)),
            ">=" => apply_bound(&mut sf.fields, &why, &a, None, Some(k)),
            "<" => apply_bound(&mut sf.fields, &why, &a, k.checked_add(1), None),
            "<=" => apply_bound(&mut sf.fields, &why, &a, Some(k), None),
            "==" => apply_bound(&mut sf.fields, &why, &a, Some(k), Some(k)),
            _ => {}
        },
        (Some(a), _, Some(b), _) => {
            let (lhs, rhs, strict) = match op.as_str() {
                "<" => (a, b, true),
                "<=" => (a, b, false),
                ">" => (b, a, true),
                ">=" => (b, a, false),
                _ => return,
            };
            sf.relations.push(Relation {
                lhs,
                rhs,
                strict,
                why,
            });
        }
        _ => {
            // `a + b <= k`: for unsigned fields each addend is <= k.
            if l.len() == 3 && l[1] == "+" && matches!(op.as_str(), "<" | "<=") {
                if let Some(k) = num(r) {
                    let hi = if op == "<" { k.checked_sub(1) } else { Some(k) };
                    for name in [l[0], l[2]] {
                        let ok = shorthand.contains(name)
                            && sf
                                .fields
                                .get(name)
                                .is_some_and(|f| f.ty.width.is_some() && !f.ty.signed);
                        if ok {
                            apply_bound(&mut sf.fields, &why, name, None, hi);
                        }
                    }
                }
            }
        }
    }
}

/// Revokes ctor invariants for any type constructed by struct literal
/// outside its own `new` in non-test code. (Match-pattern destructuring
/// can over-trigger this; losing an invariant is the safe direction.)
/// Closes constructor bounds over constructor relations: `a < b` with
/// `b <= K` proves `a <= K - 1`, and `a >= K` proves `b >= K` (+1 when
/// strict). Runs after the revocation passes so derived bounds never
/// rest on facts that post-construction writes invalidated. A few
/// rounds reach the fixpoint for any realistic invariant chain.
fn derive_relation_bounds(facts: &mut WorkspaceFacts) {
    for sf in facts.structs.values_mut() {
        if !sf.invariants_valid {
            continue;
        }
        for _ in 0..4 {
            let mut changed = false;
            for r in sf.relations.clone() {
                let step = u128::from(r.strict);
                let ok = |f: Option<&FieldInfo>| {
                    f.is_some_and(|f| f.ty.width.is_some() && !f.ty.signed && !f.ty.float)
                };
                if !(ok(sf.fields.get(&r.lhs)) && ok(sf.fields.get(&r.rhs))) {
                    continue;
                }
                if let Some(hi) = sf.fields.get(&r.rhs).and_then(|f| f.hi) {
                    let new_hi = hi.saturating_sub(step);
                    let why = format!("{} and `{}` <= {hi}", r.why, r.rhs);
                    let f = sf.fields.get_mut(&r.lhs).expect("checked above");
                    if f.hi.is_none_or(|h| new_hi < h) {
                        f.hi = Some(new_hi);
                        if !f.why.is_empty() {
                            f.why.push_str("; ");
                        }
                        f.why.push_str(&why);
                        changed = true;
                    }
                }
                if let Some(lo) = sf.fields.get(&r.lhs).and_then(|f| f.lo) {
                    let new_lo = lo.saturating_add(step);
                    let why = format!("{} and `{}` >= {lo}", r.why, r.lhs);
                    let f = sf.fields.get_mut(&r.rhs).expect("checked above");
                    if f.lo.is_none_or(|l| new_lo > l) {
                        f.lo = Some(new_lo);
                        if !f.why.is_empty() {
                            f.why.push_str("; ");
                        }
                        f.why.push_str(&why);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

fn revoke_escaped_constructions(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    facts: &mut WorkspaceFacts,
) {
    const ITEM_KEYWORDS: &[&str] = &[
        "struct", "enum", "impl", "trait", "union", "mod", "fn", "let", "for",
    ];
    for (fi, file) in files.iter().enumerate() {
        let indexed: Vec<(usize, &Token)> = file.code_tokens().collect();
        let toks: Vec<&Token> = indexed.iter().map(|&(_, t)| t).collect();
        let text = |k: usize| toks.get(k).map(|t| file.tok_text(t));
        for k in 0..toks.len() {
            if toks[k].kind != TokenKind::Ident || text(k + 1) != Some("{") {
                continue;
            }
            let s = file.tok_text(toks[k]);
            let named = s.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            if !named {
                continue;
            }
            if k > 0 && ITEM_KEYWORDS.contains(&file.tok_text(toks[k - 1])) {
                continue;
            }
            // Require a field-list shape just inside the brace.
            let inner = text(k + 2);
            let field_like = match (toks.get(k + 2).map(|t| t.kind), text(k + 3)) {
                (Some(TokenKind::Ident), Some(":" | "," | "}")) => true,
                _ => inner == Some(".."),
            };
            if !field_like {
                continue;
            }
            // Pattern position: `T { … } =>` destructures, not builds.
            let mut d = 0i32;
            let mut close = toks.len();
            for (j, t) in toks.iter().enumerate().skip(k + 1) {
                match file.tok_text(t) {
                    "{" => d += 1,
                    "}" => {
                        d -= 1;
                        if d == 0 {
                            close = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if text(close + 1) == Some("=") && text(close + 2) == Some(">") {
                continue;
            }
            // Resolve `Self` through the enclosing fn's qualifier, and
            // find whether we are inside `T::new` or a test.
            let tok_idx = indexed[k].0;
            let encl = parsed[fi]
                .fns
                .iter()
                .filter(|f| f.body.contains(&tok_idx))
                .min_by_key(|f| f.body.len());
            let tname = if s == "Self" {
                match encl.and_then(|f| f.qual.rsplit_once("::")) {
                    Some((ty, _)) => ty.rsplit("::").next().unwrap_or(ty).to_string(),
                    None => continue,
                }
            } else {
                s.to_string()
            };
            let in_new = encl.is_some_and(|f| {
                f.name == "new"
                    && f.qual
                        .rsplit_once("::")
                        .is_some_and(|(ty, _)| ty.rsplit("::").next() == Some(tname.as_str()))
            });
            let in_test = encl.is_some_and(|f| f.is_test) || file.is_test_line(toks[k].line);
            if in_new || in_test {
                continue;
            }
            if let Some(sf) = facts.structs.get_mut(&tname) {
                sf.invariants_valid = false;
            }
        }
    }
}

/// Revokes per-field ctor bounds for any field assigned through a place
/// expression (`x.f = …`, `x.f += …`) anywhere in non-test code: a
/// post-construction write can violate whatever `T::new` asserted. The
/// scan is name-based across all structs (the receiver's type is not
/// known at token level); losing a bound is the safe direction.
fn revoke_assigned_fields(files: &[SourceFile], parsed: &[ParsedFile], facts: &mut WorkspaceFacts) {
    // `(Some(type), field)` for `self.field = …` inside an impl (only
    // that struct is touched); `(None, field)` for assignments through
    // arbitrary receivers (every struct with the field name, the sound
    // fallback without type inference).
    let mut hit: BTreeSet<(Option<String>, String)> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        let indexed: Vec<(usize, &Token)> = file.code_tokens().collect();
        let toks: Vec<&Token> = indexed.iter().map(|&(_, t)| t).collect();
        let text = |k: usize| toks.get(k).map(|t| file.tok_text(t));
        for k in 0..toks.len() {
            if toks[k].kind != TokenKind::Ident || k == 0 || text(k - 1) != Some(".") {
                continue;
            }
            let assigned = match text(k + 1) {
                // `x.f = v` but not `x.f == v`.
                Some("=") => text(k + 2) != Some("="),
                Some("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") => text(k + 2) == Some("="),
                Some("<") => text(k + 2) == Some("<") && text(k + 3) == Some("="),
                Some(">") => text(k + 2) == Some(">") && text(k + 3) == Some("="),
                _ => false,
            };
            if !assigned {
                continue;
            }
            let tok_idx = indexed[k].0;
            let encl = parsed[fi]
                .fns
                .iter()
                .filter(|f| f.body.contains(&tok_idx))
                .min_by_key(|f| f.body.len());
            if encl.is_some_and(|f| f.is_test) || file.is_test_line(toks[k].line) {
                continue;
            }
            let impl_ty = (k >= 2 && text(k - 2) == Some("self"))
                .then(|| encl.filter(|f| f.is_method))
                .flatten()
                .and_then(|f| f.qual.rsplit("::").nth(1))
                .map(str::to_string);
            hit.insert((impl_ty, file.tok_text(toks[k]).to_string()));
        }
    }
    for (tyname, sf) in facts.structs.iter_mut() {
        let hits_here = |name: &str| {
            hit.contains(&(None, name.to_string()))
                || hit.contains(&(Some(tyname.clone()), name.to_string()))
        };
        for (name, f) in sf.fields.iter_mut() {
            if hits_here(name) {
                f.lo = None;
                f.hi = None;
                f.why.clear();
            }
        }
        sf.relations
            .retain(|r| !hits_here(&r.lhs) && !hits_here(&r.rhs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn build(srcs: &[(&str, &str)]) -> WorkspaceFacts {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, text)| SourceFile::new(rel, (*text).to_string()))
            .collect();
        let parsed: Vec<ParsedFile> = files.iter().enumerate().map(|(i, f)| parse(f, i)).collect();
        WorkspaceFacts::build(&files, &parsed)
    }

    #[test]
    fn struct_fields_parse_widths_arrays_and_vecs() {
        let facts = build(&[(
            "crates/core/src/demo.rs",
            "pub struct S {\n    pub a: u8,\n    b: [u64; 4],\n    c: Vec<u32>,\n    d: Other,\n}\n",
        )]);
        let s = &facts.structs["S"];
        assert_eq!(s.fields["a"].ty.width, Some(8));
        assert_eq!(s.fields["b"].ty.arr_len, Some(4));
        assert_eq!(s.fields["b"].ty.elem.as_ref().unwrap().width, Some(64));
        assert!(s.fields["c"].ty.is_vec);
        assert_eq!(s.fields["d"].ty.name.as_deref(), Some("Other"));
    }

    #[test]
    fn tuple_struct_and_const_array_lengths() {
        let facts = build(&[(
            "crates/types/src/demo.rs",
            "const LANES: usize = 4;\npub struct Cycle(pub u64);\npub struct R { s: [u64; LANES] }\n",
        )]);
        assert_eq!(facts.structs["Cycle"].fields["0"].ty.width, Some(64));
        assert_eq!(facts.structs["R"].fields["s"].ty.arr_len, Some(4));
        assert_eq!(facts.consts["LANES"].value, 4);
    }

    #[test]
    fn ctor_asserts_become_field_bounds_and_relations() {
        let facts = build(&[(
            "crates/core/src/cfg.rs",
            "pub struct C { sig: u8, cnt: u8 }\nimpl C {\n    pub fn new(sig: u8, cnt: u8) -> C {\n        assert!(sig >= 1 && sig < cnt && cnt <= 32);\n        C { sig, cnt }\n    }\n}\n",
        )]);
        let s = &facts.structs["C"];
        assert!(s.invariants_valid);
        // The relation-closure pass turns `sig < cnt <= 32` into a
        // numeric `sig <= 31` on top of the direct `sig >= 1`.
        assert_eq!(
            (s.fields["sig"].lo, s.fields["sig"].hi),
            (Some(1), Some(31))
        );
        assert_eq!(s.fields["cnt"].hi, Some(32));
        assert_eq!(s.fields["cnt"].lo, Some(2));
        assert_eq!(s.relations.len(), 1);
        assert!(s.relations[0].strict && s.relations[0].lhs == "sig");
    }

    #[test]
    fn escaped_construction_revokes_invariants() {
        let facts = build(&[(
            "crates/core/src/cfg.rs",
            "pub struct C { sig: u8 }\nimpl C {\n    pub fn new(sig: u8) -> C {\n        assert!(sig < 9);\n        C { sig }\n    }\n}\nfn sneak() -> C {\n    C { sig: 200 }\n}\n",
        )]);
        assert!(!facts.structs["C"].invariants_valid);
        assert_eq!(facts.field("C", "sig").unwrap().hi, None);
        // The type shape survives revocation.
        assert_eq!(facts.field("C", "sig").unwrap().ty.width, Some(8));
    }

    #[test]
    fn reassigned_binding_loses_its_assert() {
        let facts = build(&[(
            "crates/core/src/cfg.rs",
            "pub struct C { sig: u8 }\nimpl C {\n    pub fn new(mut sig: u8) -> C {\n        assert!(sig < 9);\n        sig = sig + 1;\n        C { sig }\n    }\n}\n",
        )]);
        assert_eq!(facts.structs["C"].fields["sig"].hi, None);
    }

    #[test]
    fn self_field_assignment_revokes_only_the_impl_type() {
        // Two structs share a field name; the builder mutates its own
        // `sig_bits` through `self`, which must not strip the unrelated
        // SsvcConfig-style struct of its ctor invariant.
        let facts = build(&[(
            "crates/core/src/cfg.rs",
            "pub struct A { sig_bits: u8 }\nimpl A {\n    pub fn new(sig_bits: u8) -> A {\n        assert!(sig_bits < 9);\n        A { sig_bits }\n    }\n}\npub struct B { sig_bits: u8 }\nimpl B {\n    pub fn new(sig_bits: u8) -> B {\n        assert!(sig_bits < 9);\n        B { sig_bits }\n    }\n    pub fn set(&mut self, v: u8) {\n        self.sig_bits = v;\n    }\n}\n",
        )]);
        assert_eq!(facts.structs["A"].fields["sig_bits"].hi, Some(8));
        assert_eq!(facts.structs["B"].fields["sig_bits"].hi, None);
    }

    #[test]
    fn bare_receiver_assignment_revokes_by_name_everywhere() {
        // `cfg.sig = …` outside any impl cannot be type-resolved, so the
        // sound fallback strips every struct holding that field name.
        let facts = build(&[(
            "crates/core/src/cfg.rs",
            "pub struct A { sig: u8 }\nimpl A {\n    pub fn new(sig: u8) -> A {\n        assert!(sig < 9);\n        A { sig }\n    }\n}\nfn poke(cfg: &mut A) {\n    cfg.sig = 200;\n}\n",
        )]);
        assert_eq!(facts.structs["A"].fields["sig"].hi, None);
    }

    #[test]
    fn power_of_two_assert_harvests_a_lower_bound() {
        let facts = build(&[(
            "crates/core/src/cfg.rs",
            "pub struct C { lanes: u64 }\nimpl C {\n    pub fn new(lanes: u64) -> C {\n        assert!(lanes.is_power_of_two());\n        C { lanes }\n    }\n}\n",
        )]);
        assert_eq!(facts.structs["C"].fields["lanes"].lo, Some(1));
    }

    #[test]
    fn num_literals_parse_radixes_and_suffixes() {
        assert_eq!(parse_num("63").unwrap().0, 63);
        assert_eq!(parse_num("0x3F").unwrap().0, 63);
        assert_eq!(parse_num("0b111_111").unwrap().0, 63);
        let (v, ty) = parse_num("64u64").unwrap();
        assert_eq!((v, ty.unwrap().width), (64, Some(64)));
        let (v, ty) = parse_num("0x40usize").unwrap();
        assert_eq!((v, ty.unwrap().width), (64, Some(64)));
        assert!(parse_num("1.5").is_none());
    }

    #[test]
    fn duplicate_names_are_dropped_not_guessed() {
        let facts = build(&[
            (
                "crates/a/src/x.rs",
                "pub struct D { f: u8 }\nconst K: u64 = 1;\n",
            ),
            (
                "crates/b/src/y.rs",
                "pub struct D { f: u64 }\nconst K: u64 = 2;\n",
            ),
        ]);
        assert!(!facts.structs.contains_key("D"));
        assert!(!facts.consts.contains_key("K"));
    }

    #[test]
    fn seed_summaries_cover_port_identifiers() {
        assert_eq!(seed_summary("InputId", "index").unwrap().1, 63);
        assert_eq!(seed_summary("Request", "len_flits").unwrap().0, 1);
        assert!(seed_summary("InputId", "other").is_none());
    }
}
