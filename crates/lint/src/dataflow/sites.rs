//! Canonical enumeration of panic-capable sites in a function body.
//!
//! This is the single source of truth shared by the
//! `panic-freedom-reachability` profile (which counts sites into its
//! `p{}i{}a{}` anchor) and the abstract interpreter (which tries to
//! prove each site safe). Keeping both on one enumeration is what makes
//! per-site discharge sound: a proof map keyed by token index subtracts
//! cleanly from the profile because both passes agree on exactly which
//! tokens are sites.
//!
//! Profiled kinds (counted into the anchor): explicit panics, `expr[…]`
//! indexing, and overflow-capable arithmetic operators including
//! adjacent `<<`. Right shifts are additionally enumerated for
//! `mask-width-safety` but are *not* profiled — `>>` cannot overflow a
//! value, only the shift amount can be out of range, and the legacy
//! profile never counted it (anchors in the committed baseline would
//! churn if it started to).

use crate::lexer::{Token, TokenKind};
use crate::parse::FnItem;
use crate::source::SourceFile;

/// Identifier-position keywords that can legally precede `[` or an
/// arithmetic operator without making the site value-like.
pub const VALUE_BREAK_KEYWORDS: &[&str] = &[
    "in", "return", "else", "match", "if", "while", "loop", "break", "mut", "ref", "let", "move",
    "box", "dyn", "as", "unsafe", "impl", "where", "for", "const", "static", "use", "pub",
];

/// Whether the token text can end a value expression (making a
/// following `[` an index and a following `+` a binary op).
#[must_use]
pub fn value_end(text: Option<&str>, kind: Option<TokenKind>) -> bool {
    match (text, kind) {
        (Some(t), Some(TokenKind::Ident)) => !VALUE_BREAK_KEYWORDS.contains(&t),
        (_, Some(TokenKind::Num)) => true,
        (Some(")" | "]"), Some(TokenKind::Punct)) => true,
        _ => false,
    }
}

/// What kind of panic-capable site a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap(`/`.expect(`/`panic!`/`unreachable!`/`assert*!`.
    Panic,
    /// `expr[…]` indexing (the `[` token).
    Index,
    /// An overflow/underflow/div-by-zero capable binary operator
    /// (`+ - * / %`, including the compound-assignment forms).
    Arith(char),
    /// An adjacent `<<` left shift (the first `<` token).
    Shl,
    /// An adjacent `>>` right shift (the first `>` token). Enumerated
    /// for `mask-width-safety` only; never profiled.
    Shr,
}

impl SiteKind {
    /// Whether the legacy `p{}i{}a{}` profile counts this site.
    #[must_use]
    pub fn profiled(self) -> bool {
        !matches!(self, SiteKind::Shr)
    }
}

/// One panic-capable site in a function body.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// Index of the site's token in the owning file's full token
    /// stream (the `[` for indexing, the operator's first character
    /// for arithmetic and shifts, the name/macro token for panics).
    pub tok: usize,
    /// 0-based line of the site.
    pub line: usize,
    /// Site classification.
    pub kind: SiteKind,
}

/// Enumerates every panic-capable site in `f`'s body, in token order.
#[must_use]
pub fn enumerate(file: &SourceFile, f: &FnItem) -> Vec<Site> {
    let body: Vec<(usize, &Token)> = file.tokens[f.body.clone()]
        .iter()
        .enumerate()
        .map(|(k, t)| (f.body.start + k, t))
        .filter(|(_, t)| t.kind.is_code())
        .collect();
    let text_of = |k: usize| body.get(k).map(|(_, t)| file.tok_text(t));
    let kind_of = |k: usize| body.get(k).map(|(_, t)| t.kind);
    let mut out = Vec::new();
    for (k, &(idx, tok)) in body.iter().enumerate() {
        let s = file.tok_text(tok);
        match tok.kind {
            TokenKind::Ident => {
                let method = matches!(s, "unwrap" | "expect")
                    && k > 0
                    && text_of(k - 1) == Some(".")
                    && text_of(k + 1) == Some("(");
                let bang = matches!(
                    s,
                    "panic" | "unreachable" | "assert" | "assert_eq" | "assert_ne"
                ) && text_of(k + 1) == Some("!");
                if method || bang {
                    out.push(Site {
                        tok: idx,
                        line: tok.line,
                        kind: SiteKind::Panic,
                    });
                }
            }
            TokenKind::Punct => {
                let prev_ok = k > 0 && value_end(text_of(k - 1), kind_of(k - 1));
                match s {
                    "[" if prev_ok => out.push(Site {
                        tok: idx,
                        line: tok.line,
                        kind: SiteKind::Index,
                    }),
                    "+" | "-" | "*" | "/" | "%" if prev_ok => {
                        // `->` is an arrow, not subtraction; a shifted
                        // `<<` is handled below.
                        if s == "-" && text_of(k + 1) == Some(">") {
                            continue;
                        }
                        let next_ok = matches!(
                            (text_of(k + 1), kind_of(k + 1)),
                            (_, Some(TokenKind::Ident | TokenKind::Num))
                                | (Some("(" | "&" | "-" | "*" | "!" | "="), _)
                        );
                        if next_ok {
                            out.push(Site {
                                tok: idx,
                                line: tok.line,
                                kind: SiteKind::Arith(s.as_bytes()[0] as char),
                            });
                        }
                    }
                    "<" if prev_ok => {
                        // Adjacent `<<` is a shift; a spaced `< <` is not.
                        let shifted = body
                            .get(k + 1)
                            .is_some_and(|(_, n)| file.tok_text(n) == "<" && n.start == tok.end);
                        if shifted {
                            out.push(Site {
                                tok: idx,
                                line: tok.line,
                                kind: SiteKind::Shl,
                            });
                        }
                    }
                    ">" if prev_ok => {
                        // Adjacent `>>` with a value-position operand on
                        // the right is a right shift — unless the pair
                        // closes a nested generic argument list
                        // (`Vec<Vec<u64>>`, `collect::<Vec<_>>()`).
                        // Those are told apart by scanning back for the
                        // `<` the pair would match: a matched opener
                        // preceded by a type path means generics. Not
                        // profiled — see module docs.
                        let shifted = body
                            .get(k + 1)
                            .is_some_and(|(_, n)| file.tok_text(n) == ">" && n.start == tok.end);
                        let operand = matches!(
                            (text_of(k + 2), kind_of(k + 2)),
                            (_, Some(TokenKind::Ident | TokenKind::Num))
                                | (Some("(" | "&" | "-" | "*" | "!" | "="), _)
                        ) && text_of(k + 2) != Some("as");
                        if shifted
                            && operand
                            && text_of(k - 1) != Some(">")
                            && !closes_generics(file, &body, k)
                        {
                            out.push(Site {
                                tok: idx,
                                line: tok.line,
                                kind: SiteKind::Shr,
                            });
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether the adjacent `>>` pair whose first `>` sits at body index `k`
/// closes a nested generic argument list rather than shifting a value:
/// scan backwards for the `<` the pair would match (the pair closes two
/// angle levels), balancing parens/brackets, and check what precedes it.
/// A matched opener after an identifier or `::` is a type path; hitting
/// expression punctuation first means the `>>` operates on a value.
fn closes_generics(file: &SourceFile, body: &[(usize, &Token)], k: usize) -> bool {
    let mut angle = 2i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for j in (0..k).rev().take(64) {
        let t = body[j].1;
        if t.kind != TokenKind::Punct {
            continue;
        }
        let s = file.tok_text(t);
        match s {
            ")" => paren += 1,
            "]" => bracket += 1,
            "(" if paren > 0 => paren -= 1,
            "[" if bracket > 0 => bracket -= 1,
            _ if paren > 0 || bracket > 0 => {}
            // `->` (fn-type arrows inside generics) closes nothing.
            ">" if !(j > 0 && file.tok_text(body[j - 1].1) == "-") => angle += 1,
            "<" => {
                angle -= 1;
                if angle == 0 {
                    return j > 0
                        && (body[j - 1].1.kind == TokenKind::Ident
                            || file.tok_text(body[j - 1].1) == ":");
                }
            }
            // Arrow halves are type syntax; a bare minus is a value.
            "-" if body.get(j + 1).is_none_or(|(_, n)| file.tok_text(n) != ">") => return false,
            "(" | "[" | "{" | "}" | ";" | "=" | "+" | "*" | "/" | "%" | "!" | "?" | "#" | "." => {
                return false
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn sites_of(body: &str) -> Vec<SiteKind> {
        let src = format!("fn f(x: u64, v: Vec<u64>) -> Vec<u64> {{\n{body}\n}}\n");
        let file = SourceFile::new("crates/core/src/demo.rs", src);
        let parsed = parse(&file, 0);
        enumerate(&file, &parsed.fns[0])
            .iter()
            .map(|s| s.kind)
            .collect()
    }

    #[test]
    fn panics_indexing_and_arith_are_counted() {
        assert_eq!(
            sites_of("let a = v[0] + x; y.unwrap(); assert!(x > 0);"),
            vec![
                SiteKind::Index,
                SiteKind::Arith('+'),
                SiteKind::Panic,
                SiteKind::Panic
            ]
        );
    }

    #[test]
    fn shifts_are_classified_by_direction() {
        assert_eq!(
            sites_of("let a = x << 3; let b = x >> 2;"),
            vec![SiteKind::Shl, SiteKind::Shr]
        );
        assert!(!SiteKind::Shr.profiled());
        assert!(SiteKind::Shl.profiled());
    }

    #[test]
    fn generic_closers_are_not_right_shifts() {
        assert_eq!(sites_of("let a: Vec<Vec<u64>> = make();"), vec![]);
        assert_eq!(sites_of("let a = frob::<Vec<u64>>();"), vec![]);
        assert_eq!(sites_of("let a: Vec<Vec<(u32, u32)>> = make();"), vec![]);
        assert_eq!(
            sites_of("let f: Vec<Box<dyn Fn() -> u64>> = make();"),
            vec![]
        );
    }

    #[test]
    fn parenthesized_shift_operand_still_fires() {
        assert_eq!(sites_of("let y = (x & m) >> s;"), vec![SiteKind::Shr]);
    }

    #[test]
    fn arrow_and_spaced_angles_do_not_fire() {
        assert_eq!(sites_of("let f = |q: u64| -> u64 { q };"), vec![]);
        assert_eq!(sites_of("let c = x < 3 && 4 < x;"), vec![]);
    }

    #[test]
    fn compound_assignment_counts_once() {
        assert_eq!(sites_of("x += 1;"), vec![SiteKind::Arith('+')]);
        assert_eq!(sites_of("x <<= 1;"), vec![SiteKind::Shl]);
    }
}
