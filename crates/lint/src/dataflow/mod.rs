//! The dataflow layer: an intraprocedural abstract interpreter over the
//! token-level IR, proving panic-capable sites safe.
//!
//! * [`domain`] — the joint value domain: intervals over `[0, u64::MAX]`
//!   and known-bits masks, each reduced against the other after every
//!   transfer function.
//! * [`sites`] — the canonical enumeration of panic-capable sites,
//!   shared between the `p{}i{}a{}` profile and the interpreter so
//!   per-site proofs subtract cleanly from per-function findings.
//! * [`facts`] — workspace facts: struct field types, constructor
//!   `assert!` invariants (revoked if the type is ever built outside
//!   its `new`), literal consts/statics, and the method map used for
//!   bounded accessor inlining.
//! * [`interp`] — the interpreter itself: an approximate CFG walk over
//!   token structure with branch refinement from guards, widening at
//!   loop heads (assigned locals go to ⊤ before the single body pass),
//!   and a per-site proof map with human-readable evidence strings.
//!
//! Soundness posture: the interpreter only ever *discharges* findings
//! the token-level lints already raised, so every approximation must
//! err toward "unproven". Values it cannot see are ⊤; signed values
//! are modeled only while provably non-negative; arithmetic proofs
//! bound results by the narrowest known operand width (unknown widths
//! assume `i8`); branch refinements apply only when the guard
//! expression itself provably cannot wrap. See DESIGN.md §12.

pub mod domain;
pub mod facts;
pub mod interp;
pub mod sites;

pub use domain::AbsVal;
pub use facts::WorkspaceFacts;
pub use interp::{analyze_fn, FnAnalysis, SiteProof};
pub use sites::{Site, SiteKind};
