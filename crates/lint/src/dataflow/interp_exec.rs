// Included by interp.rs: the statement walker (this impl block) and the
// expression evaluator (second impl block below). Split out only to
// keep file sizes reviewable; everything here is `Interp` internals.

/// A branch refinement extracted from a guard conjunct.
#[derive(Debug, Clone)]
enum Refine {
    /// `x <= bound` (inclusive), with evidence.
    Below(u128, String),
    /// `x >= bound` (inclusive), with evidence.
    Above(u128, String),
}

/// A batch of named refinements (binding name, bound).
type Refs = Vec<(String, Refine)>;

type Slice<'t> = [(usize, &'t Token)];

/// Applies refinements to an environment (only to provably-nonnegative
/// bindings — a negative value would satisfy `x < k` vacuously in our
/// unsigned model).
fn apply_refs(env: &mut Env, refs: &[(String, Refine)]) {
    for (name, r) in refs {
        let Some(v) = env.get_mut(name) else { continue };
        if !v.nonneg {
            continue;
        }
        match r {
            Refine::Below(b, why) => {
                v.v = v.v.refine_below(*b);
                v.note = Some(why.clone());
            }
            Refine::Above(b, why) => {
                v.v = v.v.refine_above(*b);
                v.note = Some(why.clone());
            }
        }
    }
}

/// The least upper bound of two values (used at `if`/`match` joins).
fn join_value(a: &Value, b: &Value) -> Value {
    let mut out = Value::top();
    out.float = a.float && b.float;
    out.signed = a.signed || b.signed;
    out.width = match (a.width, b.width) {
        (Some(x), Some(y)) if x == y => Some(x),
        _ => None,
    };
    out.poly = a.poly && b.poly;
    if a.nonneg && b.nonneg {
        out.nonneg = true;
        out.v = a.v.join(&b.v);
    }
    if a.arr_len == b.arr_len {
        out.arr_len = a.arr_len;
    }
    if a.tyname == b.tyname {
        out.tyname = a.tyname.clone();
        out.is_vec = a.is_vec && b.is_vec;
        out.elem = a.elem.clone();
    }
    out
}

/// Joins `other` into `env` over `env`'s key set.
fn join_env(env: &mut Env, other: &Env) {
    let keys: Vec<String> = env.keys().cloned().collect();
    for k in keys {
        match other.get(&k) {
            Some(o) => {
                let j = join_value(&env[&k], o);
                env.insert(k, j);
            }
            None => {
                env.insert(k, Value::top());
            }
        }
    }
}

impl<'a> Interp<'a> {
    /// Token text at body index `k` (`""` past the end).
    fn t(&self, toks: &Slice<'a>, k: usize) -> &'a str {
        toks.get(k).map_or("", |(_, t)| self.src().tok_text(t))
    }

    fn kind(&self, toks: &Slice<'a>, k: usize) -> Option<TokenKind> {
        toks.get(k).map(|(_, t)| t.kind)
    }

    /// Index of the bracket matching the opener at `k` (or the end).
    fn close_of(&self, toks: &Slice<'a>, k: usize) -> usize {
        let (open, close) = match self.t(toks, k) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return k,
        };
        let mut d = 0i32;
        for j in k..toks.len() {
            let s = self.t(toks, j);
            if s == open {
                d += 1;
            } else if s == close {
                d -= 1;
                if d == 0 {
                    return j;
                }
            }
        }
        toks.len()
    }

    /// First index at or after `k` where `what` appears at zero
    /// paren/bracket/brace depth, stopping at `stop` tokens (also at
    /// depth 0). Returns `None` if not found.
    fn find_at_depth0(
        &self,
        toks: &Slice<'a>,
        k: usize,
        what: &str,
        stop: &[&str],
    ) -> Option<usize> {
        let mut d = 0i32;
        let mut j = k;
        while j < toks.len() {
            let s = self.t(toks, j);
            if d == 0 {
                if s == what {
                    return Some(j);
                }
                if stop.contains(&s) {
                    return None;
                }
            }
            match s {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => {
                    if d == 0 {
                        return None;
                    }
                    d -= 1;
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Executes a statement block; returns the tail expression value.
    fn exec_block(&mut self, toks: &Slice<'a>, env: &mut Env) -> Value {
        let mut shadowed: Vec<(String, Option<Value>)> = Vec::new();
        let mut tail = Value::top();
        let mut k = 0;
        while k < toks.len() {
            if !self.burn() {
                break;
            }
            let start = k;
            tail = Value::top();
            match self.t(toks, k) {
                ";" => k += 1,
                "let" => k = self.exec_let(toks, k, env, &mut shadowed),
                "if" => {
                    let (v, nk) = self.parse_if(toks, k, env);
                    tail = v;
                    k = nk;
                }
                "while" => k = self.exec_while(toks, k, env),
                "loop" => k = self.exec_loop(toks, k, env),
                "for" => k = self.exec_for(toks, k, env),
                "match" => {
                    let (v, nk) = self.parse_match(toks, k, env);
                    tail = v;
                    k = nk;
                }
                "fn" => k = self.exec_nested_fn(toks, k),
                "unsafe" if self.t(toks, k + 1) == "{" => k += 1,
                "{" => {
                    let close = self.close_of(toks, k);
                    tail = self.exec_block(&toks[k + 1..close], env);
                    k = close + 1;
                }
                "return" | "break" | "continue" => {
                    k += 1;
                    if !matches!(self.t(toks, k), ";" | "}" | "") {
                        let (_, nk) = self.eval_expr(toks, k, 0, env, false);
                        k = nk.max(k + 1);
                    }
                }
                "assert" if self.t(toks, k + 1) == "!" => {
                    k = self.exec_assert(toks, k, env);
                }
                _ => {
                    k = self.exec_expr_stmt(toks, k, env, &mut tail);
                }
            }
            if k <= start {
                k = start + 1; // guarantee progress on malformed input
            }
        }
        for (name, old) in shadowed.into_iter().rev() {
            match old {
                Some(v) => env.insert(name, v),
                None => env.remove(&name),
            };
        }
        tail
    }

    /// An expression statement, possibly an assignment (`x = e`,
    /// `x += e`, `v[i] = e`, `self.f = e`).
    fn exec_expr_stmt(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env, tail: &mut Value) -> usize {
        // Find a top-level assignment `=` before the statement ends.
        let assign = self.find_assign(toks, k);
        let Some((eq, op_start)) = assign else {
            let (v, nk) = self.eval_expr(toks, k, 0, env, false);
            *tail = v;
            return nk;
        };
        // Evaluate the lvalue (records its index/field sites).
        let (lhs, _) = self.eval_expr(&toks[..op_start], k, 0, env, false);
        let (rhs, nk) = self.eval_expr(toks, eq + 1, 0, env, false);
        let simple = toks.get(k).filter(|(_, t)| t.kind == TokenKind::Ident);
        let target = match simple {
            Some((_, t)) if op_start == k + 1 => Some(self.src().tok_text(t).to_string()),
            _ => None,
        };
        let result = if op_start < eq {
            // Compound assignment: the operator token is a site.
            let op: String = (op_start..eq).map(|j| self.t(toks, j)).collect();
            self.binop(&op, Some(toks[op_start].0), &lhs, &rhs)
        } else {
            rhs
        };
        if let Some(name) = target {
            if env.contains_key(&name) {
                env.insert(name, result);
            }
        } else if let Some(name) = self.field_store_root(toks, k, op_start) {
            // Writing through `x.f = …` / `x[i] = …`: drop what we knew
            // about the root (its aggregate contents changed).
            if let Some(v) = env.get_mut(&name) {
                let keep = v.tyname.clone();
                *v = Value::top();
                v.tyname = keep;
            }
        }
        nk
    }

    /// If the statement starting at `k` is an assignment, returns
    /// `(index of '=', index where the compound operator starts)`;
    /// for plain `=` both point at the `=`.
    fn find_assign(&self, toks: &Slice<'a>, k: usize) -> Option<(usize, usize)> {
        let mut d = 0i32;
        let mut j = k;
        while j < toks.len() {
            let s = self.t(toks, j);
            match s {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => {
                    if d == 0 {
                        return None;
                    }
                    d -= 1;
                }
                ";" if d == 0 => return None,
                "=" if d == 0 => {
                    // Exclude `==`, `<=`, `>=`, `!=`, `=>`.
                    if self.t(toks, j + 1) == "=" || self.t(toks, j + 1) == ">" {
                        j += 2;
                        continue;
                    }
                    if matches!(self.t(toks, j.wrapping_sub(1)), "=" | "<" | ">" | "!") {
                        // part of a two-token comparison — but `<<=` and
                        // `>>=` end in `<=`/`>=`-lookalikes; those have
                        // the shift pair before. Handle below.
                        let p1 = self.t(toks, j.wrapping_sub(1));
                        let p2 = self.t(toks, j.wrapping_sub(2));
                        if (p1 == "<" && p2 == "<") || (p1 == ">" && p2 == ">") {
                            return Some((j, j - 2));
                        }
                        j += 1;
                        continue;
                    }
                    // Compound single-char op directly before `=`?
                    let p1 = self.t(toks, j.wrapping_sub(1));
                    if matches!(p1, "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") {
                        return Some((j, j - 1));
                    }
                    return Some((j, j));
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// For `x.f = …` / `x[i] = …`, the root identifier `x`.
    fn field_store_root(&self, toks: &Slice<'a>, k: usize, op_start: usize) -> Option<String> {
        let (_, t) = toks.get(k)?;
        if t.kind != TokenKind::Ident || op_start <= k + 1 {
            return None;
        }
        match self.t(toks, k + 1) {
            "." | "[" => Some(self.src().tok_text(t).to_string()),
            _ => None,
        }
    }

    /// `let [mut] PAT [: Ty] = EXPR ;` (plus let-else). Returns the
    /// index past the statement.
    fn exec_let(
        &mut self,
        toks: &Slice<'a>,
        k: usize,
        env: &mut Env,
        shadowed: &mut Vec<(String, Option<Value>)>,
    ) -> usize {
        let semi = self
            .find_at_depth0(toks, k, ";", &[])
            .unwrap_or(toks.len());
        let eq = match self.find_assign(toks, k + 1) {
            Some((eq, _)) if eq < semi => eq,
            _ => {
                // `let x;` — declared, unknown.
                let mut j = k + 1;
                if self.t(toks, j) == "mut" {
                    j += 1;
                }
                if self.kind(toks, j) == Some(TokenKind::Ident) {
                    let name = self.t(toks, j).to_string();
                    shadowed.push((name.clone(), env.insert(name, Value::top())));
                }
                return semi + 1;
            }
        };
        // Pattern and optional annotation.
        let mut p = k + 1;
        if self.t(toks, p) == "mut" {
            p += 1;
        }
        let colon = self.find_at_depth0(toks, p, ":", &["="]).filter(|&c| c < eq);
        let pat_end = colon.unwrap_or(eq);
        let ann_ty = colon.map(|c| {
            let tt: Vec<&Token> = toks[c + 1..eq].iter().map(|&(_, t)| t).collect();
            crate::dataflow::facts::ty_of_tokens(self.src(), &tt, &self.facts.consts)
        });
        // Evaluate the initializer (let-else: up to `else`). A
        // depth-0 `else` preceded by `}` belongs to an `if`/`else if`
        // chain inside the initializer, not to `let ... else` — the
        // grammar forbids let-else after a `}`-terminated expression.
        let mut else_kw = None;
        let mut scan = eq + 1;
        while let Some(e) = self.find_at_depth0(toks, scan, "else", &[";"]) {
            if e > eq + 1 && self.t(toks, e - 1) == "}" {
                scan = e + 1;
                continue;
            }
            else_kw = Some(e);
            break;
        }
        let (mut value, _) = self.eval_expr(&toks[..else_kw.unwrap_or(semi)], eq + 1, 0, env, false);
        if let Some(close_else) = else_kw {
            // Walk the diverging else block for its sites.
            if self.t(toks, close_else + 1) == "{" {
                let bclose = self.close_of(toks, close_else + 1);
                let mut dead = env.clone();
                self.exec_block(&toks[close_else + 2..bclose], &mut dead);
            }
        }
        if let Some(ty) = ann_ty {
            if value.poly || value.width.is_none() {
                value.width = ty.width.or(value.width);
                value.signed = value.signed || ty.signed;
                value.poly = false;
            }
            if !value.nonneg {
                // The annotation's type may bound an otherwise-unknown
                // initializer (e.g. an un-modeled call returning `u8`).
                let typed = Value::of_ty(&ty);
                if typed.nonneg {
                    value.nonneg = true;
                    value.v = typed.v;
                }
                value.arr_len = value.arr_len.or(typed.arr_len);
                value.elem = value.elem.or(typed.elem);
                value.is_vec = value.is_vec || typed.is_vec;
                value.tyname = value.tyname.or(typed.tyname);
                value.float = value.float || typed.float;
            }
        }
        // Bind: a single ident gets the value; patterns kill each ident.
        let pat: Vec<usize> = (p..pat_end).collect();
        let single = pat.len() == 1 && self.kind(toks, p) == Some(TokenKind::Ident);
        if single {
            let name = self.t(toks, p).to_string();
            shadowed.push((name.clone(), env.insert(name, value)));
        } else {
            for j in pat {
                if self.kind(toks, j) == Some(TokenKind::Ident)
                    && !self.t(toks, j).chars().next().is_some_and(char::is_uppercase)
                    && self.t(toks, j + 1) != ":"
                {
                    let name = self.t(toks, j).to_string();
                    shadowed.push((name.clone(), env.insert(name, Value::top())));
                }
            }
        }
        semi + 1
    }

    /// `if`/`if let`, as statement or expression. Returns the join of
    /// the branch values and advances past the final brace.
    fn parse_if(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> (Value, usize) {
        let mut j = k + 1;
        let mut killed: Vec<String> = Vec::new();
        let (pos_refs, neg_refs);
        if self.t(toks, j) == "let" {
            // `if let PAT = EXPR` — pattern idents are killed in the
            // then-branch; no numeric refinements.
            let eq = self
                .find_assign(toks, j + 1)
                .map_or(j + 1, |(eq, _)| eq);
            for p in j + 1..eq {
                if self.kind(toks, p) == Some(TokenKind::Ident)
                    && !self.t(toks, p).chars().next().is_some_and(char::is_uppercase)
                {
                    killed.push(self.t(toks, p).to_string());
                }
            }
            let brace = self
                .find_at_depth0(toks, eq + 1, "{", &[";"])
                .unwrap_or(toks.len());
            self.eval_expr(&toks[..brace], eq + 1, 0, env, true);
            pos_refs = Vec::new();
            neg_refs = Vec::new();
            j = brace;
        } else {
            let brace = self
                .find_at_depth0(toks, j, "{", &[";"])
                .unwrap_or(toks.len());
            self.eval_expr(&toks[..brace], j, 0, env, true);
            let (p, n) = self.refinements(&toks[j..brace], env);
            pos_refs = p;
            neg_refs = n;
            j = brace;
        }
        if self.t(toks, j) != "{" {
            return (Value::top(), j + 1);
        }
        let close = self.close_of(toks, j);
        let mut env_then = env.clone();
        apply_refs(&mut env_then, &pos_refs);
        for name in &killed {
            env_then.insert(name.clone(), Value::top());
        }
        let v_then = self.exec_block(&toks[j + 1..close], &mut env_then);
        let mut after = close + 1;
        let mut env_else = env.clone();
        apply_refs(&mut env_else, &neg_refs);
        let mut v_else = Value::top();
        let mut has_else = false;
        if self.t(toks, after) == "else" {
            has_else = true;
            if self.t(toks, after + 1) == "if" {
                let (v, nk) = self.parse_if(toks, after + 1, &mut env_else);
                v_else = v;
                after = nk;
            } else if self.t(toks, after + 1) == "{" {
                let eclose = self.close_of(toks, after + 1);
                v_else = self.exec_block(&toks[after + 2..eclose], &mut env_else);
                after = eclose + 1;
            } else {
                after += 1;
            }
        }
        join_env(&mut env_then, &env_else);
        *env = env_then;
        let value = if has_else {
            join_value(&v_then, &v_else)
        } else {
            Value::top()
        };
        (value, after)
    }

    /// `match EXPR { arms }` as statement or expression.
    fn parse_match(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> (Value, usize) {
        let brace = self
            .find_at_depth0(toks, k + 1, "{", &[";"])
            .unwrap_or(toks.len());
        self.eval_expr(&toks[..brace], k + 1, 0, env, true);
        if self.t(toks, brace) != "{" {
            return (Value::top(), brace + 1);
        }
        let close = self.close_of(toks, brace);
        let mut j = brace + 1;
        let mut joined: Option<(Env, Value)> = None;
        while j < close {
            if !self.burn() {
                break;
            }
            // Pattern runs to the `=>` at depth 0.
            let mut d = 0i32;
            let mut arrow = close;
            let mut p = j;
            while p < close {
                match self.t(toks, p) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "=" if d == 0 && self.t(toks, p + 1) == ">" => {
                        arrow = p;
                        break;
                    }
                    _ => {}
                }
                p += 1;
            }
            if arrow >= close {
                break;
            }
            let mut env_arm = env.clone();
            // Kill pattern bindings; evaluate a guard if present.
            let guard = self.find_at_depth0(&toks[..arrow], j, "if", &[]);
            let pat_end = guard.unwrap_or(arrow);
            for q in j..pat_end {
                if self.kind(toks, q) == Some(TokenKind::Ident)
                    && !self.t(toks, q).chars().next().is_some_and(char::is_uppercase)
                    && self.t(toks, q + 1) != ":"
                    && self.t(toks, q.wrapping_sub(1)) != ":"
                {
                    env_arm.insert(self.t(toks, q).to_string(), Value::top());
                }
            }
            if let Some(g) = guard {
                self.eval_expr(&toks[..arrow], g + 1, 0, &mut env_arm, true);
                let (pos, _) = self.refinements(&toks[g + 1..arrow], &env_arm);
                apply_refs(&mut env_arm, &pos);
            }
            // Arm body: block or expression up to the depth-0 comma.
            let body_start = arrow + 2;
            let v;
            if self.t(toks, body_start) == "{" {
                let bclose = self.close_of(toks, body_start);
                v = self.exec_block(&toks[body_start + 1..bclose], &mut env_arm);
                j = bclose + 1;
                if self.t(toks, j) == "," {
                    j += 1;
                }
            } else {
                let end = self
                    .find_at_depth0(toks, body_start, ",", &[])
                    .unwrap_or(close)
                    .min(close);
                let (av, _) = self.eval_expr(&toks[..end], body_start, 0, &mut env_arm, false);
                v = av;
                j = end + 1;
            }
            joined = Some(match joined {
                None => (env_arm, v),
                Some((mut je, jv)) => {
                    join_env(&mut je, &env_arm);
                    (je, join_value(&jv, &v))
                }
            });
        }
        let value = match joined {
            Some((je, jv)) => {
                *env = je;
                jv
            }
            None => Value::top(),
        };
        (value, close + 1)
    }

    /// `while COND { … }`: widen assigned locals, refine from the
    /// condition, single body pass.
    fn exec_while(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> usize {
        let brace = self
            .find_at_depth0(toks, k + 1, "{", &[";"])
            .unwrap_or(toks.len());
        if self.t(toks, brace) != "{" {
            return brace + 1;
        }
        let close = self.close_of(toks, brace);
        self.widen_assigned(&toks[brace + 1..close], env);
        let is_let = self.t(toks, k + 1) == "let";
        let mut env_body = env.clone();
        if is_let {
            for p in k + 2..brace {
                if self.kind(toks, p) == Some(TokenKind::Ident)
                    && !self.t(toks, p).chars().next().is_some_and(char::is_uppercase)
                {
                    env_body.insert(self.t(toks, p).to_string(), Value::top());
                }
            }
            if let Some((eq, _)) = self.find_assign(toks, k + 2).filter(|&(eq, _)| eq < brace) {
                self.eval_expr(&toks[..brace], eq + 1, 0, env, true);
            }
        } else {
            self.eval_expr(&toks[..brace], k + 1, 0, env, true);
            let (pos, _) = self.refinements(&toks[k + 1..brace], env);
            apply_refs(&mut env_body, &pos);
        }
        self.exec_block(&toks[brace + 1..close], &mut env_body);
        close + 1
    }

    /// `loop { … }`: widen, single pass.
    fn exec_loop(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> usize {
        if self.t(toks, k + 1) != "{" {
            return k + 1;
        }
        let close = self.close_of(toks, k + 1);
        self.widen_assigned(&toks[k + 2..close], env);
        let mut env_body = env.clone();
        self.exec_block(&toks[k + 2..close], &mut env_body);
        close + 1
    }

    /// `for PAT in ITER { … }`: range/array binders, widening, single
    /// body pass.
    fn exec_for(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> usize {
        let Some(in_kw) = self.find_at_depth0(toks, k + 1, "in", &["{", ";"]) else {
            return k + 1;
        };
        let brace = self
            .find_at_depth0(toks, in_kw + 1, "{", &[";"])
            .unwrap_or(toks.len());
        if self.t(toks, brace) != "{" {
            return brace.min(toks.len());
        }
        let close = self.close_of(toks, brace);
        let (iter, _) = self.eval_expr(&toks[..brace], in_kw + 1, 0, env, true);
        self.widen_assigned(&toks[brace + 1..close], env);
        let mut env_body = env.clone();
        // Pattern idents default to ⊤ …
        let mut pat_idents: Vec<String> = Vec::new();
        for p in k + 1..in_kw {
            if self.kind(toks, p) == Some(TokenKind::Ident)
                && !self.t(toks, p).chars().next().is_some_and(char::is_uppercase)
            {
                pat_idents.push(self.t(toks, p).to_string());
            }
        }
        for name in &pat_idents {
            env_body.insert(name.clone(), Value::top());
        }
        // … then pick up precise binders where the iterator shape allows.
        if let Some((lo, hi, inclusive)) = iter.range_of.as_ref().map(|(a, b, i)| {
            (a.clone(), b.clone(), *i)
        }) {
            if pat_idents.len() == 1 && lo.nonneg && hi.nonneg {
                let top = if inclusive {
                    hi.v.hi()
                } else {
                    hi.v.hi().saturating_sub(1)
                };
                let mut binder = Value::top();
                binder.nonneg = true;
                binder.v = AbsVal::range(lo.v.lo() as u64, top.max(lo.v.lo()).min(VALUE_MAX) as u64);
                binder.width = lo.width.or(hi.width);
                env_body.insert(pat_idents[0].clone(), binder);
                // Loop entry implies the range is nonempty: an
                // exclusive upper bound that is a plain ident is > lo.
                if !inclusive {
                    let last = self.t(toks, brace.wrapping_sub(1));
                    if self.kind(toks, brace.wrapping_sub(1)) == Some(TokenKind::Ident)
                        && env_body.get(last).is_some_and(|v| v.nonneg)
                        && lo.v.lo() < VALUE_MAX
                    {
                        if let Some(v) = env_body.get_mut(last) {
                            v.v = v.v.refine_above(lo.v.lo() + 1);
                        }
                    }
                }
            }
        } else if let Some(len) = iter.arr_len {
            if iter.enumerated && pat_idents.len() == 2 {
                let mut idx = Value::top();
                idx.nonneg = true;
                idx.width = Some(64);
                idx.v = AbsVal::range(0, len.max(1).saturating_sub(1).min(VALUE_MAX) as u64);
                env_body.insert(pat_idents[0].clone(), idx);
                if let Some(elem) = &iter.elem {
                    env_body.insert(pat_idents[1].clone(), Value::of_ty(elem));
                }
            } else if pat_idents.len() == 1 {
                if let Some(elem) = &iter.elem {
                    env_body.insert(pat_idents[0].clone(), Value::of_ty(elem));
                }
            }
        } else if let Some(elem) = &iter.elem {
            if pat_idents.len() == 1 {
                env_body.insert(pat_idents[0].clone(), Value::of_ty(elem));
            } else if iter.enumerated && pat_idents.len() == 2 {
                env_body.insert(pat_idents[1].clone(), Value::of_ty(elem));
            }
        }
        self.exec_block(&toks[brace + 1..close], &mut env_body);
        close + 1
    }

    /// Nested `fn` items: re-walked with a fresh typed environment (they
    /// are also parsed as standalone items, but their sites sit inside
    /// this body's profile too, so they must be judged here as well).
    fn exec_nested_fn(&mut self, toks: &Slice<'a>, k: usize) -> usize {
        let brace = self
            .find_at_depth0(toks, k + 1, "{", &[";"])
            .unwrap_or(toks.len());
        if self.t(toks, brace) != "{" {
            return brace.min(toks.len()) + 1;
        }
        let close = self.close_of(toks, brace);
        // Find the matching FnItem for a typed param env.
        let full_idx = toks[k].0;
        let owner = self.parsed[self.file]
            .fns
            .iter()
            .position(|f| f.body.start > full_idx && f.body.end <= toks[close.min(toks.len() - 1)].0 + 1);
        let mut env = match owner {
            Some(fi) => self.param_env(self.file, fi),
            None => Env::new(),
        };
        self.exec_block(&toks[brace + 1..close], &mut env);
        close + 1
    }

    /// `assert!(COND, …)`: evaluate, then apply COND's refinements to
    /// the fall-through state (the program continues only if it held).
    fn exec_assert(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> usize {
        if self.t(toks, k + 2) != "(" {
            return k + 2;
        }
        let close = self.close_of(toks, k + 2);
        let cond_end = self
            .find_at_depth0(toks, k + 3, ",", &[])
            .unwrap_or(close)
            .min(close);
        self.eval_expr(&toks[..cond_end], k + 3, 0, env, false);
        // Message args still carry sites.
        if cond_end < close {
            let mut j = cond_end + 1;
            while j < close {
                let end = self
                    .find_at_depth0(toks, j, ",", &[])
                    .unwrap_or(close)
                    .min(close);
                self.eval_expr(&toks[..end], j, 0, env, false);
                j = end + 1;
            }
        }
        let (pos, _) = self.refinements(&toks[k + 3..cond_end], env);
        apply_refs(env, &pos);
        close + 1
    }

    /// Widens (kills) every local assigned anywhere in a loop body,
    /// including `&mut` borrows handed to callees.
    fn widen_assigned(&mut self, toks: &Slice<'a>, env: &mut Env) {
        let mut j = 0;
        while j < toks.len() {
            if self.kind(toks, j) == Some(TokenKind::Ident) {
                let name = self.t(toks, j);
                if env.contains_key(name) {
                    let next = self.t(toks, j + 1);
                    let assigned = match next {
                        "=" if self.t(toks, j + 2) != "=" => {
                            !matches!(self.t(toks, j.wrapping_sub(1)), "<" | ">" | "!" | "=")
                        }
                        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => {
                            self.t(toks, j + 2) == "="
                        }
                        "<" => self.t(toks, j + 2) == "<" && self.t(toks, j + 3) == "=",
                        ">" => self.t(toks, j + 2) == ">" && self.t(toks, j + 3) == "=",
                        _ => false,
                    };
                    let borrowed = self.t(toks, j.wrapping_sub(1)) == "mut"
                        && self.t(toks, j.wrapping_sub(2)) == "&";
                    if assigned || borrowed {
                        let keep = env[name].tyname.clone();
                        let widened = {
                            let mut w = Value::top();
                            w.tyname = keep;
                            // Keep the declared width: reassignments
                            // cannot change a local's type.
                            w.width = env[name].width;
                            w.signed = env[name].signed;
                            w.float = env[name].float;
                            if !w.signed && !w.float {
                                if let Some(width) = w.width {
                                    w.nonneg = true;
                                    w.v = AbsVal::range(0, ty_max(width, false).min(VALUE_MAX) as u64);
                                }
                            }
                            w
                        };
                        env.insert(name.to_string(), widened);
                    }
                }
            }
            j += 1;
        }
    }

    /// Extracts `(then, else)` refinements from a guard expression.
    fn refinements(
        &mut self,
        cond: &Slice<'a>,
        env: &Env,
    ) -> (Refs, Refs) {
        // Split on depth-0 `&&` / `||` (mixed chains give up).
        let mut d = 0i32;
        let mut ands = Vec::new();
        let mut ors = Vec::new();
        let mut start = 0;
        let mut j = 0;
        while j < cond.len() {
            match self.t(cond, j) {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                "&" if d == 0 && self.t(cond, j + 1) == "&" => {
                    ands.push(start..j);
                    start = j + 2;
                    j += 1;
                }
                "|" if d == 0 && self.t(cond, j + 1) == "|" => {
                    ors.push(start..j);
                    start = j + 2;
                    j += 1;
                }
                _ => {}
            }
            j += 1;
        }
        let tailr = start..cond.len();
        let (conjuncts, disjuncts): (Vec<_>, Vec<_>) = if !ands.is_empty() && ors.is_empty() {
            ands.push(tailr);
            (ands, Vec::new())
        } else if ands.is_empty() && !ors.is_empty() {
            ors.push(tailr);
            (Vec::new(), ors)
        } else if ands.is_empty() && ors.is_empty() {
            (vec![tailr], Vec::new())
        } else {
            (Vec::new(), Vec::new())
        };

        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let single_conj = conjuncts.len() == 1;
        for r in &conjuncts {
            let (p, n) = self.conjunct_refs(&cond[r.clone()], env);
            pos.extend(p);
            if single_conj {
                neg.extend(n);
            }
        }
        let single_disj = disjuncts.len() == 1;
        for r in &disjuncts {
            let (p, n) = self.conjunct_refs(&cond[r.clone()], env);
            neg.extend(n);
            if single_disj {
                pos.extend(p);
            }
        }
        (pos, neg)
    }

    /// Refinements from one comparison conjunct.
    fn conjunct_refs(
        &mut self,
        c: &Slice<'a>,
        env: &Env,
    ) -> (Refs, Refs) {
        let mut none = (Vec::new(), Vec::new());
        // Locate the comparison operator at depth 0.
        let mut d = 0i32;
        let mut cmp = None;
        for j in 0..c.len() {
            match self.t(c, j) {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                "<" | ">" if d == 0 => {
                    // Exclude shifts.
                    if self.t(c, j + 1) == self.t(c, j) {
                        return none;
                    }
                    let two = self.t(c, j + 1) == "=";
                    cmp = Some((j, format!("{}{}", self.t(c, j), if two { "=" } else { "" })));
                    break;
                }
                "=" | "!" if d == 0 && self.t(c, j + 1) == "=" => {
                    cmp = Some((j, format!("{}=", self.t(c, j))));
                    break;
                }
                _ => {}
            }
        }
        let Some((at, op)) = cmp else { return none };
        let rhs_start = at + if op.len() == 2 { 2 } else { 1 };
        let why: String = c
            .iter()
            .map(|(_, t)| self.src().tok_text(t))
            .collect::<Vec<_>>()
            .join(" ");
        let why = format!("guarded by `{why}`");

        // Left shapes: `x` or `x + LIT` (wrap-guarded).
        let lhs = &c[..at];
        let (name, offset) = match lhs.len() {
            1 if self.kind(c, 0) == Some(TokenKind::Ident) => (self.t(c, 0).to_string(), 0u128),
            3 if self.kind(c, 0) == Some(TokenKind::Ident)
                && self.t(c, 1) == "+"
                && self.kind(c, 2) == Some(TokenKind::Num) =>
            {
                match parse_num(self.t(c, 2)) {
                    Some((v, _)) => (self.t(c, 0).to_string(), v),
                    None => return none,
                }
            }
            _ => {
                // Mirrored `LIT cmp x`.
                if c.len() == rhs_start + 1
                    && self.kind(c, rhs_start) == Some(TokenKind::Ident)
                    && at == 1
                    && self.kind(c, 0) == Some(TokenKind::Num)
                {
                    if let Some((v, _)) = parse_num(self.t(c, 0)) {
                        let x = self.t(c, rhs_start).to_string();
                        if !env.get(&x).is_some_and(|v| v.nonneg) {
                            return none;
                        }
                        let mk = |r| vec![(x.clone(), r)];
                        // `K op x` mirrors to `x op' K`.
                        return match op.as_str() {
                            "<" => (
                                v.checked_add(1).map_or(Vec::new(), |b| mk(Refine::Above(b, why.clone()))),
                                mk(Refine::Below(v, why)),
                            ),
                            "<=" => (
                                mk(Refine::Above(v, why.clone())),
                                v.checked_sub(1).map_or(Vec::new(), |b| mk(Refine::Below(b, why))),
                            ),
                            ">" => (
                                v.checked_sub(1).map_or(Vec::new(), |b| mk(Refine::Below(b, why.clone()))),
                                mk(Refine::Above(v, why)),
                            ),
                            ">=" => (
                                mk(Refine::Below(v, why.clone())),
                                v.checked_add(1).map_or(Vec::new(), |b| mk(Refine::Above(b, why))),
                            ),
                            "==" => (
                                vec![
                                    (x.clone(), Refine::Below(v, why.clone())),
                                    (x, Refine::Above(v, why)),
                                ],
                                Vec::new(),
                            ),
                            _ => none,
                        };
                    }
                }
                return none;
            }
        };
        let Some(xv) = env.get(&name) else { return none };
        if !xv.nonneg {
            return none;
        }
        // Wrap guard for `x + LIT`: the guard expression itself must not
        // overflow, or release builds would wrap before comparing.
        if offset > 0 && xv.v.hi().checked_add(offset).is_none_or(|s| s > VALUE_MAX) {
            return none;
        }
        // Evaluate the right side against a scratch env (sites in it
        // were already recorded by the main evaluation pass).
        let mut scratch = env.clone();
        let record = self.record;
        self.record = false;
        let (rv, _) = self.eval_expr(&c[..c.len()], rhs_start, 0, &mut scratch, true);
        self.record = record;
        let r_hi = rv.v.hi();
        let r_lo = rv.v.lo();
        let mk = |r| vec![(name.clone(), r)];
        let below = |bound: u128| bound.checked_sub(offset);
        let above = |bound: u128| bound.checked_sub(offset);
        let (p, n) = match op.as_str() {
            // x + c < R  →  x <= R.hi - 1 - c; negation: x + c >= R → x >= R.lo - c.
            "<" => (
                r_hi.checked_sub(1)
                    .and_then(below)
                    .map_or(Vec::new(), |b| mk(Refine::Below(b, why.clone()))),
                above(r_lo).map_or(Vec::new(), |b| mk(Refine::Above(b, why.clone()))),
            ),
            "<=" => (
                below(r_hi).map_or(Vec::new(), |b| mk(Refine::Below(b, why.clone()))),
                r_lo.checked_add(1)
                    .and_then(above)
                    .map_or(Vec::new(), |b| mk(Refine::Above(b, why.clone()))),
            ),
            ">" => (
                r_lo.checked_add(1)
                    .and_then(above)
                    .map_or(Vec::new(), |b| mk(Refine::Above(b, why.clone()))),
                below(r_hi).map_or(Vec::new(), |b| mk(Refine::Below(b, why.clone()))),
            ),
            ">=" => (
                above(r_lo).map_or(Vec::new(), |b| mk(Refine::Above(b, why.clone()))),
                r_hi.checked_sub(1)
                    .and_then(below)
                    .map_or(Vec::new(), |b| mk(Refine::Below(b, why.clone()))),
            ),
            "==" if offset == 0 => (
                vec![
                    (name.clone(), Refine::Below(r_hi, why.clone())),
                    (name.clone(), Refine::Above(r_lo, why.clone())),
                ],
                // `x == 0` failing means the nonneg `x` is at least 1.
                if r_hi == 0 {
                    mk(Refine::Above(1, format!("{why} (else branch: nonzero)")))
                } else {
                    Vec::new()
                },
            ),
            "!=" if offset == 0 => (
                if r_hi == 0 {
                    mk(Refine::Above(1, format!("{why} (nonzero)")))
                } else {
                    Vec::new()
                },
                vec![
                    (name.clone(), Refine::Below(r_hi, why.clone())),
                    (name.clone(), Refine::Above(r_lo, why.clone())),
                ],
            ),
            _ => return none,
        };
        none = (p, n);
        none
    }
}

/// Binding powers for infix operators (left, right).
fn infix_bp(op: &str) -> (u8, u8) {
    match op {
        "*" | "/" | "%" => (19, 20),
        "+" | "-" => (17, 18),
        "<<" | ">>" => (15, 16),
        "&" => (13, 14),
        "^" => (11, 12),
        "|" => (9, 10),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (7, 8),
        "&&" => (5, 6),
        "||" => (3, 4),
        ".." | "..=" => (2, 3),
        _ => (0, 0),
    }
}

impl<'a> Interp<'a> {
    /// The Pratt expression evaluator. Evaluates starting at `k`,
    /// returning the value and the index past the expression.
    /// `no_struct` suppresses struct-literal parsing (condition and
    /// iterator position, mirroring Rust's own restriction).
    fn eval_expr(
        &mut self,
        toks: &Slice<'a>,
        k: usize,
        min_bp: u8,
        env: &mut Env,
        no_struct: bool,
    ) -> (Value, usize) {
        if k >= toks.len() || !self.burn() {
            return (Value::top(), toks.len().min(k + 1).max(k));
        }
        let (mut lhs, mut k) = self.primary(toks, k, env, no_struct);
        loop {
            if k >= toks.len() || !self.burn() {
                break;
            }
            // Postfix operators bind tightest.
            match self.t(toks, k) {
                "." if self.t(toks, k + 1) != "." => {
                    k = self.postfix_dot(toks, k, env, &mut lhs);
                    continue;
                }
                "[" => {
                    let close = self.close_of(toks, k);
                    let site_tok = toks[k].0;
                    let (idx, _) = self.eval_expr(&toks[..close], k + 1, 0, env, false);
                    self.prove_index(site_tok, &lhs, &idx);
                    let elem = lhs.elem.clone();
                    lhs = match &elem {
                        Some(e) => Value::of_ty(e),
                        None => Value::top(),
                    };
                    k = close + 1;
                    continue;
                }
                "?" => {
                    lhs = Value::top();
                    k += 1;
                    continue;
                }
                "as" if self.kind(toks, k + 1) == Some(TokenKind::Ident) => {
                    lhs = cast_value(&lhs, self.t(toks, k + 1));
                    k += 2;
                    continue;
                }
                "(" => {
                    // Calling a non-path value (a closure).
                    let (_, nk) = self.eval_call_args(toks, k, env);
                    lhs = Value::top();
                    k = nk;
                    continue;
                }
                _ => {}
            }
            let Some((op, ntok)) = self.peek_op(toks, k) else {
                break;
            };
            let (lbp, rbp) = infix_bp(&op);
            if lbp < min_bp || lbp == 0 {
                break;
            }
            let site_tok = toks[k].0;
            let after_op = k + ntok;
            if op == ".." || op == "..=" {
                // Open-ended ranges (`..`, `a..`, `..b`).
                let has_rhs = !matches!(self.t(toks, after_op), "" | ")" | "]" | "}" | "," | ";" | "{" | "=");
                let (rhs, nk) = if has_rhs {
                    self.eval_expr(toks, after_op, rbp, env, no_struct)
                } else {
                    (Value::top(), after_op)
                };
                let mut v = Value::top();
                v.range_of = Some((Box::new(lhs.clone()), Box::new(rhs), op == "..="));
                lhs = v;
                k = nk;
                continue;
            }
            let (rhs, nk) = self.eval_expr(toks, after_op, rbp, env, no_struct);
            k = nk;
            lhs = self.binop(&op, Some(site_tok), &lhs, &rhs);
        }
        (lhs, k)
    }

    /// Peeks the infix operator at `k`, returning `(op, token count)`.
    /// Returns `None` at assignment operators and expression stops.
    fn peek_op(&self, toks: &Slice<'a>, k: usize) -> Option<(String, usize)> {
        let a = self.t(toks, k);
        let b = self.t(toks, k + 1);
        let c = self.t(toks, k + 2);
        match a {
            "+" | "*" | "/" | "%" | "^" => {
                if b == "=" {
                    None
                } else {
                    Some((a.to_string(), 1))
                }
            }
            "-" => {
                if b == "=" || b == ">" {
                    None
                } else {
                    Some((a.to_string(), 1))
                }
            }
            "<" => match b {
                "<" => {
                    if c == "=" {
                        None
                    } else {
                        Some(("<<".to_string(), 2))
                    }
                }
                "=" => Some(("<=".to_string(), 2)),
                _ => Some(("<".to_string(), 1)),
            },
            ">" => match b {
                ">" => {
                    if c == "=" {
                        None
                    } else {
                        Some((">>".to_string(), 2))
                    }
                }
                "=" => Some((">=".to_string(), 2)),
                _ => Some((">".to_string(), 1)),
            },
            "&" => match b {
                "&" => Some(("&&".to_string(), 2)),
                "=" => None,
                _ => Some(("&".to_string(), 1)),
            },
            "|" => match b {
                "|" => Some(("||".to_string(), 2)),
                "=" => None,
                _ => Some(("|".to_string(), 1)),
            },
            "=" => {
                if b == "=" {
                    Some(("==".to_string(), 2))
                } else {
                    None
                }
            }
            "!" => {
                if b == "=" {
                    Some(("!=".to_string(), 2))
                } else {
                    None
                }
            }
            "." => {
                if b == "." {
                    if c == "=" {
                        Some(("..=".to_string(), 3))
                    } else {
                        Some(("..".to_string(), 2))
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// A primary expression (atoms and prefix operators).
    fn primary(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env, no_struct: bool) -> (Value, usize) {
        let Some(&(_, tok)) = toks.get(k) else {
            return (Value::top(), k);
        };
        let s = self.src().tok_text(tok);
        match tok.kind {
            TokenKind::Num => {
                if s.contains('.') {
                    let mut v = Value::top();
                    v.float = true;
                    return (v, k + 1);
                }
                match parse_num(s) {
                    Some((n, suffix)) => (Value::literal(n, suffix), k + 1),
                    None => (Value::top(), k + 1),
                }
            }
            TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => (Value::top(), k + 1),
            TokenKind::Ident => match s {
                "true" | "false" => (Value::of_bool(), k + 1),
                "if" => self.parse_if(toks, k, env),
                "match" => self.parse_match(toks, k, env),
                "while" => (Value::top(), self.exec_while(toks, k, env)),
                "loop" => (Value::top(), self.exec_loop(toks, k, env)),
                "for" => (Value::top(), self.exec_for(toks, k, env)),
                "unsafe" if self.t(toks, k + 1) == "{" => self.primary(toks, k + 1, env, no_struct),
                "move" => self.primary(toks, k + 1, env, no_struct),
                "return" | "break" | "continue" => {
                    let j = k + 1;
                    if matches!(self.t(toks, j), ";" | "}" | ")" | "," | "") {
                        (Value::top(), j)
                    } else {
                        let (_, nk) = self.eval_expr(toks, j, 0, env, no_struct);
                        (Value::top(), nk)
                    }
                }
                _ => self.ident_primary(toks, k, env, no_struct),
            },
            TokenKind::Punct => match s {
                "(" => {
                    let close = self.close_of(toks, k);
                    let (inner, nk) = self.eval_expr(&toks[..close], k + 1, 0, env, false);
                    // Tuples: evaluate the remaining elements, value ⊤.
                    let mut v = inner;
                    let mut j = nk;
                    while self.t(&toks[..close], j) == "," {
                        v = Value::top();
                        let (_, n2) = self.eval_expr(&toks[..close], j + 1, 0, env, false);
                        j = n2;
                    }
                    (v, close + 1)
                }
                "[" => self.array_literal(toks, k, env),
                "{" => {
                    let close = self.close_of(toks, k);
                    let v = self.exec_block(&toks[k + 1..close], env);
                    (v, close + 1)
                }
                "-" => {
                    // Negative value: modeled only as "not nonneg".
                    let (operand, nk) = self.eval_expr(toks, k + 1, 21, env, no_struct);
                    let mut v = Value::top();
                    v.float = operand.float;
                    v.signed = true;
                    v.width = operand.width;
                    (v, nk)
                }
                "!" => {
                    let (operand, nk) = self.eval_expr(toks, k + 1, 21, env, no_struct);
                    if operand.width == Some(1) {
                        (Value::of_bool(), nk)
                    } else {
                        let mut v = Value::top();
                        v.width = operand.width;
                        v.signed = operand.signed;
                        if !operand.signed {
                            if let Some(w) = operand.width {
                                v.nonneg = true;
                                v.v = AbsVal::range(0, ty_max(w, false).min(VALUE_MAX) as u64);
                            }
                        }
                        (v, nk)
                    }
                }
                "*" => self.eval_expr(toks, k + 1, 21, env, no_struct),
                "&" => {
                    let mut j = k + 1;
                    while matches!(self.t(toks, j), "&" | "mut") {
                        j += 1;
                    }
                    self.eval_expr(toks, j, 21, env, no_struct)
                }
                "|" => self.closure(toks, k, env),
                _ => (Value::top(), k + 1),
            },
            _ => (Value::top(), k + 1),
        }
    }

    /// `|params| body` closures: params are killed in a scratch env,
    /// the body is walked for its sites, the value is ⊤.
    fn closure(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> (Value, usize) {
        let mut scratch = env.clone();
        let body_start = if self.t(toks, k + 1) == "|" {
            k + 2
        } else {
            let mut j = k + 1;
            let mut d = 0i32;
            while j < toks.len() {
                match self.t(toks, j) {
                    "(" | "[" | "<" => d += 1,
                    ")" | "]" => d -= 1,
                    ">" if self.t(toks, j.wrapping_sub(1)) != "-" => d -= 1,
                    "|" if d == 0 => break,
                    _ => {
                        if self.kind(toks, j) == Some(TokenKind::Ident)
                            && !matches!(self.t(toks, j), "mut")
                            && self.t(toks, j.wrapping_sub(1)) != ":"
                        {
                            scratch.insert(self.t(toks, j).to_string(), Value::top());
                        }
                    }
                }
                j += 1;
            }
            j + 1
        };
        // Skip an optional `-> Ty` return annotation.
        let mut b = body_start;
        if self.t(toks, b) == "-" && self.t(toks, b + 1) == ">" {
            b += 2;
            while b < toks.len() && self.t(toks, b) != "{" {
                b += 1;
            }
        }
        let (_, nk) = self.eval_expr(toks, b, 2, &mut scratch, false);
        (Value::top(), nk)
    }

    /// `[a, b, c]` and `[x; N]` array literals.
    fn array_literal(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> (Value, usize) {
        let close = self.close_of(toks, k);
        let semi = self.find_at_depth0(&toks[..close], k + 1, ";", &[]);
        let mut v = Value::top();
        if let Some(semi) = semi {
            self.eval_expr(&toks[..semi], k + 1, 0, env, false);
            let (n, _) = self.eval_expr(&toks[..close], semi + 1, 0, env, false);
            if n.nonneg && n.v.lo() == n.v.hi() {
                v.arr_len = Some(n.v.lo());
            }
        } else {
            let mut j = k + 1;
            let mut count = 0u128;
            while j < close {
                let end = self
                    .find_at_depth0(&toks[..close], j, ",", &[])
                    .unwrap_or(close);
                let (_, _) = self.eval_expr(&toks[..end], j, 0, env, false);
                count += 1;
                j = end + 1;
            }
            v.arr_len = Some(count);
        }
        (v, close + 1)
    }

    /// Identifier-headed primaries: locals, consts, paths, calls,
    /// macros, struct literals.
    fn ident_primary(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env, no_struct: bool) -> (Value, usize) {
        let name = self.t(toks, k);
        let nxt = self.t(toks, k + 1);
        // Macros.
        if nxt == "!" && matches!(self.t(toks, k + 2), "(" | "[") {
            let close = self.close_of(toks, k + 2);
            let mut j = k + 3;
            while j < close {
                let end = self
                    .find_at_depth0(&toks[..close], j, ",", &[])
                    .unwrap_or(close);
                self.eval_expr(&toks[..end], j, 0, env, false);
                j = end + 1;
            }
            let mut v = Value::top();
            if name == "vec" {
                v.is_vec = true;
            }
            return (v, close + 1);
        }
        // Paths (`T::method(..)`, `u64::MAX`, `mod::CONST`).
        if nxt == ":" && self.t(toks, k + 2) == ":" {
            return self.path_primary(toks, k, env);
        }
        // Free function call.
        if nxt == "(" {
            let (args, nk) = self.eval_call_args(toks, k + 1, env);
            // `Some(x)` / `Ok(x)` wrappers pass their payload through
            // shape-wise often enough that ⊤ is the only sound answer.
            let _ = args;
            return (Value::top(), nk);
        }
        // Struct literal.
        if nxt == "{"
            && !no_struct
            && name.chars().next().is_some_and(char::is_uppercase)
        {
            let close = self.close_of(toks, k + 1);
            let mut j = k + 2;
            while j < close {
                let end = self
                    .find_at_depth0(&toks[..close], j, ",", &[])
                    .unwrap_or(close);
                // `field: expr` / shorthand / `..base`.
                if self.kind(toks, j) == Some(TokenKind::Ident) && self.t(toks, j + 1) == ":" {
                    self.eval_expr(&toks[..end], j + 2, 0, env, false);
                } else {
                    self.eval_expr(&toks[..end], j, 0, env, false);
                }
                j = end + 1;
            }
            let mut v = Value::top();
            v.tyname = Some(name.to_string());
            return (v, close + 1);
        }
        // Plain identifier.
        if let Some(v) = env.get(name) {
            let mut v = v.clone();
            v.path = Some(name.to_string());
            return (v, k + 1);
        }
        if let Some(c) = self.facts.consts.get(name) {
            let mut v = Value::literal(c.value, None);
            v.note = Some(format!("const {name} = {} ({})", c.value, c.why));
            return (v, k + 1);
        }
        if let Some((len, elem)) = self.facts.arrays.get(name) {
            let mut v = Value::top();
            v.arr_len = *len;
            v.elem = Some(elem.clone());
            v.path = Some(name.to_string());
            return (v, k + 1);
        }
        (Value::top(), k + 1)
    }

    /// `a::b::c`-style paths, including `u64::MAX`, qualified calls,
    /// and module-pathed consts.
    fn path_primary(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env) -> (Value, usize) {
        let mut segs: Vec<&str> = vec![self.t(toks, k)];
        let mut j = k + 1;
        while self.t(toks, j) == ":" && self.t(toks, j + 1) == ":" {
            if self.t(toks, j + 2) == "<" {
                // Turbofish: skip the generic args.
                let mut d = 0i32;
                let mut g = j + 2;
                while g < toks.len() {
                    match self.t(toks, g) {
                        "<" => d += 1,
                        ">" if self.t(toks, g.wrapping_sub(1)) != "-" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    g += 1;
                }
                j = g + 1;
                continue;
            }
            if self.kind(toks, j + 2) != Some(TokenKind::Ident) {
                break;
            }
            segs.push(self.t(toks, j + 2));
            j += 3;
        }
        let last = *segs.last().unwrap_or(&"");
        let prev = if segs.len() >= 2 {
            segs[segs.len() - 2]
        } else {
            ""
        };
        // Primitive associated constants.
        if let Some(ty) = TyInfo::prim(prev) {
            if !ty.float {
                match last {
                    "MAX" => {
                        let mut v = match ty.max_value() {
                            Some(m) if m <= VALUE_MAX => Value::literal(m, Some(ty.clone())),
                            _ => Value::top(),
                        };
                        v.note = Some(format!("{prev}::MAX"));
                        return (v, j);
                    }
                    "MIN" if !ty.signed => {
                        return (Value::literal(0, Some(ty.clone())), j);
                    }
                    "BITS" => {
                        if let Some(w) = ty.width {
                            return (Value::literal(w as u128, None), j);
                        }
                    }
                    _ => {}
                }
            }
        }
        if self.t(toks, j) == "(" {
            let (args, nk) = self.eval_call_args(toks, j, env);
            let v = self.assoc_call(prev, last, &args);
            return (v, nk);
        }
        if segs.len() >= 2 && prev.chars().next().is_some_and(char::is_lowercase) {
            if let Some(c) = self.facts.consts.get(last) {
                let mut v = Value::literal(c.value, None);
                v.note = Some(format!("const {last} = {} ({})", c.value, c.why));
                return (v, j);
            }
            if let Some((len, elem)) = self.facts.arrays.get(last) {
                let mut v = Value::top();
                v.arr_len = *len;
                v.elem = Some(elem.clone());
                return (v, j);
            }
        }
        (Value::top(), j)
    }

    /// Evaluates a parenthesized argument list starting at the `(`.
    /// Returns the values and the index past the `)`.
    fn eval_call_args(&mut self, toks: &Slice<'a>, open: usize, env: &mut Env) -> (Vec<Value>, usize) {
        let close = self.close_of(toks, open);
        let mut vals = Vec::new();
        let mut j = open + 1;
        while j < close {
            let end = self
                .find_at_depth0(&toks[..close], j, ",", &[])
                .unwrap_or(close);
            let (v, _) = self.eval_expr(&toks[..end], j, 0, env, false);
            vals.push(v);
            j = end + 1;
        }
        (vals, close + 1)
    }

    /// `.name` postfix: tuple index, field read, or method call.
    fn postfix_dot(&mut self, toks: &Slice<'a>, k: usize, env: &mut Env, lhs: &mut Value) -> usize {
        let name_k = k + 1;
        if self.kind(toks, name_k) == Some(TokenKind::Num) {
            *lhs = Value::top();
            return name_k + 1;
        }
        if self.kind(toks, name_k) != Some(TokenKind::Ident) {
            *lhs = Value::top();
            return name_k;
        }
        let name = self.t(toks, name_k).to_string();
        // Optional turbofish between name and `(`.
        let mut j = name_k + 1;
        if self.t(toks, j) == ":" && self.t(toks, j + 1) == ":" && self.t(toks, j + 2) == "<" {
            let mut d = 0i32;
            let mut g = j + 2;
            while g < toks.len() {
                match self.t(toks, g) {
                    "<" => d += 1,
                    ">" if self.t(toks, g.wrapping_sub(1)) != "-" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                g += 1;
            }
            j = g + 1;
        }
        if self.t(toks, j) == "(" {
            let (args, nk) = self.eval_call_args(toks, j, env);
            *lhs = self.method_call(lhs, &name, &args);
            return nk;
        }
        // Field read.
        *lhs = self.field_read(lhs, &name);
        name_k + 1
    }

    /// Reads a struct field through the workspace fact base.
    fn field_read(&mut self, recv: &Value, fname: &str) -> Value {
        let Some(ty) = recv.tyname.as_deref() else {
            return Value::top();
        };
        let Some(fi) = self.facts.field(ty, fname) else {
            return Value::top();
        };
        let mut v = Value::of_ty(&fi.ty);
        if v.nonneg {
            if let Some(hi) = fi.hi {
                v.v = v.v.refine_below(hi);
            }
            if let Some(lo) = fi.lo {
                v.v = v.v.refine_above(lo);
            }
            if (fi.hi.is_some() || fi.lo.is_some()) && !fi.why.is_empty() {
                v.note = Some(fi.why.clone());
            }
        }
        if let Some(p) = &recv.path {
            v.fld = Some((ty.to_string(), fname.to_string(), p.clone()));
            v.path = Some(format!("{p}.{fname}"));
        }
        v
    }

    /// Method dispatch: seed summaries, intrinsics, bounded inlining.
    fn method_call(&mut self, recv: &Value, name: &str, args: &[Value]) -> Value {
        if let Some(ty) = recv.tyname.as_deref() {
            if let Some((lo, hi, why)) = seed_summary(ty, name) {
                let mut v = Value::top();
                v.nonneg = true;
                v.width = Some(64);
                v.v = AbsVal::range(lo.min(VALUE_MAX) as u64, hi.min(VALUE_MAX) as u64);
                v.note = Some(why.to_string());
                return v;
            }
        }
        let a0 = args.first();
        match name {
            "len" if recv.arr_len.is_some() => {
                let mut v = Value::literal(recv.arr_len.unwrap_or(0), None);
                v.poly = false;
                v.width = Some(64);
                v.note = Some("fixed-size array length".to_string());
                v
            }
            "len" if recv.is_vec || recv.elem.is_some() => {
                let mut v = Value::top();
                v.nonneg = true;
                v.width = Some(64);
                v.v = AbsVal::range(0, i64::MAX as u64);
                v
            }
            "min" => match a0 {
                Some(a) if recv.nonneg && a.nonneg => {
                    let mut v = Value::top();
                    v.nonneg = true;
                    v.v = recv.v.min(&a.v);
                    v.width = recv.width.or(a.width);
                    v.signed = recv.signed && a.signed;
                    v
                }
                _ => widthy_top(recv),
            },
            "max" => match a0 {
                Some(a) if recv.nonneg || a.nonneg => {
                    let mut v = Value::top();
                    v.nonneg = true;
                    let l = if recv.nonneg { recv.v } else { AbsVal::TOP };
                    let r = if a.nonneg { a.v } else { AbsVal::TOP };
                    v.v = l.max(&r);
                    v.width = recv.width.or(a.width);
                    v
                }
                _ => widthy_top(recv),
            },
            "clamp" => match (args.first(), args.get(1)) {
                (Some(lo), Some(hi)) if lo.nonneg && hi.nonneg => {
                    let mut v = Value::top();
                    v.nonneg = true;
                    v.v = AbsVal::range(
                        lo.v.lo().min(VALUE_MAX) as u64,
                        hi.v.hi().min(VALUE_MAX) as u64,
                    );
                    v.width = recv.width;
                    v
                }
                _ => widthy_top(recv),
            },
            "saturating_add" | "saturating_mul" => match a0 {
                Some(a) if recv.nonneg && a.nonneg => {
                    let cap = recv
                        .width
                        .map_or(VALUE_MAX, |w| ty_max(w, recv.signed).min(VALUE_MAX));
                    let (sl, sh) = if name == "saturating_add" {
                        (
                            recv.v.lo().saturating_add(a.v.lo()),
                            recv.v.hi().saturating_add(a.v.hi()),
                        )
                    } else {
                        (
                            recv.v.lo().saturating_mul(a.v.lo()),
                            recv.v.hi().saturating_mul(a.v.hi()),
                        )
                    };
                    let mut v = Value::top();
                    v.nonneg = true;
                    v.v = AbsVal::range(sl.min(cap) as u64, sh.min(cap) as u64);
                    v.width = recv.width;
                    v
                }
                _ => widthy_top(recv),
            },
            "saturating_sub" => {
                if recv.nonneg && (a0.is_some_and(|a| a.nonneg) || (!recv.signed && recv.width.is_some())) {
                    let mut v = Value::top();
                    v.nonneg = true;
                    v.v = AbsVal::range(0, recv.v.hi().min(VALUE_MAX) as u64);
                    v.width = recv.width;
                    v
                } else {
                    widthy_top(recv)
                }
            }
            "wrapping_add" | "wrapping_sub" | "wrapping_mul" | "wrapping_shl" | "wrapping_shr"
            | "rotate_left" | "rotate_right" | "swap_bytes" | "reverse_bits" => widthy_top(recv),
            "count_ones" | "count_zeros" | "leading_zeros" | "trailing_zeros" => {
                let mut v = Value::top();
                v.nonneg = true;
                v.width = Some(32);
                let mut hi = u64::from(recv.width.unwrap_or(128));
                // A nonzero receiver has at least one set bit, so its
                // leading/trailing zero count is at most width - 1.
                if matches!(name, "leading_zeros" | "trailing_zeros")
                    && recv.nonneg
                    && recv.v.lo() >= 1
                    && recv.width.is_some()
                {
                    hi = hi.saturating_sub(1);
                    v.note = recv.note.clone().or_else(|| {
                        Some(format!("{name} of a nonzero value is < its bit width"))
                    });
                }
                v.v = AbsVal::range(0, hi);
                v
            }
            "iter" | "iter_mut" | "into_iter" | "copied" | "cloned" | "rev" | "as_slice"
            | "as_mut_slice" | "as_ref" | "as_mut" => {
                let mut v = recv.clone();
                v.path = None;
                v.fld = None;
                v
            }
            "enumerate" => {
                let mut v = recv.clone();
                v.enumerated = true;
                v.path = None;
                v.fld = None;
                v
            }
            "clone" | "to_owned" => recv.clone(),
            "count" => {
                let mut v = Value::top();
                v.nonneg = true;
                v.width = Some(64);
                v
            }
            "is_empty" | "contains" | "any" | "all" | "is_some" | "is_none" | "is_ok"
            | "is_err" | "is_power_of_two" | "eq" | "ne" | "lt" | "gt" | "le" | "ge"
            | "starts_with" | "ends_with" => Value::of_bool(),
            "checked_add" | "checked_sub" | "checked_mul" | "checked_div" | "checked_rem"
            | "checked_shl" | "checked_shr" | "get" | "get_mut" | "first" | "last" => Value::top(),
            _ => self
                .try_inline(recv.tyname.as_deref(), name, Some(recv), args)
                .or_else(|| self.declared_summary(recv.tyname.as_deref(), name))
                .unwrap_or_else(|| {
                    if recv.float {
                        let mut v = Value::top();
                        v.float = true;
                        v
                    } else {
                        Value::top()
                    }
                }),
        }
    }

    /// Falls back to the callee's declared `-> Ty` annotation when
    /// inlining is impossible (loops, size): the signature still bounds
    /// the result's type range — `fn next_u64(&mut self) -> u64` can
    /// return anything *in u64*, which is exactly what a width-sensitive
    /// shift proof needs.
    fn declared_summary(&self, ty: Option<&str>, name: &str) -> Option<Value> {
        let ty = ty?;
        let &(fi, fk) = self.facts.methods.get(&(ty.to_string(), name.to_string()))?;
        let mut v = self.declared_return(fi, fk)?;
        if v.note.is_none() {
            v.note = Some(format!("declared return type of {ty}::{name}"));
        }
        Some(v)
    }

    /// Parses the `-> Ty` return annotation of a workspace function
    /// into an abstract value. `None` when the function returns `()`
    /// or the annotation shape is unrecognized.
    fn declared_return(&self, file_idx: usize, fn_idx: usize) -> Option<Value> {
        let file = &self.files[file_idx];
        let f = &self.parsed[file_idx].fns[fn_idx];
        let code: Vec<&Token> = file
            .tokens
            .iter()
            .take(f.body.start)
            .filter(|t| t.kind.is_code())
            .collect();
        // Only tokens of this function's own signature: from the `fn`
        // keyword on its declaring line (earlier items in the file also
        // live before `body.start`).
        let fn_pos = code.iter().rposition(|t| {
            file.tok_text(t) == "fn" && t.line == f.line && t.kind == TokenKind::Ident
        })?;
        let sig = &code[fn_pos..];
        // The return arrow directly follows the param list's closing
        // paren — an `Fn(...) -> T` arrow inside a parameter must not
        // be mistaken for it.
        let open = sig.iter().position(|t| file.tok_text(t) == "(")?;
        let mut d = 0i32;
        let mut close = None;
        for (j, t) in sig.iter().enumerate().skip(open) {
            match file.tok_text(t) {
                "(" => d += 1,
                ")" => {
                    d -= 1;
                    if d == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close?;
        let arrow = close + 1;
        if sig.get(arrow).is_none_or(|t| file.tok_text(t) != "-")
            || sig.get(arrow + 1).is_none_or(|t| file.tok_text(t) != ">")
        {
            return None;
        }
        let end = sig[arrow + 2..]
            .iter()
            .position(|t| matches!(file.tok_text(t), "where" | "{"))
            .map_or(sig.len(), |j| arrow + 2 + j);
        let ty_toks: Vec<&Token> = sig[arrow + 2..end].to_vec();
        if ty_toks.is_empty() {
            return None;
        }
        let ty = crate::dataflow::facts::ty_of_tokens(file, &ty_toks, &self.facts.consts);
        if ty.width.is_none() && ty.elem.is_none() && !ty.float && ty.name.is_none() {
            return None;
        }
        Some(Value::of_ty(&ty))
    }

    /// `T::name(args)` associated calls.
    fn assoc_call(&mut self, ty: &str, name: &str, args: &[Value]) -> Value {
        if let Some(prim) = TyInfo::prim(ty) {
            if name == "from" && !prim.signed && !prim.float {
                // `u64::from(x)` is a widening conversion.
                if let Some(a) = args.first() {
                    let mut v = if a.nonneg {
                        let mut v = Value::top();
                        v.nonneg = true;
                        v.v = a.v;
                        v
                    } else {
                        Value::of_ty(&prim)
                    };
                    v.width = prim.width;
                    v.signed = false;
                    v.poly = false;
                    return v;
                }
            }
            return Value::top();
        }
        if let Some((lo, hi, why)) = seed_summary(ty, name) {
            let mut v = Value::top();
            v.nonneg = true;
            v.width = Some(64);
            v.v = AbsVal::range(lo.min(VALUE_MAX) as u64, hi.min(VALUE_MAX) as u64);
            v.note = Some(why.to_string());
            return v;
        }
        if let Some(v) = self.try_inline(Some(ty), name, None, args) {
            let mut v = v;
            if matches!(name, "new" | "default") {
                v.tyname = Some(ty.to_string());
            }
            return v;
        }
        if matches!(name, "new" | "default") {
            let mut v = Value::top();
            v.tyname = Some(ty.to_string());
            return v;
        }
        self.declared_summary(Some(ty), name).unwrap_or_else(Value::top)
    }

    /// Bounded accessor inlining: straight-line callee bodies up to
    /// [`MAX_INLINE_TOKENS`] code tokens, depth-limited, with the
    /// callee's sites *not* recorded (they belong to its own profile).
    fn try_inline(
        &mut self,
        ty: Option<&str>,
        name: &str,
        recv: Option<&Value>,
        args: &[Value],
    ) -> Option<Value> {
        let ty = ty?;
        if self.depth >= MAX_INLINE_DEPTH {
            return None;
        }
        let &(fi, fk) = self.facts.methods.get(&(ty.to_string(), name.to_string()))?;
        let body = self.body_of(fi, fk);
        if body.len() > MAX_INLINE_TOKENS {
            return None;
        }
        let callee_file = &self.files[fi];
        if body.iter().any(|(_, t)| {
            matches!(
                callee_file.tok_text(t),
                "for" | "while" | "loop" | "fn" | "unsafe"
            )
        }) {
            return None;
        }
        let mut env = self.param_env(fi, fk);
        if let (Some(r), true) = (recv, env.contains_key("self")) {
            let declared_ty = env["self"].tyname.clone();
            let mut me = r.clone();
            me.tyname = me.tyname.or(declared_ty);
            me.path = Some("self".to_string());
            env.insert("self".to_string(), me);
        }
        let names = self.param_list(fi, fk);
        let mut ai = 0;
        for n in names {
            if n == "self" {
                continue;
            }
            if let Some(a) = args.get(ai) {
                let merged = merge_arg(env.get(&n), a);
                env.insert(n, merged);
            }
            ai += 1;
        }
        let (save_file, save_rec) = (self.file, self.record);
        self.file = fi;
        self.record = false;
        self.depth += 1;
        let tail = self.exec_block(&body, &mut env);
        self.file = save_file;
        self.record = save_rec;
        self.depth -= 1;
        let mut out = tail;
        out.path = None;
        out.fld = None;
        if out.note.is_none() {
            out.note = Some(format!("via {ty}::{name}"));
        }
        Some(out)
    }

    /// Ordered parameter names of a function (including `self`).
    fn param_list(&self, file_idx: usize, fn_idx: usize) -> Vec<String> {
        let file = &self.files[file_idx];
        let f = &self.parsed[file_idx].fns[fn_idx];
        let code: Vec<&Token> = file
            .tokens
            .iter()
            .take(f.body.start)
            .filter(|t| t.kind.is_code())
            .collect();
        let fn_pos = code.iter().rposition(|t| {
            file.tok_text(t) == "fn" && t.line == f.line && t.kind == TokenKind::Ident
        });
        let Some(mut j) = fn_pos.map(|p| p + 2) else {
            return Vec::new();
        };
        if code.get(j).is_some_and(|t| file.tok_text(t) == "<") {
            let mut d = 0i32;
            while j < code.len() {
                match file.tok_text(code[j]) {
                    "<" => d += 1,
                    ">" if file.tok_text(code[j - 1]) != "-" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if code.get(j).is_none_or(|t| file.tok_text(t) != "(") {
            return Vec::new();
        }
        let mut names = Vec::new();
        let mut d = 0i32;
        let mut at_start = true;
        while j < code.len() {
            match file.tok_text(code[j]) {
                "(" | "[" | "<" => d += 1,
                ")" | "]" => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                ">" if file.tok_text(code[j - 1]) != "-" => d -= 1,
                "," if d == 1 => at_start = true,
                "&" | "mut" => {}
                t => {
                    if at_start && d == 1 && code[j].kind == TokenKind::Ident {
                        names.push(t.to_string());
                        at_start = false;
                    } else if d == 1 {
                        at_start = false;
                    }
                }
            }
            j += 1;
        }
        names
    }

    /// Records the proof for an indexing site.
    fn prove_index(&mut self, site_tok: usize, recv: &Value, idx: &Value) {
        if idx.range_of.is_some() {
            self.prove(
                site_tok,
                false,
                "range slicing is not modeled by the interpreter".to_string(),
            );
            return;
        }
        match recv.arr_len {
            Some(len) if idx.nonneg && idx.v.hi() < len => {
                self.prove(
                    site_tok,
                    true,
                    format!("index {} < fixed length {}", idx.describe(), len),
                );
            }
            Some(len) => {
                self.prove(
                    site_tok,
                    false,
                    format!(
                        "index {} not provably < fixed length {}",
                        idx.describe(),
                        len
                    ),
                );
            }
            None => {
                self.prove(
                    site_tok,
                    false,
                    format!(
                        "receiver length unknown (index {})",
                        idx.describe()
                    ),
                );
            }
        }
    }

    /// A binary operation: judges the site (if it is one) and computes
    /// the result value.
    fn binop(&mut self, op: &str, site: Option<usize>, l: &Value, r: &Value) -> Value {
        match op {
            "+" | "-" | "*" => self.arith(op, site, l, r),
            "/" | "%" => self.divmod(op, site, l, r),
            "<<" | ">>" => self.shift(op, site, l, r),
            "&" => {
                let mut v = Value::top();
                v.width = out_width(l, r).0;
                v.signed = out_width(l, r).1;
                if l.nonneg && r.nonneg {
                    v.nonneg = true;
                    v.v = l.v.and(&r.v);
                } else if r.nonneg {
                    v.nonneg = true;
                    v.v = AbsVal::range(0, r.v.hi().min(VALUE_MAX) as u64);
                } else if l.nonneg {
                    v.nonneg = true;
                    v.v = AbsVal::range(0, l.v.hi().min(VALUE_MAX) as u64);
                }
                v
            }
            "|" | "^" => {
                let mut v = Value::top();
                v.width = out_width(l, r).0;
                v.signed = out_width(l, r).1;
                if l.nonneg && r.nonneg {
                    v.nonneg = true;
                    v.v = if op == "|" {
                        l.v.or(&r.v)
                    } else {
                        l.v.xor(&r.v)
                    };
                }
                v
            }
            "<" | ">" | "<=" | ">=" | "==" | "!=" | "&&" | "||" => Value::of_bool(),
            _ => Value::top(),
        }
    }

    /// `+`, `-`, `*`: overflow sites.
    fn arith(&mut self, op: &str, site: Option<usize>, l: &Value, r: &Value) -> Value {
        if l.float || r.float {
            if let Some(s) = site {
                self.prove(s, true, "float arithmetic cannot panic".to_string());
            }
            let mut v = Value::top();
            v.float = true;
            return v;
        }
        let cap = l.repr_max(r);
        let (width, signed) = out_width(l, r);
        let mut result = Value::top();
        result.width = width;
        result.signed = signed;
        result.poly = l.poly && r.poly;
        let unsigned_cap = || {
            // Post-site, the value fits the representation either way
            // (debug: no panic happened; release: wrapped into range).
            AbsVal::range(0, cap.min(VALUE_MAX) as u64)
        };
        match op {
            "-" => {
                if l.nonneg && r.nonneg && l.v.lo() >= r.v.hi() {
                    if let Some(s) = site {
                        self.prove(
                            s,
                            true,
                            format!(
                                "{} - {} cannot underflow (lhs lower bound >= rhs upper bound)",
                                l.describe(),
                                r.describe()
                            ),
                        );
                    }
                    result.nonneg = true;
                    result.v = l.v.sub(&r.v);
                } else if let Some(why) = self.ctor_relation(l, r) {
                    if let Some(s) = site {
                        self.prove(s, true, why);
                    }
                    result.nonneg = true;
                    result.v = AbsVal::range(0, l.v.hi().min(VALUE_MAX) as u64);
                } else {
                    if let Some(s) = site {
                        self.prove(
                            s,
                            false,
                            format!(
                                "cannot order operands: {} - {}",
                                l.describe(),
                                r.describe()
                            ),
                        );
                    }
                    if width.is_some() && !signed {
                        result.nonneg = true;
                        result.v = unsigned_cap();
                    }
                }
            }
            _ => {
                // `+` / `*`.
                if l.nonneg && r.nonneg {
                    let (lo, hi) = if op == "+" {
                        (
                            l.v.lo().saturating_add(r.v.lo()),
                            l.v.hi().saturating_add(r.v.hi()),
                        )
                    } else {
                        (
                            l.v.lo().saturating_mul(r.v.lo()),
                            l.v.hi().saturating_mul(r.v.hi()),
                        )
                    };
                    if hi <= cap {
                        if let Some(s) = site {
                            self.prove(
                                s,
                                true,
                                format!(
                                    "{} {} {} <= type max {}",
                                    l.describe(),
                                    op,
                                    r.describe(),
                                    cap
                                ),
                            );
                        }
                        result.nonneg = true;
                        result.v = AbsVal::range(lo.min(VALUE_MAX) as u64, hi.min(VALUE_MAX) as u64);
                    } else {
                        if let Some(s) = site {
                            self.prove(
                                s,
                                false,
                                format!(
                                    "{} {} {} may exceed type max {}",
                                    l.describe(),
                                    op,
                                    r.describe(),
                                    cap
                                ),
                            );
                        }
                        if width.is_some() && !signed {
                            result.nonneg = true;
                            result.v = unsigned_cap();
                        }
                    }
                } else {
                    if let Some(s) = site {
                        self.prove(
                            s,
                            false,
                            format!(
                                "operand bounds unknown: {} {} {}",
                                l.describe(),
                                op,
                                r.describe()
                            ),
                        );
                    }
                    if width.is_some() && !signed && op == "+" {
                        // Unsigned-typed operands wrap into range even
                        // when we cannot bound them.
                        if !l.signed && !r.signed && l.width.is_some() && r.width.is_some() {
                            result.nonneg = true;
                            result.v = unsigned_cap();
                        }
                    }
                }
            }
        }
        result
    }

    /// `/`, `%`: division-by-zero sites.
    fn divmod(&mut self, op: &str, site: Option<usize>, l: &Value, r: &Value) -> Value {
        if l.float || r.float {
            if let Some(s) = site {
                self.prove(s, true, "float division cannot panic".to_string());
            }
            let mut v = Value::top();
            v.float = true;
            return v;
        }
        let safe = r.nonneg && r.v.lo() >= 1;
        if let Some(s) = site {
            if safe {
                self.prove(s, true, format!("divisor {} >= 1", r.describe()));
            } else {
                self.prove(
                    s,
                    false,
                    format!("divisor not provably nonzero: {}", r.describe()),
                );
            }
        }
        let (width, signed) = out_width(l, r);
        let mut v = Value::top();
        v.width = width;
        v.signed = signed;
        if safe && l.nonneg {
            v.nonneg = true;
            v.v = if op == "/" {
                l.v.div(&r.v)
            } else {
                l.v.rem(&r.v)
            };
        }
        v
    }

    /// `<<`, `>>`: shift-amount sites. Value overflow of `<<` is not a
    /// panic (it truncates), only an amount >= the width is.
    fn shift(&mut self, op: &str, site: Option<usize>, l: &Value, r: &Value) -> Value {
        let w = l.shift_width();
        let safe = r.nonneg && r.v.hi() < u128::from(w);
        if let Some(s) = site {
            if safe {
                self.prove(
                    s,
                    true,
                    format!("shift amount {} < width {}", r.describe(), w),
                );
            } else {
                self.prove(
                    s,
                    false,
                    format!(
                        "shift amount {} not provably < width {} (lhs {})",
                        r.describe(),
                        w,
                        l.describe()
                    ),
                );
            }
        }
        let mut v = Value::top();
        v.width = l.width;
        v.signed = l.signed;
        if !safe {
            return v;
        }
        let cap = ty_max(w, false).min(VALUE_MAX);
        if op == "<<" {
            if l.nonneg && !l.signed {
                let s = l.v.shl(&r.v);
                v.nonneg = true;
                v.v = if s.hi() <= cap {
                    s
                } else {
                    AbsVal::range(0, cap as u64)
                };
            }
        } else if l.nonneg {
            v.nonneg = true;
            v.v = l.v.shr(&r.v);
        } else if !l.signed && l.width.is_some() {
            v.nonneg = true;
            v.v = AbsVal::range(0, cap as u64);
        }
        v
    }

    /// A constructor-proved relation allowing `l - r`: both sides are
    /// fields of the same struct instance with `r.field <= l.field`.
    fn ctor_relation(&self, l: &Value, r: &Value) -> Option<String> {
        let (lt, lf, lp) = l.fld.as_ref()?;
        let (rt, rf, rp) = r.fld.as_ref()?;
        if lt != rt || lp != rp {
            return None;
        }
        let rel = self
            .facts
            .relations(lt)
            .iter()
            .find(|rel| rel.lhs == *rf && rel.rhs == *lf)?;
        Some(format!(
            "{lp}.{rf} {} {lp}.{lf} by constructor invariant: {}",
            if rel.strict { "<" } else { "<=" },
            rel.why
        ))
    }
}

/// Merges a caller argument value into a callee parameter slot: the
/// argument's bounds win, the declared type fills unknown width/sign
/// and supplies bounds when the argument has none. Path identity never
/// crosses the call.
fn merge_arg(declared: Option<&Value>, arg: &Value) -> Value {
    let mut v = arg.clone();
    if let Some(d) = declared {
        if v.poly || v.width.is_none() {
            v.width = d.width;
            v.signed = v.signed || d.signed;
            v.poly = false;
        }
        if !v.nonneg && d.nonneg {
            v.nonneg = true;
            v.v = d.v;
        }
        v.float = v.float || d.float;
        v.tyname = v.tyname.or_else(|| d.tyname.clone());
        v.elem = v.elem.or_else(|| d.elem.clone());
        v.arr_len = v.arr_len.or(d.arr_len);
        v.is_vec = v.is_vec || d.is_vec;
    }
    v.path = None;
    v.fld = None;
    v
}

/// Result width/signedness of a binary op (`poly` literals defer).
fn out_width(l: &Value, r: &Value) -> (Option<u32>, bool) {
    match (l.poly, r.poly) {
        (true, false) => (r.width, r.signed),
        (false, true) => (l.width, l.signed),
        _ => (
            match (l.width, r.width) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            l.signed || r.signed,
        ),
    }
}

/// ⊤ constrained only by the receiver's unsigned representation.
fn widthy_top(recv: &Value) -> Value {
    let mut v = Value::top();
    v.width = recv.width;
    v.signed = recv.signed;
    if !recv.signed {
        if let Some(w) = recv.width {
            v.nonneg = true;
            v.v = AbsVal::range(0, ty_max(w, false).min(VALUE_MAX) as u64);
        }
    }
    v
}

/// `expr as Ty` cast semantics (casts never panic).
fn cast_value(operand: &Value, ty_name: &str) -> Value {
    let Some(ty) = TyInfo::prim(ty_name) else {
        return Value::top();
    };
    if ty.float {
        let mut v = Value::top();
        v.float = true;
        return v;
    }
    let mut v = Value::top();
    v.width = ty.width;
    v.signed = ty.signed;
    let Some(w) = ty.width else {
        // u128/i128: out of the value domain; keep only nonneg.
        if !ty.signed && operand.nonneg {
            v.nonneg = true;
            v.v = operand.v;
        }
        return v;
    };
    let cap = ty_max(w, ty.signed).min(VALUE_MAX);
    if !ty.signed {
        v.nonneg = true;
        if operand.nonneg && operand.v.hi() <= cap {
            v.v = operand.v;
        } else if operand.nonneg && w < 64 {
            // Truncation keeps the low bits.
            v.v = operand.v.and(&AbsVal::exact(cap as u64));
        } else {
            v.v = AbsVal::range(0, cap as u64);
        }
    } else if operand.nonneg && operand.v.hi() <= cap {
        v.nonneg = true;
        v.v = operand.v;
    }
    v
}
