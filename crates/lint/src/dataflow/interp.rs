//! The intraprocedural abstract interpreter: walks a function body's
//! token structure (an approximate CFG: straight-line statements,
//! `if`/`match` joins, single-pass widened loops) carrying an
//! environment of [`Value`]s, and records a [`SiteProof`] for every
//! panic-capable site it can judge.
//!
//! The interpreter is *only* a discharge engine: it never raises
//! findings, it only proves sites safe, so every approximation must
//! degrade toward "unproven". Anything it cannot parse is ⊤; any site
//! it never reaches stays unproven; signed values are modeled only
//! while provably non-negative; widths default to the strictest
//! possibility (`i8`) when unknown. See DESIGN.md §12.

use std::collections::BTreeMap;

use crate::dataflow::domain::{AbsVal, VALUE_MAX};
use crate::dataflow::facts::{parse_num, seed_summary, TyInfo, WorkspaceFacts};
use crate::dataflow::sites::{self, Site, SiteKind};
use crate::lexer::{Token, TokenKind};
use crate::parse::ParsedFile;
use crate::source::SourceFile;

/// Evaluation fuel per analyzed function: each expression step burns
/// one unit; exhaustion degrades remaining work to ⊤, never blocks.
const FUEL: u32 = 60_000;

/// Maximum accessor-inlining depth.
const MAX_INLINE_DEPTH: u32 = 2;

/// Maximum body size (code tokens) an inlined accessor may have.
const MAX_INLINE_TOKENS: usize = 96;

/// The verdict on one panic-capable site.
#[derive(Debug, Clone)]
pub struct SiteProof {
    /// The site (token index, line, kind).
    pub site: Site,
    /// Whether the site is provably panic-free.
    pub safe: bool,
    /// Human-readable evidence (or what is missing, when unsafe).
    pub why: String,
}

/// The result of analyzing one function.
#[derive(Debug, Default)]
pub struct FnAnalysis {
    /// Per-site proofs keyed by full-stream token index. Every site
    /// [`sites::enumerate`] finds is present.
    pub proofs: BTreeMap<usize, SiteProof>,
}

impl FnAnalysis {
    /// Whether every *profiled* non-panic site is proven safe (panic
    /// sites cannot be discharged; they gate on the `p` count instead).
    #[must_use]
    pub fn all_profiled_safe(&self) -> bool {
        self.proofs
            .values()
            .filter(|p| p.site.kind.profiled() && p.site.kind != SiteKind::Panic)
            .all(|p| p.safe)
    }
}

/// An abstract runtime value: the joint numeric domain plus the type
/// and provenance facts needed to judge sites.
#[derive(Debug, Clone)]
pub(crate) struct Value {
    /// Numeric abstraction; meaningful only when `nonneg`.
    v: AbsVal,
    /// Provably non-negative (unsigned type, literal, or refined).
    nonneg: bool,
    /// Representation width in bits, when known.
    width: Option<u32>,
    /// Unsuffixed literal: adopts the other operand's width.
    poly: bool,
    /// Declared signed (models only the non-negative case).
    signed: bool,
    /// Float: arithmetic cannot panic.
    float: bool,
    /// `Vec<_>` receiver (length in `[0, isize::MAX]`).
    is_vec: bool,
    /// Known element count for `[T; N]` receivers.
    arr_len: Option<u128>,
    /// Element type for arrays/vecs/slices.
    elem: Option<TyInfo>,
    /// Named struct type, for field-fact lookup.
    tyname: Option<String>,
    /// `(owning struct, field, path prefix)` when this is a field read
    /// — the key for constructor-proved relations.
    fld: Option<(String, String, String)>,
    /// The textual path (`x`, `self.cfg`) this value was read from, so
    /// field relations can require a shared receiver.
    path: Option<String>,
    /// Short provenance note for evidence strings.
    note: Option<String>,
    /// `a..b` / `a..=b` bounds, for `for`-loop binders.
    range_of: Option<(Box<Value>, Box<Value>, bool)>,
    /// Whether `.enumerate()` was applied (binder is `(index, item)`).
    enumerated: bool,
}

impl Value {
    pub(crate) fn top() -> Value {
        Value {
            v: AbsVal::TOP,
            nonneg: false,
            width: None,
            poly: false,
            signed: false,
            float: false,
            is_vec: false,
            arr_len: None,
            elem: None,
            tyname: None,
            fld: None,
            path: None,
            note: None,
            range_of: None,
            enumerated: false,
        }
    }

    /// The abstraction of a typed but otherwise unknown value.
    pub(crate) fn of_ty(ty: &TyInfo) -> Value {
        let mut val = Value::top();
        val.float = ty.float;
        val.signed = ty.signed;
        val.width = ty.width;
        val.is_vec = ty.is_vec;
        val.arr_len = ty.arr_len;
        val.elem = ty.elem.as_deref().cloned();
        val.tyname = ty.name.clone();
        if !ty.signed && !ty.float {
            if let Some(max) = ty.max_value() {
                val.nonneg = true;
                val.v = AbsVal::range(0, max as u64);
            }
        }
        if ty.elem.is_some() && ty.arr_len.is_none() && !ty.is_vec {
            // A slice: shaped like an array of unknown length.
        }
        val
    }

    fn literal(n: u128, suffix: Option<TyInfo>) -> Value {
        let mut val = Value::top();
        if n <= VALUE_MAX {
            val.v = AbsVal::exact(n as u64);
            val.nonneg = true;
        }
        match suffix {
            Some(ty) => {
                val.width = ty.width;
                val.signed = ty.signed;
            }
            None => val.poly = true,
        }
        val
    }

    fn of_bool() -> Value {
        let mut val = Value::top();
        val.nonneg = true;
        val.width = Some(1);
        val.v = AbsVal::range(0, 1);
        val
    }

    /// Interval rendering plus the provenance note, for evidence.
    fn describe(&self) -> String {
        let base = if self.nonneg {
            self.v.describe()
        } else if self.float {
            "float".to_string()
        } else {
            "unbounded".to_string()
        };
        match &self.note {
            Some(n) => format!("{base} ({n})"),
            None => base,
        }
    }

    /// The largest representable value under the known width, with the
    /// strictest (`i8`) assumption when nothing is known. `poly`
    /// literals defer to the other operand.
    fn repr_max(&self, other: &Value) -> u128 {
        let w = match (self.poly, self.width, other.poly, other.width) {
            (false, Some(a), false, Some(b)) => Some(a.min(b)),
            (false, Some(a), _, _) => Some(a),
            (_, _, false, Some(b)) => Some(b),
            (true, _, true, _) => None, // two bare literals: i32 default
            _ => None,
        };
        match w {
            Some(w) => ty_max(w, self.signed || other.signed),
            // Two bare literals infer `i32` by default; anything else
            // unknown assumes the strictest width.
            None if self.poly && other.poly => ty_max(32, true),
            None => ty_max(8, true),
        }
    }

    /// Shift-width limit for `self << amt` / `>>`: the lhs width, with
    /// the strictest assumption when unknown.
    fn shift_width(&self) -> u32 {
        if self.poly {
            // An unsuffixed literal's type is inferred from context; the
            // strictest inferable integer width is 8 bits.
            8
        } else {
            self.width.unwrap_or(8)
        }
    }
}

/// Largest value of a `w`-bit integer (positive half when signed).
fn ty_max(w: u32, signed: bool) -> u128 {
    let bits = if signed { w.saturating_sub(1) } else { w };
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

/// Analyzes `parsed[file_idx].fns[fn_idx]`, returning per-site proofs.
#[must_use]
pub fn analyze_fn(
    files: &[SourceFile],
    parsed: &[ParsedFile],
    facts: &WorkspaceFacts,
    file_idx: usize,
    fn_idx: usize,
) -> FnAnalysis {
    let mut interp = Interp {
        files,
        parsed,
        facts,
        file: file_idx,
        proofs: BTreeMap::new(),
        site_kinds: BTreeMap::new(),
        record: true,
        depth: 0,
        fuel: FUEL,
    };
    let file = &files[file_idx];
    let f = &parsed[file_idx].fns[fn_idx];
    for s in sites::enumerate(file, f) {
        interp.site_kinds.insert(s.tok, s);
    }
    let mut env = interp.param_env(file_idx, fn_idx);
    let body = interp.body_of(file_idx, fn_idx);
    interp.exec_block(&body, &mut env);
    let mut analysis = FnAnalysis {
        proofs: interp.proofs,
    };
    for (tok, site) in interp.site_kinds {
        let why = if site.kind == SiteKind::Panic {
            "explicit panic-capable call (never auto-discharged)".to_string()
        } else {
            "site not reached by the interpreter (unsupported syntax)".to_string()
        };
        analysis.proofs.entry(tok).or_insert_with(|| SiteProof {
            site,
            safe: false,
            why,
        });
    }
    analysis
}

type Env = BTreeMap<String, Value>;
type Body<'t> = Vec<(usize, &'t Token)>;

struct Interp<'a> {
    files: &'a [SourceFile],
    parsed: &'a [ParsedFile],
    facts: &'a WorkspaceFacts,
    /// Index of the file owning the function under analysis.
    file: usize,
    proofs: BTreeMap<usize, SiteProof>,
    /// Site tokens of the function under analysis.
    site_kinds: BTreeMap<usize, Site>,
    /// False inside inlined callees: their sites belong to their own
    /// function's profile, not the caller's.
    record: bool,
    depth: u32,
    fuel: u32,
}

impl<'a> Interp<'a> {
    fn src(&self) -> &'a SourceFile {
        &self.files[self.file]
    }

    fn body_of(&self, file_idx: usize, fn_idx: usize) -> Body<'a> {
        let file = &self.files[file_idx];
        let f = &self.parsed[file_idx].fns[fn_idx];
        file.tokens[f.body.clone()]
            .iter()
            .enumerate()
            .map(|(k, t)| (f.body.start + k, t))
            .filter(|(_, t)| t.kind.is_code())
            .collect()
    }

    /// Builds the entry environment from the function signature:
    /// `self` typed by the impl block, `name: Ty` params typed by
    /// annotation, destructuring patterns dropped to ⊤.
    fn param_env(&self, file_idx: usize, fn_idx: usize) -> Env {
        let file = &self.files[file_idx];
        let f = &self.parsed[file_idx].fns[fn_idx];
        let mut env = Env::new();
        // Locate the signature: code tokens from the `fn` keyword line
        // to the body start.
        let code: Vec<&Token> = file
            .tokens
            .iter()
            .take(f.body.start)
            .filter(|t| t.kind.is_code())
            .collect();
        // Find the param list: scan back from the body for the `(` that
        // follows the fn name (skip generics).
        let fn_pos = code.iter().rposition(|t| {
            file.tok_text(t) == "fn" && t.line == f.line && t.kind == TokenKind::Ident
        });
        let Some(fn_pos) = fn_pos else { return env };
        let mut j = fn_pos + 2; // past `fn name`
                                // Skip generic params.
        if code.get(j).is_some_and(|t| file.tok_text(t) == "<") {
            let mut d = 0i32;
            while j < code.len() {
                match file.tok_text(code[j]) {
                    "<" => d += 1,
                    ">" if file.tok_text(code[j - 1]) != "-" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if code.get(j).is_none_or(|t| file.tok_text(t) != "(") {
            return env;
        }
        // Split params on depth-1 commas.
        let mut d = 0i32;
        let mut start = j + 1;
        let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
        while j < code.len() {
            match file.tok_text(code[j]) {
                "(" | "[" | "<" => d += 1,
                ")" | "]" => {
                    d -= 1;
                    if d == 0 {
                        if j > start {
                            groups.push(start..j);
                        }
                        break;
                    }
                }
                ">" if file.tok_text(code[j - 1]) != "-" => d -= 1,
                "," if d == 1 => {
                    groups.push(start..j);
                    start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        for g in groups {
            let toks = &code[g];
            let mut i = 0;
            while i < toks.len()
                && (matches!(file.tok_text(toks[i]), "&" | "mut")
                    || toks[i].kind == TokenKind::Lifetime)
            {
                i += 1;
            }
            let Some(t) = toks.get(i) else { continue };
            let name = file.tok_text(t);
            if name == "self" {
                let mut me = Value::top();
                if let Some((ty, _)) = f.qual.rsplit_once("::") {
                    me.tyname = Some(ty.rsplit("::").next().unwrap_or(ty).to_string());
                }
                env.insert("self".to_string(), me);
                continue;
            }
            if t.kind != TokenKind::Ident || toks.get(i + 1).is_none_or(|t| file.tok_text(t) != ":")
            {
                continue; // destructuring pattern: stays ⊤ by absence
            }
            let mut ty_start = i + 2;
            while toks.get(ty_start).is_some_and(|t| {
                matches!(file.tok_text(t), "&" | "mut") || t.kind == TokenKind::Lifetime
            }) {
                ty_start += 1;
            }
            let ty_toks: Vec<&Token> = toks[ty_start..].to_vec();
            let ty = crate::dataflow::facts::ty_of_tokens(file, &ty_toks, &self.facts.consts);
            env.insert(name.to_string(), Value::of_ty(&ty));
        }
        env
    }

    /// Records a proof for a site token (no-op for non-sites and inside
    /// inlined callees). Repeated judgments combine conservatively: a
    /// site is safe only if every evaluation proved it.
    fn prove(&mut self, full_idx: usize, safe: bool, why: String) {
        if !self.record {
            return;
        }
        let Some(&site) = self.site_kinds.get(&full_idx) else {
            return;
        };
        self.proofs
            .entry(full_idx)
            .and_modify(|p| {
                if p.safe && !safe {
                    p.safe = false;
                    p.why = why.clone();
                }
            })
            .or_insert(SiteProof { site, safe, why });
    }

    fn burn(&mut self) -> bool {
        if self.fuel == 0 {
            return false;
        }
        self.fuel -= 1;
        true
    }
}

// The statement walker and expression evaluator are in `interp_exec.rs`
// (included below) to keep file sizes reviewable.
include!("interp_exec.rs");

#[cfg(test)]
mod tests {
    include!("interp_tests.rs");
}
