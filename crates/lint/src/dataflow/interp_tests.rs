// Included as the body of `mod tests` in interp.rs.

use super::*;
use crate::parse::parse;

fn analyze(src: &str, fn_name: &str) -> FnAnalysis {
    let files = vec![SourceFile::new("crates/core/src/t.rs", src.to_string())];
    let parsed: Vec<ParsedFile> = files
        .iter()
        .enumerate()
        .map(|(i, f)| parse(f, i))
        .collect();
    let facts = WorkspaceFacts::build(&files, &parsed);
    let fk = parsed[0]
        .fns
        .iter()
        .position(|f| f.name == fn_name)
        .unwrap_or_else(|| panic!("no fn named {fn_name}"));
    analyze_fn(&files, &parsed, &facts, 0, fk)
}

fn assert_all_safe(src: &str, fn_name: &str) {
    let a = analyze(src, fn_name);
    let bad: Vec<String> = a
        .proofs
        .values()
        .filter(|p| p.site.kind.profiled() && p.site.kind != SiteKind::Panic && !p.safe)
        .map(|p| format!("line {}: {:?}: {}", p.site.line + 1, p.site.kind, p.why))
        .collect();
    assert!(bad.is_empty(), "expected all safe, got:\n{}", bad.join("\n"));
    assert!(a.all_profiled_safe());
}

fn assert_some_unsafe(src: &str, fn_name: &str) {
    let a = analyze(src, fn_name);
    assert!(
        !a.all_profiled_safe(),
        "expected at least one unproven site, all were proven"
    );
}

#[test]
fn literal_arithmetic_is_safe() {
    assert_all_safe(
        "fn f() -> u64 { let a: u64 = 3; let b: u64 = 4; a + b }",
        "f",
    );
}

#[test]
fn typed_params_bound_products() {
    // 255 * 255 fits u32.
    assert_all_safe("fn f(x: u8, y: u8) -> u32 { x as u32 * y as u32 }", "f");
}

#[test]
fn unbounded_add_stays_unproven() {
    assert_some_unsafe("fn f(x: u64, y: u64) -> u64 { x + y }", "f");
}

#[test]
fn narrow_width_blocks_wide_sum() {
    // The same bound that passes for u32 must fail for u8.
    assert_some_unsafe("fn f(x: u8, y: u8) -> u8 { x * y }", "f");
}

#[test]
fn guard_refines_shift_amount() {
    assert_all_safe(
        "fn f(x: usize) -> u64 { if x < 64 { 1u64 << x } else { 0 } }",
        "f",
    );
}

#[test]
fn else_branch_gets_negated_guard() {
    assert_all_safe(
        "fn f(x: u64) -> u64 { if x >= 64 { 0 } else { 1u64 << x } }",
        "f",
    );
}

#[test]
fn shift_by_unbounded_variable_stays_unproven() {
    assert_some_unsafe("fn f(x: u64, s: u32) -> u64 { x << s }", "f");
}

#[test]
fn shift_width_uses_lhs_type() {
    assert_all_safe("fn f(x: u8) -> u8 { x << 7 }", "f");
    assert_some_unsafe("fn g(x: u8) -> u8 { x << 8 }", "g");
}

#[test]
fn array_literal_index_in_bounds() {
    assert_all_safe("fn f() -> u64 { let a = [1u64, 2, 3]; a[2] }", "f");
}

#[test]
fn unbounded_index_stays_unproven() {
    assert_some_unsafe("fn f(a: [u64; 4], i: usize) -> u64 { a[i] }", "f");
}

#[test]
fn modulo_bounds_index() {
    assert_all_safe("fn f(a: [u64; 4], i: usize) -> u64 { a[i % 4] }", "f");
}

#[test]
fn for_range_binder_bounds_index() {
    assert_all_safe(
        "fn f(a: [u64; 8]) -> u64 { let mut s = 0u64; for i in 0..8 { s = a[i]; } s }",
        "f",
    );
}

#[test]
fn division_guard_excludes_zero() {
    assert_all_safe("fn f(n: u64, d: u64) -> u64 { if d > 0 { n / d } else { 0 } }", "f");
}

#[test]
fn unguarded_division_stays_unproven() {
    assert_some_unsafe("fn f(n: u64, d: u64) -> u64 { n / d }", "f");
}

#[test]
fn literal_guard_orders_subtraction() {
    assert_all_safe("fn f(a: u64) -> u64 { if a >= 10 { a - 10 } else { 0 } }", "f");
}

#[test]
fn ident_vs_ident_comparison_is_not_relational() {
    // `a >= b` refines neither side against the other (the domains are
    // per-variable); the subtraction must stay unproven.
    assert_some_unsafe(
        "fn f(a: u32, b: u32) -> u32 { if a >= b { a - b } else { 0 } }",
        "f",
    );
}

#[test]
fn wrapping_result_is_width_bounded() {
    assert_all_safe("fn f(c: u64) -> u64 { let n = c.wrapping_add(1); n % 8 }", "f");
}

#[test]
fn assert_condition_is_harvested() {
    assert_all_safe("fn f(x: u64) -> u64 { assert!(x < 16); 1u64 << x }", "f");
}

#[test]
fn debug_assert_is_not_harvested() {
    // `debug_assert!` is compiled out in release builds, so it proves
    // nothing about the following code.
    assert_some_unsafe("fn f(x: u64) -> u64 { debug_assert!(x < 16); 1u64 << x }", "f");
}

#[test]
fn accessor_inlining_bounds_result() {
    assert_all_safe(
        "struct P { v: u64 }\n\
         impl P {\n\
             fn val(&self) -> u64 { self.v % 8 }\n\
         }\n\
         fn f(p: P) -> u64 { 1u64 << p.val() }",
        "f",
    );
}

#[test]
fn constructor_relation_orders_field_subtraction() {
    assert_all_safe(
        "struct C { lo: u64, hi: u64 }\n\
         impl C {\n\
             pub fn new(lo: u64, hi: u64) -> C { assert!(lo <= hi); C { lo, hi } }\n\
         }\n\
         fn f(c: C) -> u64 { c.hi - c.lo }",
        "f",
    );
}

#[test]
fn relation_requires_same_instance() {
    assert_some_unsafe(
        "struct C { lo: u64, hi: u64 }\n\
         impl C {\n\
             pub fn new(lo: u64, hi: u64) -> C { assert!(lo <= hi); C { lo, hi } }\n\
         }\n\
         fn f(a: C, b: C) -> u64 { a.hi - b.lo }",
        "f",
    );
}

#[test]
fn match_arms_join_for_divisor() {
    assert_all_safe(
        "fn f(x: u8) -> u64 { let s = match x { 0 => 1u64, 1 => 2, _ => 3 }; 64 / s }",
        "f",
    );
}

#[test]
fn loop_widening_is_conservative() {
    // `i` is widened to its full type range at the loop head, so the
    // increment cannot be proven overflow-free.
    assert_some_unsafe(
        "fn f() -> u64 { let mut i = 0u64; loop { i += 1; if i > 10 { break; } } i }",
        "f",
    );
}

#[test]
fn panic_sites_are_never_discharged() {
    let a = analyze("fn f(x: Option<u64>) -> u64 { x.unwrap() }", "f");
    let panics: Vec<_> = a
        .proofs
        .values()
        .filter(|p| p.site.kind == SiteKind::Panic)
        .collect();
    assert_eq!(panics.len(), 1);
    assert!(!panics[0].safe);
    // A panic site alone does not block `all_profiled_safe` (that is
    // gated separately on the `p` count).
    assert!(a.all_profiled_safe());
}

#[test]
fn every_enumerated_site_gets_a_proof() {
    let src = "fn f(a: [u64; 4], x: u64, s: u32) -> u64 { a[0] + (x << s) - 1 }";
    let files = vec![SourceFile::new("crates/core/src/t.rs", src.to_string())];
    let parsed: Vec<ParsedFile> = files
        .iter()
        .enumerate()
        .map(|(i, f)| parse(f, i))
        .collect();
    let f = &parsed[0].fns[0];
    let n_sites = sites::enumerate(&files[0], f).len();
    let facts = WorkspaceFacts::build(&files, &parsed);
    let a = analyze_fn(&files, &parsed, &facts, 0, 0);
    assert_eq!(a.proofs.len(), n_sites);
    assert!(n_sites >= 4, "expected index, add, shift, sub sites");
}

#[test]
fn else_if_chain_in_let_initializer_is_walked() {
    // The chain's depth-0 `else` tokens must not be mistaken for a
    // `let ... else` diverging block, which would truncate evaluation
    // after the first branch and leave the later arms' sites unproven.
    let a = analyze(
        "fn f(a: [u64; 4], c: bool, d: bool) -> u64 {\n\
             let v = if c { a[0] } else if d { a[1] } else { a[2] };\n\
             v\n\
         }",
        "f",
    );
    assert_eq!(a.proofs.len(), 3);
    let unreached: Vec<&SiteProof> = a.proofs.values().filter(|p| !p.safe).collect();
    assert!(unreached.is_empty(), "{unreached:?}");
}

#[test]
fn conjoined_ctor_asserts_close_over_relations() {
    // `sb < cb && cb <= 32` must bound BOTH fields: cb directly, sb
    // through the relation closure (sb <= 31), mirroring SsvcConfig.
    let src = "struct C { cb: u32, sb: u32 }\n\
         impl C {\n\
             pub fn new(cb: u32, sb: u32) -> Self {\n\
                 assert!(sb > 0 && sb < cb && cb <= 32, \"need {sb} < {cb}\");\n\
                 C { cb, sb }\n\
             }\n\
             pub const fn lsb(self) -> u32 { self.cb - self.sb }\n\
         }\n\
         fn f(c: C) -> u64 { 1u64 << c.sb }\n\
         fn g(c: C) -> u64 { 1u64 << c.lsb() }";
    let a = analyze(src, "f");
    assert!(a.all_profiled_safe(), "{:?}", a.proofs);
    let b = analyze(src, "g");
    assert!(b.all_profiled_safe(), "{:?}", b.proofs);
}
