//! The checked-in finding baseline: legacy findings recorded by
//! fingerprint so they stop blocking CI while anything *new* still
//! fails it.
//!
//! Format — one finding per line, tab-separated:
//!
//! ```text
//! <rule>\t<file>\t<fingerprint hex16>\t<informational excerpt>
//! ```
//!
//! Only the first three fields are semantic; the excerpt exists so
//! humans can review the file in place. Lines are sorted, `#` starts a
//! comment, and the file is regenerated wholesale by
//! `cargo xtask lint --update-baseline`.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;

/// The canonical baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// A parsed baseline: the set of grandfathered fingerprints.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, u64)>,
}

impl Baseline {
    /// Parses baseline text. Unparseable lines are ignored (an edited
    /// baseline should fail *open* into stricter linting, not panic).
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut entries = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(rule), Some(file), Some(fp)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if let Ok(fp) = u64::from_str_radix(fp.trim(), 16) {
                entries.insert((rule.to_string(), file.to_string(), fp));
            }
        }
        Baseline { entries }
    }

    /// The number of grandfathered findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `diag` is grandfathered.
    #[must_use]
    pub fn contains(&self, diag: &Diagnostic) -> bool {
        self.entries
            .contains(&(diag.rule.to_string(), diag.file.clone(), diag.fingerprint()))
    }

    /// Marks every grandfathered finding in `diags` as baselined.
    pub fn apply(&self, diags: &mut [Diagnostic]) {
        for d in diags {
            d.baselined = self.contains(d);
        }
    }
}

/// Renders `diags` as a fresh baseline file (sorted, commented header).
#[must_use]
pub fn render(diags: &[Diagnostic]) -> String {
    let mut lines: Vec<String> = diags
        .iter()
        .map(|d| {
            let excerpt: String = d.anchor.chars().take(80).collect();
            format!(
                "{}\t{}\t{:016x}\t{}",
                d.rule,
                d.file,
                d.fingerprint(),
                excerpt.replace(['\t', '\n'], " ")
            )
        })
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# ssq-lint baseline: findings grandfathered when the token-aware engine landed.\n\
         # New findings are NOT covered and fail `cargo xtask lint`.\n\
         # Regenerate intentionally with: cargo xtask lint --update-baseline\n\
         # Format: rule<TAB>file<TAB>fingerprint<TAB>excerpt (first 3 fields semantic)\n\
         #\n\
         # Shrink policy: this file may only lose entries over time. Remove an entry\n\
         # when its site is (a) fixed at the source, (b) discharged by the dataflow\n\
         # layer (the proof appears in the `discharged` section of `--json`), or\n\
         # (c) waived in-source with an evidence comment. `scripts/check.sh` fails\n\
         # any change that *grows* the entry count versus the committed copy.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn diag(rule: &'static str, file: &str, anchor: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
            anchor: anchor.to_string(),
            baselined: false,
        }
    }

    #[test]
    fn round_trip_marks_only_recorded_findings() {
        let old = vec![diag("no-unwrap", "a.rs", "x"), diag("no-todo", "b.rs", "y")];
        let baseline = Baseline::parse(&render(&old));
        assert_eq!(baseline.len(), 2);
        let mut now = vec![
            diag("no-unwrap", "a.rs", "x"),
            diag("no-unwrap", "a.rs", "brand new"),
        ];
        baseline.apply(&mut now);
        assert!(now[0].baselined);
        assert!(!now[1].baselined);
    }

    #[test]
    fn comments_blanks_and_garbage_are_ignored() {
        let b = Baseline::parse("# header\n\nnot a baseline line\nrule\tfile\tnothex\tmeh\n");
        assert!(b.is_empty());
    }

    #[test]
    fn excerpt_field_is_informational_only() {
        let recorded = render(&[diag("no-unwrap", "a.rs", "anchor text")]);
        let edited = recorded.replace("anchor text", "reworded by a human");
        let b = Baseline::parse(&edited);
        assert!(b.contains(&diag("no-unwrap", "a.rs", "anchor text")));
    }
}
