//! An in-tree Rust lexer: the token foundation of the lint engine.
//!
//! The workspace builds fully offline, so instead of `syn`/`proc-macro2`
//! this module hand-lexes the subset of Rust's lexical grammar the lint
//! rules need to be exact on this codebase: nested block comments, all
//! string flavors (plain, byte, C, and raw with hash fences), character
//! literals vs. lifetimes vs. loop labels, raw identifiers, and numeric
//! literals (so `1..2` never fuses into a float).
//!
//! Every byte of the input is covered by exactly one token or by
//! inter-token whitespace; tokens carry byte spans and 0-based line
//! numbers, so downstream passes can always recover the original text
//! and report precise locations. Comments and literals are real tokens
//! (not stripped), which is what kills the regex engine's
//! false-positive class by construction: a rule that inspects only
//! [`TokenKind::is_code`] tokens cannot fire inside a string or a
//! comment, and the waiver collector reads *only* comment tokens, so a
//! waiver marker quoted inside a string literal no longer creates a
//! phantom suppression.

/// What a token is, lexically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `decide_output`, `r#match`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A character literal (`'x'`, `'\n'`, `'\u{1F600}'`) or byte
    /// character (`b'x'`).
    Char,
    /// A string literal of any flavor: `"…"`, `b"…"`, `c"…"`,
    /// `r"…"`, `r#"…"#`, `br#"…"#`, `cr"…"`.
    Str,
    /// A numeric literal (`42`, `0xFF_u64`, `1.5e-3`).
    Num,
    /// A `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment, nesting handled (including `/** … */`).
    BlockComment,
    /// A single punctuation character (`.`, `(`, `<`, `#`, …).
    Punct,
}

impl TokenKind {
    /// Whether this token participates in code (not a comment or a
    /// string/char literal). Rules that scan only code tokens cannot
    /// fire inside masked regions by construction.
    #[must_use]
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Str | TokenKind::Char
        )
    }

    /// Whether this token is a comment.
    #[must_use]
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: kind plus location.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 0-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a complete token stream.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades to best-effort tokens that still cover the
/// text, because a lint pass must report on in-progress code rather
/// than refuse it.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 0,
        out: Vec::with_capacity(src.len() / 4),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident_or_prefixed(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: usize) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line: start_line,
        });
    }

    /// Advances one position, tracking line breaks.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, start_line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, start, start_line);
    }

    /// A plain (escaped) string body starting at the opening quote;
    /// `start` is where the token began (it may include a `b`/`c`
    /// prefix consumed by the caller).
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' if self.pos + 1 < self.bytes.len() => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Str, start, start_line);
    }

    /// A raw string body: `pos` sits at the first `#` or the opening
    /// quote; `start` covers the already-consumed `r`/`br`/`cr` prefix.
    fn raw_string(&mut self, start: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"'
                && self.bytes[self.pos + 1..]
                    .iter()
                    .take_while(|&&h| h == b'#')
                    .count()
                    >= hashes
            {
                self.pos += 1 + hashes;
                break;
            }
            self.bump();
        }
        self.push(TokenKind::Str, start, start_line);
    }

    /// Disambiguates `'a'` (char), `'a` (lifetime/label), and `'\n'`
    /// (escaped char). A `'` opens a char literal exactly when the
    /// quoted content closes with another `'` right after one character
    /// or escape; otherwise it is a lifetime.
    fn char_or_lifetime(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        let after = self.peek(1);
        let is_char = match after {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // `'x'` is a char; `'x` followed by anything else is a
                // lifetime or label (`''` never occurs in valid Rust).
                self.peek(2) == Some(b'\'')
            }
            Some(c) if c >= 0x80 => true, // multi-byte scalar: `'é'`
            _ => false,
        };
        if !is_char {
            // Lifetime: the quote plus an identifier.
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
            {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, start, start_line);
            return;
        }
        self.pos += 1; // opening quote
        if self.peek(0) == Some(b'\\') {
            // Escapes like `'\u{1F600}'` span to the closing quote.
            self.pos += 2;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.bump();
            }
        } else {
            // One (possibly multi-byte) character.
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| (c & 0b1100_0000) == 0b1000_0000)
            {
                self.pos += 1;
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        self.push(TokenKind::Char, start, start_line);
    }

    fn number(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        // Integer part, radix prefixes, suffixes: alphanumerics and
        // underscores all fold in (`0xFF_u64`).
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            // An exponent sign continues the literal: `1e-3`, `2.5E+9`.
            let c = self.bytes[self.pos];
            self.pos += 1;
            if (c == b'e' || c == b'E')
                && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                self.pos += 1;
            }
        }
        // A fraction only when a digit follows the dot — `1..2` stays
        // two integers — and never directly after a field-access dot,
        // so `x.0.1` lexes as two tuple indices, not `0.1`.
        let after_field_dot = self
            .out
            .last()
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text(self.src) == ".");
        if !after_field_dot
            && self.peek(0) == Some(b'.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                let c = self.bytes[self.pos];
                self.pos += 1;
                if (c == b'e' || c == b'E')
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 1;
                }
            }
        }
        self.push(TokenKind::Num, start, start_line);
    }

    /// An identifier — or one of the literal prefixes (`r"`, `br#"`,
    /// `b"`, `b'`, `c"`, `cr"`, `r#ident`).
    fn ident_or_prefixed(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.pos += 1;
        }
        let ident = &self.src[start..self.pos];
        match (ident, self.peek(0)) {
            ("r" | "br" | "cr", Some(b'"')) => self.raw_string(start),
            ("r" | "br" | "cr", Some(b'#')) => {
                // `r#"…"#` is a raw string; `r#ident` is a raw
                // identifier. Look past the hashes for the quote.
                let mut j = self.pos;
                while self.bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'"') {
                    self.raw_string(start);
                } else if ident == "r" {
                    // Raw identifier: consume `#` and the name.
                    self.pos += 1;
                    while self
                        .peek(0)
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                    {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Ident, start, start_line);
                } else {
                    self.push(TokenKind::Ident, start, start_line);
                }
            }
            ("b" | "c", Some(b'"')) => self.string(start),
            ("b", Some(b'\'')) => {
                // Byte char `b'x'` / `b'\n'`: reuse the char scanner by
                // rewinding its start to include the prefix.
                self.pos += 1; // the quote
                if self.peek(0) == Some(b'\\') {
                    self.pos += 2;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                        self.bump();
                    }
                } else {
                    self.pos += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                self.push(TokenKind::Char, start, start_line);
            }
            _ => self.push(TokenKind::Ident, start, start_line),
        }
    }

    fn punct(&mut self) {
        let (start, start_line) = (self.pos, self.line);
        // One full character (stray non-ASCII bytes outside identifiers
        // are tolerated, not split mid-scalar).
        let ch_len = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.pos += ch_len;
        self.push(TokenKind::Punct, start, start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn code_text(src: &str) -> String {
        lex(src)
            .into_iter()
            .filter(|t| t.kind.is_code())
            .map(|t| t.text(src))
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("fn f(x: u64) -> u64 { x + 0xFF_u64 }");
        assert!(toks.contains(&(TokenKind::Ident, "fn")));
        assert!(toks.contains(&(TokenKind::Num, "0xFF_u64")));
        assert!(toks.contains(&(TokenKind::Punct, "+")));
    }

    #[test]
    fn range_does_not_fuse_into_float() {
        let toks = kinds("for i in 1..20 {}");
        assert!(toks.contains(&(TokenKind::Num, "1")));
        assert!(toks.contains(&(TokenKind::Num, "20")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t.contains('.')));
    }

    #[test]
    fn floats_and_exponents_lex_whole() {
        let toks = kinds("let x = 1.5e-3 + 2.0E+9;");
        assert!(toks.contains(&(TokenKind::Num, "1.5e-3")));
        assert!(toks.contains(&(TokenKind::Num, "2.0E+9")));
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let toks = kinds("let y = x.0.1;");
        assert!(toks.contains(&(TokenKind::Num, "0")));
        assert!(toks.contains(&(TokenKind::Num, "1")));
    }

    #[test]
    fn line_and_nested_block_comments() {
        let src = "a // trailing .unwrap()\n/* outer /* inner */ still */ b";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::LineComment, "// trailing .unwrap()")));
        assert!(toks.contains(&(TokenKind::BlockComment, "/* outer /* inner */ still */")));
        assert_eq!(code_text(src), "a b");
    }

    #[test]
    fn strings_of_every_flavor_are_single_tokens() {
        for src in [
            "\"plain .unwrap()\"",
            "b\"bytes\"",
            "c\"cstr\"",
            "r\"raw\"",
            "r#\"fenced \" quote\"#",
            "br#\"raw bytes\"#",
            "cr\"raw c\"",
            "\"escaped \\\" quote\"",
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Str, "{src}");
            assert_eq!(toks[0].1, src, "{src}");
        }
    }

    #[test]
    fn raw_string_fence_requires_matching_hashes() {
        let src = "r##\"inner \"# still inside\"## after";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, "r##\"inner \"# still inside\"##");
        assert!(toks.contains(&(TokenKind::Ident, "after")));
    }

    #[test]
    fn char_vs_lifetime_vs_label() {
        let src = "fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } g('x', '\\'', b'y') }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'outer")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\''")));
        assert!(toks.contains(&(TokenKind::Char, "b'y'")));
    }

    #[test]
    fn unicode_char_literal_and_escape() {
        let toks = kinds("let a = 'é'; let b = '\\u{1F600}';");
        assert!(toks.contains(&(TokenKind::Char, "'é'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\u{1F600}'")));
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds("let r#match = r#\"s\"#;");
        assert!(toks.contains(&(TokenKind::Ident, "r#match")));
        assert!(toks.contains(&(TokenKind::Str, "r#\"s\"#")));
    }

    #[test]
    fn identifier_ending_in_r_does_not_open_raw_string() {
        let toks = kinds("let wire = tracer \"s\"");
        assert!(toks.contains(&(TokenKind::Ident, "tracer")));
        assert!(toks.contains(&(TokenKind::Str, "\"s\"")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n\"two\nline\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text(src) == text).unwrap().line;
        assert_eq!(find("a"), 0);
        assert_eq!(find("\"two\nline\""), 1);
        assert_eq!(find("b"), 3);
        assert_eq!(find("e"), 4);
    }

    #[test]
    fn unterminated_string_still_covers_the_tail() {
        let toks = lex("let x = \"oops");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Str);
        assert_eq!(toks.last().unwrap().end, "let x = \"oops".len());
    }

    #[test]
    fn every_code_byte_is_covered_in_order() {
        let src = "fn f() { g(\"x\", 'y', 1.0); } // done";
        let toks = lex(src);
        let mut last = 0;
        for t in &toks {
            assert!(t.start >= last, "overlap at {t:?}");
            assert!(src[last..t.start].chars().all(char::is_whitespace));
            last = t.end;
        }
        assert!(src[last..].chars().all(char::is_whitespace));
    }
}
