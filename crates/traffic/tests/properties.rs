//! Randomized property tests over traffic sources and destination
//! patterns, driven by the in-tree PRNG so they run without external
//! crates.

use ssq_traffic::{
    Bernoulli, BitComplement, DestinationPattern, HotspotDest, OnOffBursty, Periodic, Saturating,
    Shuffle, Trace, TrafficSource, Transpose, UniformDest,
};
use ssq_types::rng::Xoshiro256StarStar;
use ssq_types::{Cycle, InputId};

fn measure(src: &mut dyn TrafficSource, cycles: u64) -> f64 {
    let flits: u64 = (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum();
    flits as f64 / cycles as f64
}

fn uniform_f64(rng: &mut Xoshiro256StarStar, lo: f64, hi: f64) -> f64 {
    lo + rng.f64() * (hi - lo)
}

/// Every source with a declared offered load hits it within sampling
/// noise over a long window.
#[test]
fn offered_load_is_accurate() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7a01);
    for _ in 0..32 {
        let rate = uniform_f64(&mut rng, 0.05, 0.95);
        let len = rng.range(1, 15);
        let seed = rng.next_u64();
        let mut src = Bernoulli::new(rate, len, seed);
        let measured = measure(&mut src, 100_000);
        let declared = src.offered_load().expect("bernoulli declares a load");
        assert!(
            (measured - declared).abs() < 0.03,
            "bernoulli measured {measured} declared {declared}"
        );
    }
}

/// Periodic sources are exact: flits = floor stepping of the period.
#[test]
fn periodic_is_exact() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7a02);
    for _ in 0..32 {
        let interval = rng.range(1, 499);
        let phase = rng.below(1000);
        let len = rng.range(1, 7);
        let mut src = Periodic::new(interval, phase, len);
        let cycles = interval * 100;
        let flits: u64 = (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum();
        assert_eq!(flits, 100 * len);
    }
}

/// Bursty sources respect their duty-cycle average.
#[test]
fn bursty_average_matches_duty() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7a03);
    for _ in 0..32 {
        let rate_on = uniform_f64(&mut rng, 0.2, 1.0);
        let p = uniform_f64(&mut rng, 0.005, 0.05);
        let seed = rng.next_u64();
        // Symmetric transitions => 50% duty cycle.
        let mut src = OnOffBursty::new(rate_on, 1, p, p, seed);
        let measured = measure(&mut src, 200_000);
        let expect = rate_on / 2.0;
        assert!(
            (measured - expect).abs() < 0.08,
            "bursty measured {measured} expected {expect}"
        );
    }
}

/// A saturating source delivers exactly one packet per poll.
#[test]
fn saturating_never_misses() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7a04);
    for _ in 0..32 {
        let len = rng.range(1, 31);
        let cycles = rng.range(1, 999);
        let mut src = Saturating::new(len);
        let flits: u64 = (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum();
        assert_eq!(flits, cycles * len);
    }
}

/// Trace replay emits exactly its schedule, regardless of polling
/// pattern alignment.
#[test]
fn trace_replay_is_faithful() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7a05);
    for _ in 0..32 {
        let gaps: Vec<u64> = (0..1 + rng.index(39)).map(|_| rng.range(1, 49)).collect();
        let mut cycle = 0;
        let events: Vec<(u64, u64)> = gaps
            .iter()
            .map(|&g| {
                cycle += g;
                (cycle, 1 + cycle % 4)
            })
            .collect();
        let expected: u64 = events.iter().map(|&(_, l)| l).sum();
        let mut src = Trace::new(events.clone());
        let horizon = cycle + 10;
        let flits: u64 = (0..=horizon).filter_map(|c| src.poll(Cycle::new(c))).sum();
        assert_eq!(flits, expected);
        assert_eq!(src.remaining(), 0);
    }
}

/// Permutation patterns are true permutations at any power-of-two /
/// square radix, and repeated queries are stable.
#[test]
fn permutations_are_bijective() {
    for pow in 1u32..6 {
        let radix = 1usize << pow;
        let mut patterns: Vec<Box<dyn DestinationPattern>> = vec![
            Box::new(BitComplement::new(radix)),
            Box::new(Shuffle::new(radix)),
        ];
        if ((radix as f64).sqrt() as usize).pow(2) == radix {
            patterns.push(Box::new(Transpose::new(radix)));
        }
        for p in &mut patterns {
            let mut seen = vec![false; radix];
            for i in 0..radix {
                let d = p.dest(InputId::new(i));
                assert!(!seen[d.index()], "output {} hit twice", d.index());
                seen[d.index()] = true;
                assert_eq!(p.dest(InputId::new(i)), d, "pattern not stable");
            }
        }
    }
}

/// Uniform and hotspot destinations always stay in range and follow
/// their distribution.
#[test]
fn random_patterns_stay_in_range() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7a06);
    for _ in 0..32 {
        let radix = 2 + rng.index(62);
        let hot_fraction = rng.f64();
        let seed = rng.next_u64();
        let mut uniform = UniformDest::new(radix, seed);
        let hot = ssq_types::OutputId::new(radix - 1);
        let mut hotspot = HotspotDest::new(radix, hot, hot_fraction, seed);
        let mut hot_hits = 0u32;
        let trials = 2_000;
        for i in 0..trials {
            let du = uniform.dest(InputId::new(i % radix));
            assert!(du.index() < radix);
            let dh = hotspot.dest(InputId::new(i % radix));
            assert!(dh.index() < radix);
            if dh == hot {
                hot_hits += 1;
            }
        }
        let frac = f64::from(hot_hits) / trials as f64;
        assert!(
            (frac - hot_fraction).abs() < 0.05,
            "hot fraction {frac} vs {hot_fraction}"
        );
    }
}
