//! Property-based tests over traffic sources and destination patterns.

use proptest::prelude::*;

use ssq_traffic::{
    Bernoulli, BitComplement, DestinationPattern, HotspotDest, OnOffBursty, Periodic, Saturating,
    Shuffle, Trace, TrafficSource, Transpose, UniformDest,
};
use ssq_types::{Cycle, InputId};

fn measure(src: &mut dyn TrafficSource, cycles: u64) -> f64 {
    let flits: u64 = (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum();
    flits as f64 / cycles as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every source with a declared offered load hits it within sampling
    /// noise over a long window.
    #[test]
    fn offered_load_is_accurate(
        rate in 0.05f64..0.95,
        len in 1u64..16,
        seed in any::<u64>(),
    ) {
        let mut src = Bernoulli::new(rate, len, seed);
        let measured = measure(&mut src, 100_000);
        let declared = src.offered_load().unwrap();
        prop_assert!((measured - declared).abs() < 0.03,
            "bernoulli measured {measured} declared {declared}");
    }

    /// Periodic sources are exact: flits = floor stepping of the period.
    #[test]
    fn periodic_is_exact(interval in 1u64..500, phase in 0u64..1000, len in 1u64..8) {
        let mut src = Periodic::new(interval, phase, len);
        let cycles = interval * 100;
        let flits: u64 = (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum();
        prop_assert_eq!(flits, 100 * len);
    }

    /// Bursty sources respect their duty-cycle average.
    #[test]
    fn bursty_average_matches_duty(
        rate_on in 0.2f64..1.0,
        p in 0.005f64..0.05,
        seed in any::<u64>(),
    ) {
        // Symmetric transitions => 50% duty cycle.
        let mut src = OnOffBursty::new(rate_on, 1, p, p, seed);
        let measured = measure(&mut src, 200_000);
        let expect = rate_on / 2.0;
        prop_assert!((measured - expect).abs() < 0.08,
            "bursty measured {measured} expected {expect}");
    }

    /// A saturating source delivers exactly one packet per poll.
    #[test]
    fn saturating_never_misses(len in 1u64..32, cycles in 1u64..1000) {
        let mut src = Saturating::new(len);
        let flits: u64 = (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum();
        prop_assert_eq!(flits, cycles * len);
    }

    /// Trace replay emits exactly its schedule, regardless of polling
    /// pattern alignment.
    #[test]
    fn trace_replay_is_faithful(gaps in prop::collection::vec(1u64..50, 1..40)) {
        let mut cycle = 0;
        let events: Vec<(u64, u64)> = gaps
            .iter()
            .map(|&g| {
                cycle += g;
                (cycle, 1 + cycle % 4)
            })
            .collect();
        let expected: u64 = events.iter().map(|&(_, l)| l).sum();
        let mut src = Trace::new(events.clone());
        let horizon = cycle + 10;
        let flits: u64 = (0..=horizon).filter_map(|c| src.poll(Cycle::new(c))).sum();
        prop_assert_eq!(flits, expected);
        prop_assert_eq!(src.remaining(), 0);
    }

    /// Permutation patterns are true permutations at any power-of-two /
    /// square radix, and repeated queries are stable.
    #[test]
    fn permutations_are_bijective(pow in 1u32..6) {
        let radix = 1usize << pow;
        let mut patterns: Vec<Box<dyn DestinationPattern>> = vec![
            Box::new(BitComplement::new(radix)),
            Box::new(Shuffle::new(radix)),
        ];
        if ((radix as f64).sqrt() as usize).pow(2) == radix {
            patterns.push(Box::new(Transpose::new(radix)));
        }
        for p in &mut patterns {
            let mut seen = vec![false; radix];
            for i in 0..radix {
                let d = p.dest(InputId::new(i));
                prop_assert!(!seen[d.index()], "output {} hit twice", d.index());
                seen[d.index()] = true;
                prop_assert_eq!(p.dest(InputId::new(i)), d, "pattern not stable");
            }
        }
    }

    /// Uniform and hotspot destinations always stay in range and follow
    /// their distribution.
    #[test]
    fn random_patterns_stay_in_range(
        radix in 2usize..64,
        hot_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut uniform = UniformDest::new(radix, seed);
        let hot = ssq_types::OutputId::new(radix - 1);
        let mut hotspot = HotspotDest::new(radix, hot, hot_fraction, seed);
        let mut hot_hits = 0u32;
        let trials = 2_000;
        for i in 0..trials {
            let du = uniform.dest(InputId::new(i % radix));
            prop_assert!(du.index() < radix);
            let dh = hotspot.dest(InputId::new(i % radix));
            prop_assert!(dh.index() < radix);
            if dh == hot {
                hot_hits += 1;
            }
        }
        let frac = f64::from(hot_hits) / trials as f64;
        // Hot hits = declared fraction + uniform spillover share.
        let expect = hot_fraction + (1.0 - hot_fraction) / (radix - 1) as f64 * 0.0;
        prop_assert!((frac - hot_fraction).abs() < 0.05 + expect,
            "hot fraction {frac} vs {hot_fraction}");
    }
}
