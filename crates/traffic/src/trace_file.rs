//! A plain-text trace format for capturing and replaying workloads.
//!
//! Each line is one packet injection:
//!
//! ```text
//! # cycle input output class len_flits
//! 0      2     5      GB    8
//! 17     2     5      GB    8
//! 40     0     5      GL    1
//! ```
//!
//! `#`-prefixed lines and blank lines are ignored. The format is stable,
//! diff-friendly, and easy to produce from any other simulator or from a
//! captured delivery log, making experiments portable across tools.
//!
//! [`TraceFile::into_injectors`] converts a trace into ready-to-attach
//! [`Injector`]s — one per `(input, class)` pair, each built from a
//! [`Trace`] source and a [`SequenceDest`] pattern that replays the
//! recorded destinations in order.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use ssq_types::{InputId, OutputId, TrafficClass};

use crate::{DestinationPattern, Injector, Trace};

/// One recorded packet injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// Source input port.
    pub input: InputId,
    /// Destination output port.
    pub output: OutputId,
    /// QoS class.
    pub class: TrafficClass,
    /// Packet length in flits.
    pub len_flits: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.cycle,
            self.input.index(),
            self.output.index(),
            self.class.label(),
            self.len_flits
        )
    }
}

/// Error from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending input line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// A parsed workload trace: events sorted by cycle.
///
/// # Examples
///
/// ```
/// use ssq_traffic::TraceFile;
///
/// let text = "\
/// 0  2 5 GB 8
/// 17 2 5 GB 8
/// 40 0 5 GL 1
/// ";
/// let trace: TraceFile = text.parse()?;
/// assert_eq!(trace.len(), 3);
/// // Round trip.
/// let reparsed: TraceFile = trace.to_string().parse()?;
/// assert_eq!(trace, reparsed);
/// # Ok::<(), ssq_traffic::ParseTraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceFile {
    events: Vec<TraceEvent>,
}

impl TraceFile {
    /// Builds a trace from events (sorted by cycle automatically; the
    /// sort is stable, preserving same-cycle order).
    #[must_use]
    pub fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.cycle);
        TraceFile { events }
    }

    /// The events, ascending by cycle.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Converts the trace into injectors, one per `(input, class)` pair
    /// present in the trace (a port replays each class stream
    /// independently, matching the per-class buffering of the switch).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] (with a pseudo line number of 0) if
    /// any `(input, class)` stream carries two packets in one cycle —
    /// an input channel cannot accept more than one packet per cycle.
    pub fn into_injectors(self) -> Result<Vec<Injector>, ParseTraceError> {
        use std::collections::BTreeMap;
        /// Per-(input, class) stream: the (cycle, len) schedule plus the
        /// destination sequence.
        type Stream = (Vec<(u64, u64)>, VecDeque<OutputId>);
        let mut groups: BTreeMap<(usize, u8), Stream> = BTreeMap::new();
        for e in &self.events {
            let key = (e.input.index(), e.class.priority());
            let entry = groups.entry(key).or_default();
            if let Some(&(last, _)) = entry.0.last() {
                if last == e.cycle {
                    return Err(ParseTraceError::new(
                        0,
                        format!(
                            "input {} injects two {} packets at cycle {}",
                            e.input, e.class, e.cycle
                        ),
                    ));
                }
            }
            entry.0.push((e.cycle, e.len_flits));
            entry.1.push_back(e.output);
        }
        Ok(groups
            .into_iter()
            .map(|((input, priority), (schedule, dests))| {
                let class = match priority {
                    0 => TrafficClass::BestEffort,
                    1 => TrafficClass::GuaranteedBandwidth,
                    _ => TrafficClass::GuaranteedLatency,
                };
                Injector::new(
                    Box::new(Trace::new(schedule)),
                    Box::new(SequenceDest::new(dests)),
                    class,
                )
                .for_input(InputId::new(input))
            })
            .collect())
    }
}

impl TraceFile {
    /// Merges another trace into this one (stable by cycle; same-cycle
    /// events keep `self` first).
    ///
    /// # Examples
    ///
    /// ```
    /// use ssq_traffic::TraceFile;
    ///
    /// let a: TraceFile = "0 0 1 GB 4".parse()?;
    /// let b: TraceFile = "5 1 1 BE 2".parse()?;
    /// let merged = a.merged(b);
    /// assert_eq!(merged.len(), 2);
    /// # Ok::<(), ssq_traffic::ParseTraceError>(())
    /// ```
    #[must_use]
    pub fn merged(mut self, other: TraceFile) -> TraceFile {
        self.events.extend(other.events);
        TraceFile::from_events(self.events)
    }

    /// Keeps only the events matching `predicate` — slice a workload by
    /// class, port, or length without re-generating it.
    ///
    /// # Examples
    ///
    /// ```
    /// use ssq_traffic::TraceFile;
    /// use ssq_types::TrafficClass;
    ///
    /// let t: TraceFile = "0 0 1 GB 4\n1 0 1 GL 1".parse()?;
    /// let gl_only = t.filtered(|e| e.class == TrafficClass::GuaranteedLatency);
    /// assert_eq!(gl_only.len(), 1);
    /// # Ok::<(), ssq_traffic::ParseTraceError>(())
    /// ```
    #[must_use]
    pub fn filtered(self, predicate: impl FnMut(&TraceEvent) -> bool) -> TraceFile {
        let mut predicate = predicate;
        TraceFile {
            events: self.events.into_iter().filter(|e| predicate(e)).collect(),
        }
    }

    /// Keeps the events in `[start, end)` cycles and rebases them so the
    /// window starts at cycle 0 — extract a steady-state excerpt from a
    /// long capture.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    #[must_use]
    pub fn window(self, start: u64, end: u64) -> TraceFile {
        assert!(start < end, "empty window {start}..{end}");
        TraceFile {
            events: self
                .events
                .into_iter()
                .filter(|e| (start..end).contains(&e.cycle))
                .map(|mut e| {
                    e.cycle -= start;
                    e
                })
                .collect(),
        }
    }

    /// Total flits in the trace.
    #[must_use]
    pub fn total_flits(&self) -> u64 {
        self.events.iter().map(|e| e.len_flits).sum()
    }

    /// Offered load in flits/cycle over the trace's span (zero for traces
    /// shorter than two cycles).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) if last.cycle > first.cycle => {
                self.total_flits() as f64 / (last.cycle - first.cycle + 1) as f64
            }
            _ => 0.0,
        }
    }
}

impl FromStr for TraceFile {
    type Err = ParseTraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 5 {
                return Err(ParseTraceError::new(
                    line_no,
                    format!("expected 5 fields, found {}", fields.len()),
                ));
            }
            let parse_num = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|_| ParseTraceError::new(line_no, format!("invalid {what} {s:?}")))
            };
            let cycle = parse_num(fields[0], "cycle")?;
            let input = parse_num(fields[1], "input")? as usize;
            let output = parse_num(fields[2], "output")? as usize;
            let class = match fields[3] {
                "BE" => TrafficClass::BestEffort,
                "GB" => TrafficClass::GuaranteedBandwidth,
                "GL" => TrafficClass::GuaranteedLatency,
                other => {
                    return Err(ParseTraceError::new(
                        line_no,
                        format!("unknown class {other:?} (expected BE, GB, or GL)"),
                    ))
                }
            };
            let len_flits = parse_num(fields[4], "length")?;
            if len_flits == 0 {
                return Err(ParseTraceError::new(line_no, "zero-length packet"));
            }
            events.push(TraceEvent {
                cycle,
                input: InputId::new(input),
                output: OutputId::new(output),
                class,
                len_flits,
            });
        }
        Ok(TraceFile::from_events(events))
    }
}

impl fmt::Display for TraceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# cycle input output class len_flits")?;
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Replays a fixed sequence of destinations, one per generated packet.
///
/// Used by [`TraceFile::into_injectors`]; panics if asked for more
/// destinations than were recorded, which would mean the paired source
/// produced more packets than the trace contains — a logic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceDest {
    remaining: VecDeque<OutputId>,
}

impl SequenceDest {
    /// Creates the pattern from the recorded destination sequence.
    #[must_use]
    pub fn new(remaining: VecDeque<OutputId>) -> Self {
        SequenceDest { remaining }
    }

    /// Destinations not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining.len()
    }
}

impl DestinationPattern for SequenceDest {
    fn dest(&mut self, _input: InputId) -> OutputId {
        self.remaining
            .pop_front()
            .expect("sequence pattern exhausted: source outran its trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_types::Cycle;

    const SAMPLE: &str = "\
# a comment
0  2 5 GB 8

17 2 5 GB 8
40 0 5 GL 1
12 1 3 BE 4
";

    #[test]
    fn parses_and_sorts() {
        let trace: TraceFile = SAMPLE.parse().unwrap();
        assert_eq!(trace.len(), 4);
        let cycles: Vec<u64> = trace.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 12, 17, 40]);
        assert_eq!(trace.events()[1].class, TrafficClass::BestEffort);
    }

    #[test]
    fn display_round_trips() {
        let trace: TraceFile = SAMPLE.parse().unwrap();
        let reparsed: TraceFile = trace.to_string().parse().unwrap();
        assert_eq!(trace, reparsed);
    }

    #[test]
    fn field_count_errors_carry_line_numbers() {
        let err = "0 1 2 GB".parse::<TraceFile>().unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("5 fields"));

        let err = "0 1 2 GB 8\nbogus line here also x"
            .parse::<TraceFile>()
            .unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn bad_class_and_zero_length_rejected() {
        assert!("0 1 2 XX 8".parse::<TraceFile>().is_err());
        assert!("0 1 2 GB 0".parse::<TraceFile>().is_err());
        assert!("x 1 2 GB 8".parse::<TraceFile>().is_err());
    }

    #[test]
    fn injectors_replay_the_trace_exactly() {
        let trace: TraceFile = SAMPLE.parse().unwrap();
        let mut injectors = trace.into_injectors().unwrap();
        // Groups: (0, GL), (1, BE), (2, GB) — BTreeMap order.
        assert_eq!(injectors.len(), 3);
        let mut fired = Vec::new();
        for c in 0..=40u64 {
            for inj in &mut injectors {
                if let Some(p) = inj.poll(Cycle::new(c)) {
                    fired.push((
                        c,
                        inj.input().index(),
                        p.output.index(),
                        p.class,
                        p.len_flits,
                    ));
                }
            }
        }
        assert_eq!(
            fired,
            vec![
                (0, 2, 5, TrafficClass::GuaranteedBandwidth, 8),
                (12, 1, 3, TrafficClass::BestEffort, 4),
                (17, 2, 5, TrafficClass::GuaranteedBandwidth, 8),
                (40, 0, 5, TrafficClass::GuaranteedLatency, 1),
            ]
        );
    }

    #[test]
    fn same_cycle_same_stream_rejected() {
        let trace: TraceFile = "5 0 1 GB 2\n5 0 2 GB 2".parse().unwrap();
        let err = trace.into_injectors().unwrap_err();
        assert!(err.to_string().contains("two GB packets"));
    }

    #[test]
    fn same_cycle_different_classes_allowed() {
        let trace: TraceFile = "5 0 1 GB 2\n5 0 2 GL 1".parse().unwrap();
        assert_eq!(trace.into_injectors().unwrap().len(), 2);
    }

    #[test]
    fn merged_traces_interleave_by_cycle() {
        let a: TraceFile = "0 0 1 GB 4\n10 0 1 GB 4".parse().unwrap();
        let b: TraceFile = "5 1 2 BE 2".parse().unwrap();
        let m = a.merged(b);
        let cycles: Vec<u64> = m.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 5, 10]);
        assert_eq!(m.total_flits(), 10);
    }

    #[test]
    fn filtered_keeps_matching_events() {
        let t: TraceFile = SAMPLE.parse().unwrap();
        let gb = t
            .clone()
            .filtered(|e| e.class == TrafficClass::GuaranteedBandwidth);
        assert_eq!(gb.len(), 2);
        let none = t.filtered(|_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn window_rebases_cycles() {
        let t: TraceFile = SAMPLE.parse().unwrap(); // cycles 0, 12, 17, 40
        let w = t.window(10, 20);
        let cycles: Vec<u64> = w.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 7]);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn window_rejects_inverted_range() {
        let t: TraceFile = SAMPLE.parse().unwrap();
        let _ = t.window(20, 20);
    }

    #[test]
    fn offered_load_over_span() {
        let t: TraceFile = "0 0 1 GB 4\n9 0 1 GB 4".parse().unwrap();
        assert!((t.offered_load() - 0.8).abs() < 1e-12);
        let single: TraceFile = "5 0 1 GB 4".parse().unwrap();
        assert_eq!(single.offered_load(), 0.0);
    }

    /// Seeded corruption fuzz: whatever a damaged capture file looks
    /// like — flipped bytes, truncations, spliced or duplicated lines —
    /// the replay path either parses it or returns a structured
    /// [`ParseTraceError`] pointing at a real line. It never panics.
    #[test]
    fn corrupted_traces_never_panic_and_errors_carry_real_lines() {
        use ssq_types::rng::Xoshiro256StarStar;

        let pristine: TraceFile = SAMPLE.parse().unwrap();
        let rendered = pristine.to_string();
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xFA_075);
        for _ in 0..500 {
            let mut bytes = rendered.clone().into_bytes();
            for _ in 0..=rng.index(4) {
                match rng.index(5) {
                    // Flip one byte to a random printable character.
                    0 => {
                        let at = rng.index(bytes.len());
                        bytes[at] = 0x20 + rng.below(0x5f) as u8;
                    }
                    // Delete one byte.
                    1 => {
                        let at = rng.index(bytes.len());
                        bytes.remove(at);
                    }
                    // Truncate mid-file (torn write).
                    2 => bytes.truncate(rng.index(bytes.len() + 1)),
                    // Duplicate a line (double flush).
                    3 => {
                        let text = String::from_utf8_lossy(&bytes).into_owned();
                        let lines: Vec<&str> = text.lines().collect();
                        if !lines.is_empty() {
                            let at = rng.index(lines.len());
                            let mut out = lines.clone();
                            out.insert(at, lines[at]);
                            bytes = out.join("\n").into_bytes();
                        }
                    }
                    // Splice in a junk line.
                    _ => {
                        let junk = match rng.index(4) {
                            0 => "99 99 99 ZZ 99",
                            1 => "not a trace line",
                            2 => "1 2 3 GB",
                            _ => "18446744073709551616 0 0 GB 8", // u64::MAX + 1
                        };
                        let at = rng.index(bytes.len() + 1);
                        let mut spliced = bytes[..at].to_vec();
                        spliced.extend_from_slice(b"\n");
                        spliced.extend_from_slice(junk.as_bytes());
                        spliced.extend_from_slice(b"\n");
                        spliced.extend_from_slice(&bytes[at..]);
                        bytes = spliced;
                    }
                }
                if bytes.is_empty() {
                    bytes.push(b'\n');
                }
            }
            let text = String::from_utf8_lossy(&bytes).into_owned();
            match text.parse::<TraceFile>() {
                Ok(trace) => {
                    // A parseable corruption must still replay cleanly
                    // or be rejected loudly downstream.
                    let _ = trace.into_injectors();
                }
                Err(e) => {
                    let lines = text.lines().count();
                    assert!(
                        (1..=lines.max(1)).contains(&e.line()),
                        "error line {} outside file of {lines} lines",
                        e.line()
                    );
                    // The error formats without panicking.
                    let _ = e.to_string();
                }
            }
        }
    }

    #[test]
    fn sequence_dest_pops_in_order() {
        let mut p = SequenceDest::new(VecDeque::from(vec![OutputId::new(3), OutputId::new(1)]));
        assert_eq!(p.dest(InputId::new(0)), OutputId::new(3));
        assert_eq!(p.dest(InputId::new(0)), OutputId::new(1));
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn sequence_dest_exhaustion_is_a_bug() {
        let mut p = SequenceDest::new(VecDeque::new());
        let _ = p.dest(InputId::new(0));
    }
}
