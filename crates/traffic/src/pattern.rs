//! Destination patterns: which output each packet targets.

use ssq_types::rng::Xoshiro256StarStar;
use ssq_types::{InputId, OutputId};

/// Chooses the destination output for each packet created at an input.
pub trait DestinationPattern {
    /// Picks the destination of the next packet from `input`.
    fn dest(&mut self, input: InputId) -> OutputId;
}

/// Every packet goes to one fixed output — the 8-inputs-to-1-output setup
/// of Figs. 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedDest {
    output: OutputId,
}

impl FixedDest {
    /// Creates a pattern targeting `output`.
    #[must_use]
    pub const fn new(output: OutputId) -> Self {
        FixedDest { output }
    }
}

impl DestinationPattern for FixedDest {
    fn dest(&mut self, _input: InputId) -> OutputId {
        self.output
    }
}

/// Uniform random destinations over `radix` outputs.
#[derive(Debug, Clone)]
pub struct UniformDest {
    radix: usize,
    rng: Xoshiro256StarStar,
}

impl UniformDest {
    /// Creates a uniform pattern over `radix` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is zero.
    #[must_use]
    pub fn new(radix: usize, seed: u64) -> Self {
        assert!(radix > 0, "radix must be positive");
        UniformDest {
            radix,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }
}

impl DestinationPattern for UniformDest {
    fn dest(&mut self, _input: InputId) -> OutputId {
        OutputId::new(self.rng.index(self.radix))
    }
}

/// Hotspot traffic: with probability `hot_fraction` the packet goes to
/// the hot output (a memory controller, in the paper's motivation),
/// otherwise uniformly elsewhere.
#[derive(Debug, Clone)]
pub struct HotspotDest {
    radix: usize,
    hot: OutputId,
    hot_fraction: f64,
    rng: Xoshiro256StarStar,
}

impl HotspotDest {
    /// Creates a hotspot pattern.
    ///
    /// # Panics
    ///
    /// Panics if `radix < 2`, the hot output is out of range, or
    /// `hot_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(radix: usize, hot: OutputId, hot_fraction: f64, seed: u64) -> Self {
        assert!(radix >= 2, "hotspot needs at least two outputs");
        assert!(hot.index() < radix, "hot output out of range");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction {hot_fraction} outside [0, 1]"
        );
        HotspotDest {
            radix,
            hot,
            hot_fraction,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }
}

impl DestinationPattern for HotspotDest {
    fn dest(&mut self, _input: InputId) -> OutputId {
        if self.rng.f64() < self.hot_fraction {
            return self.hot;
        }
        // Uniform over the other outputs.
        let pick = self.rng.index(self.radix - 1);
        let idx = if pick >= self.hot.index() {
            pick.saturating_add(1)
        } else {
            pick
        };
        OutputId::new(idx)
    }
}

/// Bit-complement permutation: input `i` sends to output `¬i` within the
/// radix (requires a power-of-two radix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitComplement {
    radix: usize,
}

impl BitComplement {
    /// Creates the pattern for a power-of-two `radix`.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is not a power of two.
    #[must_use]
    pub fn new(radix: usize) -> Self {
        assert!(
            radix.is_power_of_two(),
            "radix {radix} must be a power of two"
        );
        BitComplement { radix }
    }
}

impl DestinationPattern for BitComplement {
    fn dest(&mut self, input: InputId) -> OutputId {
        OutputId::new(!input.index() & (self.radix - 1))
    }
}

/// Transpose permutation: for a radix `k²` switch viewed as a `k × k`
/// grid of ports, `(r, c)` sends to `(c, r)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transpose {
    side: usize,
}

impl Transpose {
    /// Creates the pattern for a `radix = side²` switch.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is not a perfect square.
    #[must_use]
    pub fn new(radix: usize) -> Self {
        let side = (radix as f64).sqrt() as usize;
        assert_eq!(side * side, radix, "radix {radix} is not a perfect square");
        Transpose { side }
    }
}

impl DestinationPattern for Transpose {
    fn dest(&mut self, input: InputId) -> OutputId {
        let (r, c) = (input.index() / self.side, input.index() % self.side);
        OutputId::new(c * self.side + r)
    }
}

/// Perfect-shuffle permutation: rotate the port index left by one bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shuffle {
    bits: u32,
}

impl Shuffle {
    /// Creates the pattern for a power-of-two `radix`.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is not a power of two or is 1.
    #[must_use]
    pub fn new(radix: usize) -> Self {
        assert!(
            radix.is_power_of_two() && radix > 1,
            "radix {radix} must be a power of two > 1"
        );
        let bits = radix.trailing_zeros();
        assert!(bits >= 1 && bits <= 63, "shuffle rotate width out of range");
        Shuffle { bits }
    }
}

impl DestinationPattern for Shuffle {
    fn dest(&mut self, input: InputId) -> OutputId {
        let i = input.index();
        let mask = (1usize << self.bits) - 1;
        OutputId::new(((i << 1) | (i >> (self.bits - 1))) & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_hits_target() {
        let mut p = FixedDest::new(OutputId::new(5));
        for i in 0..8 {
            assert_eq!(p.dest(InputId::new(i)), OutputId::new(5));
        }
    }

    #[test]
    fn uniform_covers_all_outputs() {
        let mut p = UniformDest::new(8, 11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[p.dest(InputId::new(0)).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hotspot_fraction_is_respected() {
        let mut p = HotspotDest::new(16, OutputId::new(3), 0.5, 5);
        let hits = (0..10_000)
            .filter(|_| p.dest(InputId::new(1)) == OutputId::new(3))
            .count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn hotspot_cold_traffic_avoids_nothing() {
        // With fraction 0 the hot output must still be reachable? No — it
        // must never be chosen, and all others must be.
        let mut p = HotspotDest::new(4, OutputId::new(0), 0.0, 9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.dest(InputId::new(2)).index()] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let mut p = BitComplement::new(16);
        for i in 0..16 {
            let d = p.dest(InputId::new(i));
            let back = p.dest(InputId::new(d.index()));
            assert_eq!(back.index(), i);
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut p = Transpose::new(16);
        for i in 0..16 {
            let d = p.dest(InputId::new(i));
            assert_eq!(p.dest(InputId::new(d.index())).index(), i);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut p = Shuffle::new(8);
        let mut seen = [false; 8];
        for i in 0..8 {
            let d = p.dest(InputId::new(i)).index();
            assert!(!seen[d], "output {d} hit twice");
            seen[d] = true;
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bit_complement_rejects_odd_radix() {
        let _ = BitComplement::new(6);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn transpose_rejects_non_square() {
        let _ = Transpose::new(8);
    }
}
