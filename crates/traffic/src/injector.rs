//! One input port's complete traffic description.

use ssq_types::{Cycle, InputId, OutputId, TrafficClass};

use crate::{DestinationPattern, TrafficSource};

/// A packet the injector wants to create this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketIntent {
    /// Destination output port.
    pub output: OutputId,
    /// QoS class of the packet.
    pub class: TrafficClass,
    /// Packet length in flits.
    pub len_flits: u64,
}

/// Combines an arrival process, a destination pattern, and a QoS class
/// into the traffic of one input port.
///
/// A port can carry several injectors at once (e.g. a saturated GB flow
/// plus an infrequent GL interrupt source); the switch polls each.
///
/// # Examples
///
/// ```
/// use ssq_traffic::{Injector, Periodic, FixedDest};
/// use ssq_types::{Cycle, OutputId, TrafficClass};
///
/// let mut watchdog = Injector::new(
///     Box::new(Periodic::new(1000, 0, 1)),
///     Box::new(FixedDest::new(OutputId::new(0))),
///     TrafficClass::GuaranteedLatency,
/// );
/// assert!(watchdog.poll(Cycle::new(0)).is_some());
/// assert!(watchdog.poll(Cycle::new(1)).is_none());
/// ```
pub struct Injector {
    source: Box<dyn TrafficSource + Send + Sync>,
    pattern: Box<dyn DestinationPattern + Send + Sync>,
    class: TrafficClass,
    input: InputId,
}

impl Injector {
    /// Creates an injector. The owning input port is attached later with
    /// [`Injector::for_input`] (defaults to input 0). The boxed source
    /// and pattern are `Send + Sync` so a switch holding injectors can be
    /// snapshotted immutably across the parallel engine's decide shards.
    #[must_use]
    pub fn new(
        source: Box<dyn TrafficSource + Send + Sync>,
        pattern: Box<dyn DestinationPattern + Send + Sync>,
        class: TrafficClass,
    ) -> Self {
        Injector {
            source,
            pattern,
            class,
            input: InputId::new(0),
        }
    }

    /// Attaches the injector to a specific input port (used by patterns
    /// that depend on the source index, e.g. permutations).
    #[must_use]
    pub fn for_input(mut self, input: InputId) -> Self {
        self.input = input;
        self
    }

    /// The QoS class of the generated packets.
    #[must_use]
    pub const fn class(&self) -> TrafficClass {
        self.class
    }

    /// The input port this injector feeds.
    #[must_use]
    pub const fn input(&self) -> InputId {
        self.input
    }

    /// The long-run offered load, if the underlying source has one.
    #[must_use]
    pub fn offered_load(&self) -> Option<f64> {
        self.source.offered_load()
    }

    /// Polls the arrival process at `now`.
    pub fn poll(&mut self, now: Cycle) -> Option<PacketIntent> {
        let len_flits = self.source.poll(now)?;
        Some(PacketIntent {
            output: self.pattern.dest(self.input),
            class: self.class,
            len_flits,
        })
    }

    /// The source's next predictable arrival at or after `now`
    /// ([`TrafficSource::next_arrival`]); `None` when the source must be
    /// polled densely. Destination patterns are consulted only on
    /// arrival, so they never constrain the prediction.
    #[must_use]
    pub fn next_arrival(&self, now: Cycle) -> Option<Cycle> {
        self.source.next_arrival(now)
    }
}

impl std::fmt::Debug for Injector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("class", &self.class)
            .field("input", &self.input)
            .field("offered_load", &self.offered_load())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedDest, Saturating, Transpose};

    #[test]
    fn intent_carries_class_and_destination() {
        let mut inj = Injector::new(
            Box::new(Saturating::new(4)),
            Box::new(FixedDest::new(OutputId::new(2))),
            TrafficClass::BestEffort,
        );
        let p = inj.poll(Cycle::ZERO).unwrap();
        assert_eq!(p.output, OutputId::new(2));
        assert_eq!(p.class, TrafficClass::BestEffort);
        assert_eq!(p.len_flits, 4);
    }

    #[test]
    fn pattern_sees_the_attached_input() {
        let mut inj = Injector::new(
            Box::new(Saturating::new(1)),
            Box::new(Transpose::new(4)),
            TrafficClass::GuaranteedBandwidth,
        )
        .for_input(InputId::new(1)); // (0,1) -> (1,0) = output 2
        assert_eq!(inj.poll(Cycle::ZERO).unwrap().output, OutputId::new(2));
        assert_eq!(inj.input(), InputId::new(1));
    }

    #[test]
    fn offered_load_passthrough() {
        let inj = Injector::new(
            Box::new(Saturating::new(1)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::BestEffort,
        );
        assert_eq!(inj.offered_load(), Some(1.0));
    }

    #[test]
    fn debug_output_is_nonempty() {
        let inj = Injector::new(
            Box::new(Saturating::new(1)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedLatency,
        );
        assert!(format!("{inj:?}").contains("Injector"));
    }
}
