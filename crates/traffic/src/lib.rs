//! Workload generation for `swizzle-qos` simulations.
//!
//! The paper's experiments drive the switch with controlled injection
//! processes: Fig. 4 sweeps a Bernoulli injection rate from zero to one
//! flit/input/cycle; Fig. 5 uses saturated and *bursty* injection; the GL
//! experiments inject infrequent time-critical packets over a saturated
//! GB background. This crate provides those processes and the
//! destination patterns used to scale beyond a single output:
//!
//! * [`TrafficSource`] implementations: [`Bernoulli`],
//!   [`BimodalBernoulli`] (mixed packet sizes), [`Periodic`],
//!   [`OnOffBursty`], [`Saturating`], and [`Trace`] replay.
//! * [`DestinationPattern`] implementations: [`FixedDest`],
//!   [`UniformDest`], [`HotspotDest`], [`BitComplement`], [`Transpose`],
//!   and [`Shuffle`].
//! * [`Injector`]: one input port's traffic — a source, a pattern, a QoS
//!   class, and a packet length.
//! * [`TraceFile`]: a diff-friendly text format for capturing and
//!   replaying whole workloads, convertible straight into injectors.
//!
//! All randomness is drawn from per-source seeded generators, so every
//! experiment is reproducible from its seed.
//!
//! # Examples
//!
//! ```
//! use ssq_traffic::{Bernoulli, FixedDest, Injector, TrafficSource};
//! use ssq_types::{Cycle, OutputId, TrafficClass};
//!
//! // A GB flow injecting 8-flit packets at 0.4 flits/cycle toward Out0.
//! let mut inj = Injector::new(
//!     Box::new(Bernoulli::new(0.4, 8, 42)),
//!     Box::new(FixedDest::new(OutputId::new(0))),
//!     TrafficClass::GuaranteedBandwidth,
//! );
//! let mut offered = 0u64;
//! for c in 0..10_000 {
//!     if let Some(p) = inj.poll(Cycle::new(c)) {
//!         offered += p.len_flits;
//!     }
//! }
//! let rate = offered as f64 / 10_000.0;
//! assert!((rate - 0.4).abs() < 0.05, "measured {rate}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod injector;
mod pattern;
mod source;
mod trace_file;

pub use injector::{Injector, PacketIntent};
pub use pattern::{
    BitComplement, DestinationPattern, FixedDest, HotspotDest, Shuffle, Transpose, UniformDest,
};
pub use source::{
    Bernoulli, BimodalBernoulli, OnOffBursty, Periodic, Saturating, Trace, TrafficSource,
};
pub use trace_file::{ParseTraceError, SequenceDest, TraceEvent, TraceFile};
