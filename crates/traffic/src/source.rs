//! Packet arrival processes.

use ssq_types::rng::Xoshiro256StarStar;
use ssq_types::Cycle;

/// A packet arrival process at one input port.
///
/// Polled once per cycle; returns the length (in flits) of a packet
/// created this cycle, or `None`. At most one packet per cycle can be
/// created — the paper's injection rates never require more (an input
/// channel carries one flit per cycle, so sustained injection above one
/// packet per `len` cycles is unphysical anyway).
pub trait TrafficSource {
    /// Polls the process at `now`; `Some(len_flits)` if a packet arrives.
    fn poll(&mut self, now: Cycle) -> Option<u64>;

    /// The long-run offered load in flits/cycle, if the process has one
    /// (trace replay reports `None`).
    fn offered_load(&self) -> Option<f64> {
        None
    }

    /// The earliest cycle `t >= now` at which `poll(t)` could return a
    /// packet, if the process can predict it *without* consuming state.
    /// `None` (the default) means unpredictable: the process draws
    /// randomness every poll, so every cycle must be polled densely and
    /// the idle-skip engine cannot jump it. `Some(Cycle::new(u64::MAX))`
    /// means the process will never produce another packet.
    ///
    /// The contract backing the idle skip: if `next_arrival(now)` is
    /// `Some(t)` with `t > now`, then for every cycle `c` in `now..t`,
    /// `poll(c)` returns `None` *and* leaves the source in a state
    /// identical to not having been polled at all.
    fn next_arrival(&self, now: Cycle) -> Option<Cycle> {
        let _ = now;
        None
    }
}

/// Bernoulli injection: each cycle a packet arrives with probability
/// `rate / len_flits`, giving an offered load of `rate` flits/cycle with
/// geometric inter-arrival gaps — the standard random injection process
/// of NoC evaluations and the x-axis of Fig. 4.
///
/// # Examples
///
/// ```
/// use ssq_traffic::{Bernoulli, TrafficSource};
///
/// let src = Bernoulli::new(0.25, 8, 7);
/// assert_eq!(src.offered_load(), Some(0.25));
/// ```
#[derive(Debug, Clone)]
pub struct Bernoulli {
    rate: f64,
    len_flits: u64,
    rng: Xoshiro256StarStar,
}

impl Bernoulli {
    /// Creates a Bernoulli source offering `rate` flits/cycle of
    /// `len_flits`-flit packets, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` or `len_flits` is zero.
    #[must_use]
    pub fn new(rate: f64, len_flits: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        assert!(len_flits > 0, "packets need at least one flit");
        Bernoulli {
            rate,
            len_flits,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }
}

impl TrafficSource for Bernoulli {
    fn poll(&mut self, _now: Cycle) -> Option<u64> {
        let p = self.rate / self.len_flits as f64;
        if self.rng.f64() < p {
            Some(self.len_flits)
        } else {
            None
        }
    }

    fn offered_load(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// Deterministic periodic injection: one packet every `interval` cycles,
/// starting at `phase`. Models the constant-rate flows of real-time SoC
/// producers (e.g. a display controller or a baseband pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodic {
    interval: u64,
    phase: u64,
    len_flits: u64,
}

impl Periodic {
    /// Creates a periodic source.
    ///
    /// # Panics
    ///
    /// Panics if `interval` or `len_flits` is zero.
    #[must_use]
    pub fn new(interval: u64, phase: u64, len_flits: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        assert!(len_flits > 0, "packets need at least one flit");
        Periodic {
            interval,
            phase: phase % interval,
            len_flits,
        }
    }
}

impl TrafficSource for Periodic {
    fn poll(&mut self, now: Cycle) -> Option<u64> {
        if now.value() % self.interval == self.phase {
            Some(self.len_flits)
        } else {
            None
        }
    }

    fn offered_load(&self) -> Option<f64> {
        Some(self.len_flits as f64 / self.interval as f64)
    }

    fn next_arrival(&self, now: Cycle) -> Option<Cycle> {
        // The smallest t >= now with t % interval == phase. Pure: `poll`
        // keeps no state, so skipped cycles are exactly no-ops.
        let rem = now.value() % self.interval;
        let wait = (self.phase + self.interval - rem) % self.interval;
        Some(Cycle::new(now.value().saturating_add(wait)))
    }
}

/// Two-state Markov-modulated (on/off) bursty injection.
///
/// In the ON state the source injects like a Bernoulli source at
/// `rate_on`; each cycle it may flip state with the given probabilities.
/// Bursty injection is what exposes the latency-fairness differences
/// between the counter-management policies ("especially during bursty
/// injection", §4.3).
#[derive(Debug, Clone)]
pub struct OnOffBursty {
    rate_on: f64,
    len_flits: u64,
    p_on_to_off: f64,
    p_off_to_on: f64,
    on: bool,
    rng: Xoshiro256StarStar,
}

impl OnOffBursty {
    /// Creates an on/off source starting in the ON state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, `rate_on` is
    /// outside `[0, 1]`, or `len_flits` is zero.
    #[must_use]
    pub fn new(
        rate_on: f64,
        len_flits: u64,
        p_on_to_off: f64,
        p_off_to_on: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate_on),
            "rate {rate_on} outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&p_on_to_off) && (0.0..=1.0).contains(&p_off_to_on),
            "transition probabilities must be in [0, 1]"
        );
        assert!(len_flits > 0, "packets need at least one flit");
        OnOffBursty {
            rate_on,
            len_flits,
            p_on_to_off,
            p_off_to_on,
            on: true,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Whether the source is currently in its ON state.
    #[must_use]
    pub const fn is_on(&self) -> bool {
        self.on
    }
}

impl TrafficSource for OnOffBursty {
    fn poll(&mut self, _now: Cycle) -> Option<u64> {
        let flip = self.rng.f64();
        if self.on && flip < self.p_on_to_off {
            self.on = false;
        } else if !self.on && flip < self.p_off_to_on {
            self.on = true;
        }
        if !self.on {
            return None;
        }
        let p = self.rate_on / self.len_flits as f64;
        if self.rng.f64() < p {
            Some(self.len_flits)
        } else {
            None
        }
    }

    fn offered_load(&self) -> Option<f64> {
        let duty = self.p_off_to_on / (self.p_on_to_off + self.p_off_to_on);
        Some(self.rate_on * duty)
    }
}

/// A source that always has a packet ready — the saturation workload of
/// Fig. 4's congested region and of every rate-adherence experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturating {
    len_flits: u64,
}

impl Saturating {
    /// Creates a saturating source of `len_flits`-flit packets.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero.
    #[must_use]
    pub fn new(len_flits: u64) -> Self {
        assert!(len_flits > 0, "packets need at least one flit");
        Saturating { len_flits }
    }
}

impl TrafficSource for Saturating {
    fn poll(&mut self, _now: Cycle) -> Option<u64> {
        Some(self.len_flits)
    }

    fn offered_load(&self) -> Option<f64> {
        Some(1.0)
    }

    fn next_arrival(&self, now: Cycle) -> Option<Cycle> {
        Some(now) // a packet every polled cycle: never skippable
    }
}

/// Replays an explicit `(cycle, len_flits)` schedule — used by the GL
/// burst-budget experiments (Eqs. 2–3), where the workload is "σ packets
/// back to back at cycle T".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Remaining events, ascending by cycle.
    events: Vec<(u64, u64)>,
    next: usize,
}

impl Trace {
    /// Creates a trace source. Events must be sorted by cycle and carry
    /// at most one packet per cycle.
    ///
    /// # Panics
    ///
    /// Panics if events are unsorted, duplicated, or have zero-flit
    /// packets.
    #[must_use]
    pub fn new(events: Vec<(u64, u64)>) -> Self {
        for pair in events.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "trace events must be strictly ascending"
            );
        }
        assert!(
            events.iter().all(|&(_, len)| len > 0),
            "packets need at least one flit"
        );
        Trace { events, next: 0 }
    }

    /// Events not yet replayed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl TrafficSource for Trace {
    fn poll(&mut self, now: Cycle) -> Option<u64> {
        match self.events.get(self.next) {
            Some(&(cycle, len)) if cycle == now.value() => {
                self.next += 1;
                Some(len)
            }
            _ => None,
        }
    }

    fn next_arrival(&self, now: Cycle) -> Option<Cycle> {
        match self.events.get(self.next) {
            // A pending event in the past can never match `poll`'s
            // equality test again, so the source is permanently silent —
            // exactly like an exhausted schedule.
            Some(&(cycle, _)) if cycle >= now.value() => Some(Cycle::new(cycle)),
            _ => Some(Cycle::new(u64::MAX)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_flits(src: &mut dyn TrafficSource, cycles: u64) -> u64 {
        (0..cycles).filter_map(|c| src.poll(Cycle::new(c))).sum()
    }

    /// The idle-skip contract: wherever `next_arrival` predicts, dense
    /// polling must agree — no arrival strictly before the prediction,
    /// an arrival exactly at it (when within the horizon).
    fn check_prediction(src: &mut dyn TrafficSource, horizon: u64) {
        let mut c = 0;
        while c < horizon {
            let predicted = src
                .next_arrival(Cycle::new(c))
                .expect("deterministic source must predict");
            for probe in c..predicted.value().min(horizon) {
                assert_eq!(
                    src.poll(Cycle::new(probe)),
                    None,
                    "arrival before predicted cycle {predicted} (probe {probe})"
                );
            }
            if predicted.value() >= horizon {
                return;
            }
            assert!(
                src.poll(predicted).is_some(),
                "no arrival at predicted cycle {predicted}"
            );
            c = predicted.value() + 1;
        }
    }

    #[test]
    fn periodic_predicts_its_own_arrivals() {
        check_prediction(&mut Periodic::new(7, 3, 4), 100);
        check_prediction(&mut Periodic::new(1, 0, 2), 20);
        check_prediction(&mut Periodic::new(160, 159, 8), 1000);
    }

    #[test]
    fn trace_predicts_its_own_arrivals() {
        check_prediction(&mut Trace::new(vec![(3, 2), (9, 8), (40, 1)]), 100);
    }

    #[test]
    fn exhausted_trace_predicts_never() {
        let mut t = Trace::new(vec![(1, 1)]);
        assert_eq!(t.poll(Cycle::new(1)), Some(1));
        assert_eq!(t.next_arrival(Cycle::new(2)), Some(Cycle::new(u64::MAX)));
    }

    #[test]
    fn stale_trace_event_predicts_never() {
        // An unmatched past event can never fire again under dense
        // polling, and the prediction must say so rather than point
        // backwards in time.
        let t = Trace::new(vec![(5, 1)]);
        assert_eq!(t.next_arrival(Cycle::new(6)), Some(Cycle::new(u64::MAX)));
    }

    #[test]
    fn saturating_never_allows_a_skip() {
        let s = Saturating::new(8);
        assert_eq!(s.next_arrival(Cycle::new(17)), Some(Cycle::new(17)));
    }

    #[test]
    fn random_sources_decline_to_predict() {
        assert_eq!(
            Bernoulli::new(0.5, 8, 1).next_arrival(Cycle::ZERO),
            None,
            "RNG-per-poll sources must force dense stepping"
        );
    }

    #[test]
    fn bernoulli_hits_its_offered_load() {
        let mut src = Bernoulli::new(0.3, 4, 123);
        let rate = total_flits(&mut src, 100_000) as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.02, "measured {rate}");
    }

    #[test]
    fn bernoulli_zero_rate_never_fires() {
        let mut src = Bernoulli::new(0.0, 8, 1);
        assert_eq!(total_flits(&mut src, 10_000), 0);
    }

    #[test]
    fn bernoulli_is_reproducible_per_seed() {
        let mut a = Bernoulli::new(0.5, 2, 99);
        let mut b = Bernoulli::new(0.5, 2, 99);
        for c in 0..1000 {
            assert_eq!(a.poll(Cycle::new(c)), b.poll(Cycle::new(c)));
        }
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let mut src = Periodic::new(10, 3, 2);
        let fired: Vec<u64> = (0..40)
            .filter(|&c| src.poll(Cycle::new(c)).is_some())
            .collect();
        assert_eq!(fired, vec![3, 13, 23, 33]);
        assert_eq!(src.offered_load(), Some(0.2));
    }

    #[test]
    fn bursty_duty_cycle_matches_transitions() {
        // Symmetric transitions => 50% duty, so load ~ rate_on / 2.
        let mut src = OnOffBursty::new(0.8, 1, 0.01, 0.01, 7);
        let rate = total_flits(&mut src, 200_000) as f64 / 200_000.0;
        assert!((rate - 0.4).abs() < 0.05, "measured {rate}");
    }

    #[test]
    fn bursty_goes_silent_in_off_state() {
        // Immediately flips to OFF and can never return.
        let mut src = OnOffBursty::new(1.0, 1, 1.0, 0.0, 3);
        let _ = src.poll(Cycle::ZERO);
        assert!(!src.is_on());
        assert_eq!(total_flits(&mut src, 1000), 0);
    }

    #[test]
    fn saturating_always_offers() {
        let mut src = Saturating::new(8);
        for c in 0..100 {
            assert_eq!(src.poll(Cycle::new(c)), Some(8));
        }
        assert_eq!(src.offered_load(), Some(1.0));
    }

    #[test]
    fn trace_replays_exactly() {
        let mut src = Trace::new(vec![(5, 1), (9, 3)]);
        assert_eq!(src.remaining(), 2);
        assert_eq!(src.poll(Cycle::new(4)), None);
        assert_eq!(src.poll(Cycle::new(5)), Some(1));
        assert_eq!(src.poll(Cycle::new(6)), None);
        assert_eq!(src.poll(Cycle::new(9)), Some(3));
        assert_eq!(src.remaining(), 0);
        assert_eq!(src.poll(Cycle::new(10)), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn trace_rejects_unsorted_events() {
        let _ = Trace::new(vec![(9, 1), (5, 1)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bernoulli_rejects_bad_rate() {
        let _ = Bernoulli::new(1.5, 1, 0);
    }
}

/// Bernoulli arrivals with a bimodal packet-length mix — short control
/// packets interleaved with long data packets, the "variety of packet
/// sizes" of §4.2 in one source. `rate` is the offered load in
/// flits/cycle; packet starts are scheduled so the flit average works
/// out regardless of the short/long split.
#[derive(Debug, Clone)]
pub struct BimodalBernoulli {
    rate: f64,
    len_short: u64,
    len_long: u64,
    p_long: f64,
    rng: Xoshiro256StarStar,
}

impl BimodalBernoulli {
    /// Creates a bimodal source: each generated packet is `len_long`
    /// flits with probability `p_long`, otherwise `len_short`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`, `p_long` is outside
    /// `[0, 1]`, or either length is zero.
    #[must_use]
    pub fn new(rate: f64, len_short: u64, len_long: u64, p_long: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        assert!(
            (0.0..=1.0).contains(&p_long),
            "p_long {p_long} outside [0, 1]"
        );
        assert!(
            len_short > 0 && len_long > 0,
            "packets need at least one flit"
        );
        BimodalBernoulli {
            rate,
            len_short,
            len_long,
            p_long,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Mean packet length in flits.
    #[must_use]
    pub fn mean_len(&self) -> f64 {
        self.p_long * self.len_long as f64 + (1.0 - self.p_long) * self.len_short as f64
    }
}

impl TrafficSource for BimodalBernoulli {
    fn poll(&mut self, _now: Cycle) -> Option<u64> {
        let p = self.rate / self.mean_len();
        if self.rng.f64() < p {
            if self.rng.f64() < self.p_long {
                Some(self.len_long)
            } else {
                Some(self.len_short)
            }
        } else {
            None
        }
    }

    fn offered_load(&self) -> Option<f64> {
        Some(self.rate)
    }
}

#[cfg(test)]
mod bimodal_tests {
    use super::*;

    #[test]
    fn offered_load_holds_despite_the_mix() {
        let mut src = BimodalBernoulli::new(0.4, 1, 8, 0.3, 21);
        let flits: u64 = (0..200_000).filter_map(|c| src.poll(Cycle::new(c))).sum();
        let rate = flits as f64 / 200_000.0;
        assert!((rate - 0.4).abs() < 0.02, "measured {rate}");
    }

    #[test]
    fn both_modes_appear() {
        let mut src = BimodalBernoulli::new(0.8, 2, 8, 0.5, 5);
        let mut shorts = 0;
        let mut longs = 0;
        for c in 0..50_000 {
            match src.poll(Cycle::new(c)) {
                Some(2) => shorts += 1,
                Some(8) => longs += 1,
                Some(other) => panic!("unexpected length {other}"),
                None => {}
            }
        }
        assert!(shorts > 1000 && longs > 1000, "{shorts} / {longs}");
        let frac = longs as f64 / (shorts + longs) as f64;
        assert!((frac - 0.5).abs() < 0.05, "long fraction {frac}");
    }

    #[test]
    fn degenerate_mix_is_plain_bernoulli() {
        let mut src = BimodalBernoulli::new(0.3, 4, 8, 0.0, 9);
        assert_eq!(src.mean_len(), 4.0);
        for c in 0..1000 {
            if let Some(len) = src.poll(Cycle::new(c)) {
                assert_eq!(len, 4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_p_long() {
        let _ = BimodalBernoulli::new(0.5, 1, 8, 1.5, 0);
    }
}
