//! `ssq-verify`: a bounded exhaustive model checker for the arbitration
//! pipeline (DESIGN.md §7).
//!
//! The simulator answers "what happens on this workload?"; this crate
//! answers "can the arbitration pipeline *ever* do the wrong thing?"
//! for small switches, by brute force. It enumerates every reachable
//! state of one output channel of a radix-2 or radix-4 switch — every
//! `auxVC` counter value, every LRG permutation, every request pattern
//! per cycle, under all three [`CounterPolicy`] variants — and checks
//! the V1–V6 invariant catalog of [`ssq_types::invariant`] on every
//! transition:
//!
//! | code    | invariant                                                |
//! |---------|----------------------------------------------------------|
//! | SSQV001 | V1 — exactly one grant per output bus per cycle          |
//! | SSQV002 | V2 — thermometer codes are monotone/well-formed          |
//! | SSQV003 | V3 — `auxVC` never exceeds its configured width          |
//! | SSQV004 | V4 — LRG never starves a continuous requester ≥ radix    |
//! | SSQV005 | V5 — observed GL wait never exceeds the Eq. 1 bound      |
//! | SSQV006 | V6 — behavioural arbiter ≡ bitline circuit model         |
//!
//! A violation is reported as a **minimal counterexample**: the
//! breadth-first search guarantees no shorter request sequence reaches
//! the bad transition, and the offending run is replayed through the
//! `ssq-trace` event taxonomy so the trace can be written as JSONL and
//! inspected with `trace-report`.
//!
//! Entry points: [`verify_scenario`] checks one [`Scenario`];
//! [`tier::fast_scenarios`] / [`tier::deep_scenarios`] are the curated
//! suites behind `cargo xtask verify` and `ssq verify`.
//!
//! # Examples
//!
//! ```
//! use ssq_arbiter::CounterPolicy;
//! use ssq_types::TrafficClass;
//! use ssq_verify::{verify_scenario, Scenario};
//!
//! let s = Scenario::new(
//!     "doc-2x2",
//!     CounterPolicy::SubtractRealClock,
//!     vec![TrafficClass::GuaranteedBandwidth, TrafficClass::BestEffort],
//!     vec![1, 3],
//! );
//! let outcome = verify_scenario(&s);
//! assert!(outcome.violation.is_none());
//! assert!(outcome.closed, "the 2x2 state space closes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod model;
pub mod tier;

pub use explore::{verify_scenario, CounterExample, VerifyOutcome};
pub use model::{Model, ModelState, Scenario, TieBreak, Violation};

use ssq_arbiter::CounterPolicy;

/// Stable diagnostic codes of the invariant catalog (the `SSQV00x`
/// namespace, disjoint from the analyzer's `SSQ0xx` codes).
///
/// Codes are append-only; the same strings prefix the sanitizer's
/// assertion messages in `ssq-core` so a post-mortem flight dump and a
/// model-checker counterexample are grep-able by one identifier.
pub mod codes {
    /// V1: an output bus must carry exactly one grant per cycle.
    pub const SINGLE_GRANT: &str = "SSQV001";
    /// V2: thermometer codes stay monotone and well-formed.
    pub const THERMOMETER: &str = "SSQV002";
    /// V3: `auxVC` never exceeds its configured width.
    pub const AUX_WIDTH: &str = "SSQV003";
    /// V4: LRG never starves a continuously-requesting BE input.
    pub const LRG_STARVATION: &str = "SSQV004";
    /// V5: observed GL waiting time respects the Eq. 1 bound.
    pub const GL_BOUND: &str = "SSQV005";
    /// V6: behavioural arbiter and bitline circuit model agree.
    pub const GRANT_AGREEMENT: &str = "SSQV006";

    /// Short human name ("V1".."V6") for a `SSQV00x` code.
    #[must_use]
    pub fn invariant_name(code: &str) -> &'static str {
        match code {
            SINGLE_GRANT => "V1",
            THERMOMETER => "V2",
            AUX_WIDTH => "V3",
            LRG_STARVATION => "V4",
            GL_BOUND => "V5",
            GRANT_AGREEMENT => "V6",
            _ => "V?",
        }
    }
}

/// All three finite-counter policies, in a stable order — every tier
/// runs every scenario shape under each of these.
#[must_use]
pub fn all_policies() -> [CounterPolicy; 3] {
    [
        CounterPolicy::SubtractRealClock,
        CounterPolicy::Halve,
        CounterPolicy::Reset,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_map_to_invariant_names() {
        assert_eq!(codes::invariant_name(codes::SINGLE_GRANT), "V1");
        assert_eq!(codes::invariant_name(codes::GRANT_AGREEMENT), "V6");
        assert_eq!(codes::invariant_name("SSQ001"), "V?");
    }
}
