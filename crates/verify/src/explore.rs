//! Breadth-first exhaustive exploration with memoized state hashing and
//! minimal counterexample reconstruction.
//!
//! The explorer enumerates the reachable state graph of a [`Model`]:
//! from every visited [`ModelState`] it applies all `2^radix` request
//! patterns, memoizes successors in a hash map, and records one parent
//! edge `(parent index, pattern)` per state. Exploration runs without
//! event recording — tracing every transition of a million-state sweep
//! would swamp the run — and only when an invariant trips is the
//! pattern path walked back to the root and **replayed** with recording
//! on, producing the `ssq-trace` event stream of exactly the offending
//! run. Breadth-first order makes that counterexample minimal: no
//! shorter request sequence reaches any violation.

use std::collections::HashMap;
use std::collections::VecDeque;

use ssq_trace::Event;

use crate::codes;
use crate::model::{Model, Recording, Scenario};

/// A minimal failing run: the request patterns that drive the model
/// from reset into an invariant violation, plus the replayed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// The violated invariant's stable `SSQV00x` code.
    pub code: &'static str,
    /// Short invariant name ("V1".."V6").
    pub invariant: &'static str,
    /// What went wrong, with concrete values.
    pub detail: String,
    /// Request pattern per cycle (bit `i` ⇔ input `i` requests); its
    /// length is the counterexample depth in cycles.
    pub patterns: Vec<u32>,
    /// The replayed trace in `ssq-trace` taxonomy, ending at the cycle
    /// that tripped the invariant.
    pub events: Vec<Event>,
}

impl CounterExample {
    /// The counterexample length in cycles.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.patterns.len()
    }

    /// Renders the replayed trace as JSONL — the same wire format the
    /// simulator's tracer writes, so `trace-report` and `ssq replay`
    /// tooling consume it unchanged.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// The result of exhaustively checking one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "dropping a verification outcome discards the verdict"]
pub struct VerifyOutcome {
    /// Name of the verified scenario.
    pub scenario: String,
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions (state × pattern steps) executed.
    pub transitions: u64,
    /// Deepest cycle count reached from the initial state.
    pub depth: u32,
    /// Whether the reachable state space was fully closed — every
    /// reachable state expanded under every pattern, with neither the
    /// horizon nor the state cap cutting exploration short. A `true`
    /// here is an exhaustiveness proof for the scenario.
    pub closed: bool,
    /// The first (minimal-depth) invariant violation found, if any.
    pub violation: Option<CounterExample>,
}

impl VerifyOutcome {
    /// Whether every invariant held on every explored transition.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively explores `scenario`'s reachable state space, checking
/// V1–V6 on every transition.
pub fn verify_scenario(scenario: &Scenario) -> VerifyOutcome {
    let name = scenario.name.clone();
    let model = Model::new(scenario.clone());
    let patterns_per_state = 1u32 << scenario.radix();

    let initial = model.initial_state();
    let mut states = vec![initial.clone()];
    // Parent edge of each state: (parent index, pattern that led here).
    let mut parents: Vec<(u32, u32)> = vec![(0, 0)];
    let mut depths: Vec<u32> = vec![0];
    let mut index = HashMap::new();
    index.insert(initial, 0u32);

    let mut queue = VecDeque::from([0u32]);
    let mut transitions = 0u64;
    let mut max_depth = 0u32;
    let mut clipped = false;

    while let Some(at) = queue.pop_front() {
        let depth = depths[at as usize];
        max_depth = max_depth.max(depth);
        if depth >= scenario.horizon {
            clipped = true;
            continue;
        }
        for pattern in 0..patterns_per_state {
            let out = model.step(&states[at as usize], pattern, None);
            transitions += 1;
            if let Some(violation) = out.violation {
                let counterexample = replay(&model, &parents, &depths, at, pattern, &violation);
                return VerifyOutcome {
                    scenario: name,
                    states: states.len(),
                    transitions,
                    depth: max_depth.max(depth + 1),
                    closed: false,
                    violation: Some(counterexample),
                };
            }
            if index.contains_key(&out.next) {
                continue;
            }
            if states.len() >= scenario.max_states {
                clipped = true;
                continue;
            }
            let id = states.len() as u32;
            index.insert(out.next.clone(), id);
            states.push(out.next);
            parents.push((at, pattern));
            depths.push(depth + 1);
            queue.push_back(id);
        }
    }

    VerifyOutcome {
        scenario: name,
        states: states.len(),
        transitions,
        depth: max_depth,
        closed: !clipped,
        violation: None,
    }
}

/// Reconstructs the pattern path from the root to `(at, final_pattern)`
/// and replays it with event recording to build the counterexample.
fn replay(
    model: &Model,
    parents: &[(u32, u32)],
    depths: &[u32],
    at: u32,
    final_pattern: u32,
    violation: &crate::Violation,
) -> CounterExample {
    let mut patterns = Vec::with_capacity(depths[at as usize] as usize + 1);
    let mut cursor = at;
    while depths[cursor as usize] > 0 {
        let (parent, pattern) = parents[cursor as usize];
        patterns.push(pattern);
        cursor = parent;
    }
    patterns.reverse();
    patterns.push(final_pattern);

    let mut rec = Recording::default();
    let mut state = model.initial_state();
    let mut replay_violation = None;
    for (cycle, &pattern) in patterns.iter().enumerate() {
        rec.cycle = cycle as u64;
        let out = model.step(&state, pattern, Some(&mut rec));
        replay_violation = out.violation;
        state = out.next;
    }
    let replayed =
        replay_violation.expect("the replayed path must reproduce the violation deterministically");
    assert_eq!(replayed.code, violation.code, "replay diverged from search");
    // Sanity: also prove the trace survives the JSONL wire format.
    debug_assert!(rec
        .events
        .iter()
        .all(|e| Event::from_jsonl(&e.to_jsonl()).as_ref() == Ok(e)));
    CounterExample {
        code: violation.code,
        invariant: codes::invariant_name(violation.code),
        detail: violation.detail.clone(),
        patterns,
        events: rec.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TieBreak;
    use ssq_arbiter::CounterPolicy;
    use ssq_trace::EventKind;
    use ssq_types::TrafficClass;

    /// The golden seeded-bug test: a deliberately wrong tie-break
    /// (highest index instead of LRG) must be caught by V6 with a
    /// minimal one-cycle counterexample whose trace round-trips through
    /// the JSONL wire format.
    #[test]
    fn broken_tie_break_yields_minimal_v6_counterexample() {
        let mut scenario = Scenario::new(
            "broken-tie-break",
            CounterPolicy::SubtractRealClock,
            vec![
                TrafficClass::GuaranteedBandwidth,
                TrafficClass::GuaranteedBandwidth,
            ],
            vec![1, 1],
        );
        scenario.tie_break = TieBreak::HighestIndex;
        let outcome = verify_scenario(&scenario);
        let cx = outcome.violation.expect("the seeded bug must be found");
        assert_eq!(cx.code, codes::GRANT_AGREEMENT);
        assert_eq!(cx.invariant, "V6");
        // Minimality: both inputs tie at auxVC 0 in the very first
        // cycle, so one cycle suffices — and BFS must find exactly that.
        assert_eq!(cx.depth(), 1);
        assert_eq!(cx.patterns, vec![0b11]);
        // The trace records the diverging behavioural decision (the
        // broken tie-break picked input 1; LRG and the circuit pick 0),
        // followed by the loser's inhibit record.
        assert!(cx.events.iter().any(|e| matches!(
            e,
            Event {
                kind: EventKind::Decision { winner: 1, .. },
                ..
            }
        )));
        assert!(matches!(
            cx.events.last(),
            Some(Event {
                kind: EventKind::Inhibit { input: 0, .. },
                ..
            })
        ));
        // The JSONL rendering replays through the trace parser.
        let lines: Vec<Event> = cx
            .to_jsonl()
            .lines()
            .map(|l| Event::from_jsonl(l).expect("counterexample line parses"))
            .collect();
        assert_eq!(lines, cx.events);
    }

    /// The same scenario with the correct tie-break is clean and its
    /// state space closes.
    #[test]
    fn correct_tie_break_is_clean_and_closed() {
        let scenario = Scenario::new(
            "correct-tie-break",
            CounterPolicy::SubtractRealClock,
            vec![
                TrafficClass::GuaranteedBandwidth,
                TrafficClass::GuaranteedBandwidth,
            ],
            vec![1, 1],
        );
        let outcome = verify_scenario(&scenario);
        assert!(outcome.passed(), "{:?}", outcome.violation);
        assert!(outcome.closed);
        assert!(outcome.states > 1);
    }
}
