//! The curated verification tiers behind `cargo xtask verify` and
//! `ssq verify`.
//!
//! * **Fast tier** — radix-2 switches, every class mix (all nine
//!   `{BE, GB, GL}²` combinations) under all three counter policies
//!   with asymmetric `Vtick`s, plus an all-GB symmetric-`Vtick` sweep.
//!   Every scenario's reachable state space closes, so a clean fast
//!   tier is an exhaustiveness proof at radix 2. Runs in seconds; wired
//!   into `scripts/check.sh`.
//! * **Deep tier** — radix-4 switches over representative mixes, with a
//!   bounded horizon and state cap (the radix-4 LRG permutation product
//!   alone is `24³`); outcomes report honestly whether the space closed
//!   or was clipped.

use ssq_arbiter::CounterPolicy;
use ssq_types::TrafficClass;

use crate::{all_policies, Scenario};

fn class_label(c: TrafficClass) -> &'static str {
    match c {
        TrafficClass::BestEffort => "be",
        TrafficClass::GuaranteedBandwidth => "gb",
        TrafficClass::GuaranteedLatency => "gl",
    }
}

fn scenario_name(prefix: &str, mix: &[TrafficClass], policy: CounterPolicy) -> String {
    let classes: Vec<&str> = mix.iter().map(|&c| class_label(c)).collect();
    format!("{prefix}-{}-{policy}", classes.join("+"))
}

/// The fast tier: exhaustive radix-2 coverage. 30 scenarios, each
/// closing its full reachable state space.
#[must_use]
pub fn fast_scenarios() -> Vec<Scenario> {
    let classes = [
        TrafficClass::BestEffort,
        TrafficClass::GuaranteedBandwidth,
        TrafficClass::GuaranteedLatency,
    ];
    let mut scenarios = Vec::new();
    for policy in all_policies() {
        for a in classes {
            for b in classes {
                let mix = vec![a, b];
                scenarios.push(Scenario::new(
                    scenario_name("2x2", &mix, policy),
                    policy,
                    mix,
                    vec![1, 3],
                ));
            }
        }
        // Symmetric Vticks exercise the pure-LRG tie-break path on
        // every contested GB cycle.
        let mix = vec![
            TrafficClass::GuaranteedBandwidth,
            TrafficClass::GuaranteedBandwidth,
        ];
        scenarios.push(Scenario::new(
            format!("2x2-gb+gb-even-{policy}"),
            policy,
            mix,
            vec![2, 2],
        ));
    }
    scenarios
}

/// The deep tier: radix-4 over representative mixes, horizon-bounded.
#[must_use]
pub fn deep_scenarios() -> Vec<Scenario> {
    use TrafficClass::{BestEffort as BE, GuaranteedBandwidth as GB, GuaranteedLatency as GL};
    let mixes: [[TrafficClass; 4]; 6] = [
        [GB, GB, GB, GB],
        [BE, BE, BE, BE],
        [GL, GL, GL, GL],
        [GB, GB, BE, BE],
        [GL, GB, GB, BE],
        [GL, GL, GB, BE],
    ];
    let mut scenarios = Vec::new();
    for policy in all_policies() {
        for mix in &mixes {
            scenarios.push(
                Scenario::new(
                    scenario_name("4x4", mix, policy),
                    policy,
                    mix.to_vec(),
                    vec![1, 2, 3, 1],
                )
                .with_bounds(24, 200_000),
            );
        }
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_tier_has_full_mix_and_policy_coverage() {
        let scenarios = fast_scenarios();
        assert_eq!(scenarios.len(), 30);
        for policy in all_policies() {
            assert_eq!(
                scenarios.iter().filter(|s| s.policy == policy).count(),
                10,
                "{policy}"
            );
        }
        assert!(scenarios.iter().all(|s| s.radix() == 2));
    }

    #[test]
    fn deep_tier_is_radix_4_and_bounded() {
        let scenarios = deep_scenarios();
        assert_eq!(scenarios.len(), 18);
        assert!(scenarios.iter().all(|s| s.radix() == 4));
        assert!(scenarios.iter().all(|s| s.horizon == 24));
    }
}
