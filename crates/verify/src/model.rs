//! The verification model: one output channel of a small switch, as an
//! explicit finite-state transition system.
//!
//! # State-space encoding (DESIGN.md §7)
//!
//! Arbitration state in `ssq-core` is kept **per output**, so checking
//! one output channel exhaustively is sound for the whole switch. One
//! [`ModelState`] packs everything the pipeline remembers between
//! cycles:
//!
//! * the `auxVC` counter of every input (`aux`),
//! * the real-time subcounter phase (`real_lsb`, subtract-real-clock
//!   policy only; pinned to 0 otherwise),
//! * the three LRG priority permutations — the SSVC-internal GB order,
//!   the dedicated GL-lane order, and the best-effort bus order — each
//!   stored as its `priority_order()` permutation,
//! * the V4/V5 observation counters (`starved`, `gl_wait`).
//!
//! States are *rebuilt* into live [`SsvcArbiter`]/[`Lrg`] instances
//! rather than poked field-by-field: an LRG whose grant history was
//! `O[0], O[1], …, O[n−1]` ends in exactly the priority order
//! `O[0] > O[1] > … > O[n−1]`, so replaying the stored permutation as a
//! grant sequence reproduces the arbiter bit-for-bit through its public
//! API only.
//!
//! Each input has a fixed traffic class (the scenario *mix*) and the
//! transition alphabet is the full power set of request patterns: every
//! subset of inputs may assert a request in every cycle. Packets are
//! single-flit (`l_max = l_min = b = 1`), which is the arbitration
//! granularity — QoS decisions happen per arbitration, so longer
//! packets only dilate time without adding arbitration behaviour.

use ssq_arbiter::{Arbiter, CounterPolicy, Lrg, SsvcArbiter, SsvcConfig};
use ssq_circuit::{CircuitConfig, InhibitFabric, PortRequest, ThermometerRegister};
use ssq_trace::{Event, EventKind};
use ssq_types::{bounds, invariant, TrafficClass};

use crate::codes;

/// How the behavioural model breaks ties between equal thermometer
/// codes. The shipped pipeline always uses LRG; the deliberately wrong
/// variant exists (under `cfg(test)`) to prove the checker finds a
/// seeded arbitration bug with a minimal counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Least-recently-granted — the paper's tie-break.
    #[default]
    Lrg,
    /// Deliberately broken: highest input index wins ties. The circuit
    /// model still implements LRG, so V6 must catch the divergence.
    #[cfg(test)]
    HighestIndex,
}

/// One model-checking scenario: the switch shape, class mix, and
/// exploration bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Human-readable scenario name (appears in reports).
    pub name: String,
    /// Finite-counter management policy under test.
    pub policy: CounterPolicy,
    /// Traffic class of each input; its length is the radix.
    pub mix: Vec<TrafficClass>,
    /// `Vtick` per input (GB inputs consume these; others keep a
    /// placeholder since the SSVC arbiter tracks every input).
    pub vticks: Vec<u64>,
    /// Total `auxVC` width in bits.
    pub counter_bits: u32,
    /// Significant (thermometer) bits of the counter.
    pub sig_bits: u32,
    /// Maximum exploration depth in cycles.
    pub horizon: u32,
    /// Maximum number of distinct states to retain before truncating.
    pub max_states: usize,
    /// Behavioural tie-break (always [`TieBreak::Lrg`] outside tests).
    pub tie_break: TieBreak,
}

impl Scenario {
    /// Creates a scenario with the default exploration bounds: 4-bit
    /// counters with 2 significant bits, a 4096-cycle horizon, and a
    /// one-million-state cap.
    ///
    /// # Panics
    ///
    /// Panics if `mix` and `vticks` disagree in length, the radix is
    /// below 2, or any `Vtick` is zero or would saturate a fresh
    /// counter in one win (the state rebuild relies on single wins
    /// staying far from the cap).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        policy: CounterPolicy,
        mix: Vec<TrafficClass>,
        vticks: Vec<u64>,
    ) -> Self {
        let scenario = Scenario {
            name: name.into(),
            policy,
            mix,
            vticks,
            counter_bits: 4,
            sig_bits: 2,
            horizon: 4096,
            max_states: 1 << 20,
            tie_break: TieBreak::default(),
        };
        scenario.validate();
        scenario
    }

    /// Overrides the exploration bounds (used by the deep tier).
    #[must_use]
    pub fn with_bounds(mut self, horizon: u32, max_states: usize) -> Self {
        self.horizon = horizon;
        self.max_states = max_states;
        self
    }

    /// The switch radix (number of inputs at the modelled output).
    #[must_use]
    pub fn radix(&self) -> usize {
        self.mix.len()
    }

    fn validate(&self) {
        assert_eq!(
            self.mix.len(),
            self.vticks.len(),
            "one Vtick per input of the mix"
        );
        assert!(self.radix() >= 2, "a switch needs at least two inputs");
        let cap = (1u64 << self.counter_bits) - 1;
        assert!(
            self.vticks.iter().all(|&v| v > 0 && v < cap),
            "Vticks must be in 1..cap ({cap}) so a single win cannot saturate"
        );
    }
}

/// One reachable state of the modelled output channel. Hashable so the
/// explorer can memoize visited states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// `auxVC` counter per input.
    pub aux: Vec<u64>,
    /// Real-time subcounter phase (subtract-real-clock policy only).
    pub real_lsb: u64,
    /// SSVC-internal (GB) LRG priority permutation, best first.
    pub gb_order: Vec<u8>,
    /// GL-lane LRG priority permutation, best first.
    pub gl_order: Vec<u8>,
    /// Best-effort bus LRG priority permutation, best first.
    pub be_order: Vec<u8>,
    /// V4: consecutive best-effort arbitration losses while requesting.
    pub starved: Vec<u8>,
    /// V5: consecutive cycles a GL input has requested without a grant.
    pub gl_wait: Vec<u8>,
}

/// One invariant violation found on a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The stable `SSQV00x` code (see [`crate::codes`]).
    pub code: &'static str,
    /// What went wrong, with the concrete values involved.
    pub detail: String,
}

/// The result of one model step.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "dropping a step output discards the violation verdict"]
pub struct StepOutput {
    /// The successor state.
    pub next: ModelState,
    /// The first invariant violated on this transition, if any.
    pub violation: Option<Violation>,
}

/// Trace recording context threaded through a counterexample replay.
#[derive(Debug, Default)]
pub(crate) struct Recording {
    /// Cycle stamped on emitted events.
    pub cycle: u64,
    /// Cumulative decay epochs across the whole replay.
    pub decays: u64,
    /// The events of the replay so far.
    pub events: Vec<Event>,
}

/// The executable transition system for one scenario.
#[derive(Debug, Clone)]
pub struct Model {
    scenario: Scenario,
    cfg: SsvcConfig,
    fabric: InhibitFabric,
    n_gl: usize,
    /// Eq. 1 bound at arbitration granularity (`l_max = l_min = b = 1`).
    eq1_bound: u64,
}

impl Model {
    /// Builds the transition system for `scenario`.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        let cfg = SsvcConfig::new(scenario.counter_bits, scenario.sig_bits, scenario.policy);
        let has_gl = scenario.mix.contains(&TrafficClass::GuaranteedLatency);
        let n_gl = scenario
            .mix
            .iter()
            .filter(|&&c| c == TrafficClass::GuaranteedLatency)
            .count();
        let circuit = CircuitConfig::new(scenario.radix(), cfg.num_lanes(), has_gl);
        let eq1_bound = bounds::gl_latency_bound(1, 1, n_gl as u64, 1);
        Model {
            scenario,
            cfg,
            fabric: InhibitFabric::new(circuit),
            n_gl,
            eq1_bound,
        }
    }

    /// The scenario this model executes.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The Eq. 1 waiting bound checked by V5, in arbitration cycles.
    #[must_use]
    pub fn eq1_bound(&self) -> u64 {
        self.eq1_bound
    }

    /// The quiescent initial state: all counters zero, identity LRG
    /// orders, no observed waiting.
    #[must_use]
    pub fn initial_state(&self) -> ModelState {
        let n = self.scenario.radix();
        let identity: Vec<u8> = (0..n).map(|i| i as u8).collect();
        ModelState {
            aux: vec![0; n],
            real_lsb: 0,
            gb_order: identity.clone(),
            gl_order: identity.clone(),
            be_order: identity,
            starved: vec![0; n],
            gl_wait: vec![0; n],
        }
    }

    /// Reconstructs live arbiters from a stored state, through public
    /// APIs only: LRG orders are replayed as grant sequences, counters
    /// overwritten afterwards, and the real-time phase advanced tick by
    /// tick.
    fn rebuild(&self, state: &ModelState) -> (SsvcArbiter, Lrg, Lrg) {
        let n = self.scenario.radix();
        let mut ssvc = SsvcArbiter::new(self.cfg, &self.scenario.vticks);
        for &w in &state.gb_order {
            ssvc.commit_win(w as usize);
        }
        assert_eq!(
            ssvc.saturation_count(),
            0,
            "rebuild saturated a counter; scenario Vticks too large"
        );
        for (i, &a) in state.aux.iter().enumerate() {
            ssvc.set_aux_vc(i, a);
        }
        for _ in 0..state.real_lsb {
            ssvc.tick();
        }
        assert_eq!(ssvc.decay_epochs(), 0, "stored real_lsb crossed an epoch");
        let mut gl_lrg = Lrg::new(n);
        for &w in &state.gl_order {
            gl_lrg.grant(w as usize);
        }
        let mut be_lrg = Lrg::new(n);
        for &w in &state.be_order {
            be_lrg.grant(w as usize);
        }
        (ssvc, gl_lrg, be_lrg)
    }

    /// Executes one cycle from `state` under the given request
    /// `pattern` (bit `i` set ⇔ input `i` requests), checking V1–V6 on
    /// the way. When `rec` is supplied, the cycle's observable events
    /// are appended in `ssq-trace` taxonomy order.
    pub(crate) fn step(
        &self,
        state: &ModelState,
        pattern: u32,
        mut rec: Option<&mut Recording>,
    ) -> StepOutput {
        let n = self.scenario.radix();
        let cap = self.cfg.saturation_cap();
        let lanes = self.cfg.num_lanes() as u32;
        let (mut ssvc, mut gl_lrg, mut be_lrg) = self.rebuild(state);

        // --- Real-time tick (decay under subtract-real-clock). -------
        let pre_msb: Vec<u64> = (0..n).map(|i| ssvc.msb_value(i)).collect();
        ssvc.tick();
        let decayed = ssvc.decay_epochs() > 0;

        // Mirror the per-crosspoint thermometer registers: seed from the
        // pre-tick significant bits, then apply exactly the register
        // operations the hardware would (V2 checks the mirror against
        // the counter arithmetic after every phase).
        let mut regs: Vec<ThermometerRegister> = pre_msb
            .iter()
            .map(|&m| {
                let mut r = ThermometerRegister::new(lanes);
                r.set_value(m);
                r
            })
            .collect();
        if decayed {
            for r in &mut regs {
                r.shift_down();
            }
            if let Some(r) = rec.as_deref_mut() {
                r.decays += 1;
                let (cycle, epoch) = (r.cycle, r.decays);
                r.events.push(Event {
                    cycle,
                    kind: EventKind::Decay { output: 0, epoch },
                });
            }
        }
        if let Some(v) = self.check_thermometers(&regs, &ssvc, "after real-time decay") {
            return self.abort(state, v);
        }

        // --- Classify this cycle's requesters. ------------------------
        let mut gl = Vec::new();
        let mut gb = Vec::new();
        let mut be = Vec::new();
        for (i, &class) in self.scenario.mix.iter().enumerate() {
            if pattern & (1 << i) == 0 {
                continue;
            }
            match class {
                TrafficClass::GuaranteedLatency => gl.push(i),
                TrafficClass::GuaranteedBandwidth => gb.push(i),
                TrafficClass::BestEffort => be.push(i),
            }
        }

        // --- Behavioural decision (class priority GL > GB > BE). ------
        let (winner, class) = if !gl.is_empty() {
            (gl_lrg.peek(&gl), TrafficClass::GuaranteedLatency)
        } else if !gb.is_empty() {
            let w = match self.scenario.tie_break {
                TieBreak::Lrg => ssvc.peek(&gb),
                #[cfg(test)]
                TieBreak::HighestIndex => {
                    let min = gb.iter().map(|&c| ssvc.msb_value(c)).min();
                    min.and_then(|m| gb.iter().copied().filter(|&c| ssvc.msb_value(c) == m).max())
                }
            };
            (w, TrafficClass::GuaranteedBandwidth)
        } else {
            (be_lrg.peek(&be), TrafficClass::BestEffort)
        };

        // --- Record the decision and GB inhibit activity (before the
        // circuit cross-check, so a V1/V6 counterexample trace ends
        // with the diverging decision). ---------------------------------
        if let (Some(r), Some(w)) = (rec.as_deref_mut(), winner) {
            let contenders = match class {
                TrafficClass::GuaranteedLatency => gl.len(),
                TrafficClass::GuaranteedBandwidth => gb.len(),
                TrafficClass::BestEffort => be.len(),
            };
            let cycle = r.cycle;
            r.events.push(Event {
                cycle,
                kind: EventKind::Decision {
                    output: 0,
                    class,
                    contenders: contenders as u32,
                    winner: w as u32,
                },
            });
            if class == TrafficClass::GuaranteedBandwidth {
                let winner_msb = ssvc.msb_value(w);
                for &loser in gb.iter().filter(|&&i| i != w) {
                    r.events.push(Event {
                        cycle,
                        kind: EventKind::Inhibit {
                            output: 0,
                            input: loser as u32,
                            msb: ssvc.msb_value(loser),
                            winner_msb,
                        },
                    });
                }
            }
        }

        // --- V1 + V6: the bitline circuit must agree. -----------------
        // BE traffic arbitrates on a separate LRG-only bus, so the
        // inhibit fabric sees only the GL/GB requesters.
        if !gl.is_empty() || !gb.is_empty() {
            let ports: Vec<PortRequest> = (0..n)
                .map(|i| {
                    if pattern & (1 << i) == 0 {
                        return PortRequest::Idle;
                    }
                    match self.scenario.mix[i] {
                        TrafficClass::GuaranteedLatency => PortRequest::Gl,
                        TrafficClass::GuaranteedBandwidth => PortRequest::Gb {
                            msb_value: ssvc.msb_value(i),
                        },
                        TrafficClass::BestEffort => PortRequest::Idle,
                    }
                })
                .collect();
            let outcome = self.fabric.arbitrate(&ports, ssvc.lrg(), &gl_lrg);

            // Replicate the sense phase to count still-charged wires.
            let any_gl = !gl.is_empty();
            let gl_lane = self.cfg.num_lanes();
            let mut charged = 0usize;
            for (i, port) in ports.iter().enumerate() {
                match *port {
                    PortRequest::Idle => {}
                    PortRequest::Gb { msb_value } => {
                        if !any_gl && outcome.bitlines().is_charged(msb_value as usize, i) {
                            charged += 1;
                        }
                    }
                    PortRequest::Gl => {
                        if outcome.bitlines().is_charged(gl_lane, i) {
                            charged += 1;
                        }
                    }
                }
            }
            if !invariant::single_grant(charged, true) {
                return self.abort(
                    state,
                    Violation {
                        code: codes::SINGLE_GRANT,
                        detail: format!(
                            "{charged} charged sense wires for pattern {pattern:#b} \
                             (expected exactly 1)"
                        ),
                    },
                );
            }
            if !invariant::grants_agree(winner, outcome.winner()) {
                return self.abort(
                    state,
                    Violation {
                        code: codes::GRANT_AGREEMENT,
                        detail: format!(
                            "behavioural arbiter granted {winner:?} but the bitline \
                             circuit granted {:?} for pattern {pattern:#b}",
                            outcome.winner()
                        ),
                    },
                );
            }
        }

        // --- Commit the grant. ----------------------------------------
        let post_tick_msb: Vec<u64> = (0..n).map(|i| ssvc.msb_value(i)).collect();
        let waited_pre = winner.map(|w| match class {
            TrafficClass::GuaranteedLatency => u64::from(state.gl_wait[w]),
            TrafficClass::BestEffort => u64::from(state.starved[w]),
            TrafficClass::GuaranteedBandwidth => 0,
        });
        if let Some(w) = winner {
            match class {
                TrafficClass::GuaranteedLatency => gl_lrg.grant(w),
                TrafficClass::BestEffort => be_lrg.grant(w),
                TrafficClass::GuaranteedBandwidth => {
                    let bumped = (ssvc.aux_vc(w) + ssvc.vtick(w)).min(cap);
                    ssvc.commit_win(w);
                    let saturated = ssvc.saturation_count() > 0;
                    // Mirror the winner's register: one shift per MSB
                    // step crossed, then the policy's collapse action.
                    for _ in post_tick_msb[w]..(bumped >> self.cfg.lsb_bits()) {
                        regs[w].shift_up();
                    }
                    if saturated {
                        match self.scenario.policy {
                            CounterPolicy::SubtractRealClock => {}
                            CounterPolicy::Halve => regs.iter_mut().for_each(|r| r.halve()),
                            CounterPolicy::Reset => regs.iter_mut().for_each(|r| r.reset()),
                        }
                    }
                    if let Some(r) = rec.as_deref_mut() {
                        let cycle = r.cycle;
                        r.events.push(Event {
                            cycle,
                            kind: EventKind::AuxVc {
                                output: 0,
                                input: w as u32,
                                aux: ssvc.aux_vc(w),
                                saturated,
                            },
                        });
                    }
                    if let Some(v) =
                        self.check_thermometers(&regs, &ssvc, "after the winner's Vtick charge")
                    {
                        return self.abort(state, v);
                    }
                }
            }
        }
        if let (Some(r), Some(w)) = (rec.as_deref_mut(), winner) {
            let cycle = r.cycle;
            r.events.push(Event {
                cycle,
                kind: EventKind::Grant {
                    output: 0,
                    input: w as u32,
                    class,
                    len_flits: 1,
                    waited: waited_pre.unwrap_or(0),
                },
            });
        }

        // --- V3: counters stay within their configured width. ---------
        for i in 0..n {
            if !invariant::aux_within_cap(ssvc.aux_vc(i), cap) {
                return self.abort(
                    state,
                    Violation {
                        code: codes::AUX_WIDTH,
                        detail: format!(
                            "auxVC[{i}] = {} exceeds the {}-bit cap {cap}",
                            ssvc.aux_vc(i),
                            self.cfg.counter_bits()
                        ),
                    },
                );
            }
        }

        // --- V4/V5: starvation and waiting-time observation. ----------
        let be_round = gl.is_empty() && gb.is_empty() && !be.is_empty();
        let mut starved = state.starved.clone();
        let mut gl_wait = state.gl_wait.clone();
        for i in 0..n {
            let requested = pattern & (1 << i) != 0;
            match self.scenario.mix[i] {
                TrafficClass::BestEffort => {
                    if !requested || winner == Some(i) {
                        starved[i] = 0;
                    } else if be_round {
                        // Lost a best-effort round to another BE input;
                        // cycles pre-empted by GL/GB traffic do not count
                        // against the LRG fairness guarantee.
                        starved[i] = starved[i].saturating_add(1);
                    }
                    if !invariant::lrg_no_starvation(u64::from(starved[i]), n) {
                        return self.abort(
                            state,
                            Violation {
                                code: codes::LRG_STARVATION,
                                detail: format!(
                                    "BE input {i} lost {} consecutive contested rounds \
                                     (radix {n})",
                                    starved[i]
                                ),
                            },
                        );
                    }
                }
                TrafficClass::GuaranteedLatency => {
                    if !requested || winner == Some(i) {
                        gl_wait[i] = 0;
                    } else {
                        gl_wait[i] = gl_wait[i].saturating_add(1);
                    }
                    if !invariant::gl_wait_within_bound(u64::from(gl_wait[i]), self.eq1_bound) {
                        return self.abort(
                            state,
                            Violation {
                                code: codes::GL_BOUND,
                                detail: format!(
                                    "GL input {i} has waited {} cycles, above the Eq. 1 \
                                     bound of {} ({} GL inputs)",
                                    gl_wait[i], self.eq1_bound, self.n_gl
                                ),
                            },
                        );
                    }
                }
                TrafficClass::GuaranteedBandwidth => {}
            }
        }

        // --- Pack the successor state. --------------------------------
        let real_lsb = if self.scenario.policy == CounterPolicy::SubtractRealClock {
            (state.real_lsb + 1) % self.cfg.msb_step()
        } else {
            0
        };
        let next = ModelState {
            aux: (0..n).map(|i| ssvc.aux_vc(i)).collect(),
            real_lsb,
            gb_order: order_bytes(ssvc.lrg()),
            gl_order: order_bytes(&gl_lrg),
            be_order: order_bytes(&be_lrg),
            starved,
            gl_wait,
        };
        StepOutput {
            next,
            violation: None,
        }
    }

    /// V2: every mirrored thermometer register must be well formed and
    /// agree with the counter's significant bits.
    fn check_thermometers(
        &self,
        regs: &[ThermometerRegister],
        ssvc: &SsvcArbiter,
        phase: &str,
    ) -> Option<Violation> {
        for (i, reg) in regs.iter().enumerate() {
            if !invariant::thermometer_well_formed(reg.code()) {
                return Some(Violation {
                    code: codes::THERMOMETER,
                    detail: format!(
                        "input {i}: thermometer code {:#b} is malformed {phase}",
                        reg.code()
                    ),
                });
            }
            if reg.value() != ssvc.msb_value(i) {
                return Some(Violation {
                    code: codes::THERMOMETER,
                    detail: format!(
                        "input {i}: register lane {} diverged from counter MSBs {} {phase}",
                        reg.value(),
                        ssvc.msb_value(i)
                    ),
                });
            }
        }
        None
    }

    /// Wraps a violation into a step output whose successor is the
    /// (unchanged) source state — exploration stops at the violation,
    /// so the successor is never enqueued.
    fn abort(&self, state: &ModelState, violation: Violation) -> StepOutput {
        StepOutput {
            next: state.clone(),
            violation: Some(violation),
        }
    }
}

/// An LRG's priority permutation as compact bytes for state hashing.
fn order_bytes(lrg: &Lrg) -> Vec<u8> {
    lrg.priority_order().into_iter().map(|p| p as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb2() -> Scenario {
        Scenario::new(
            "gb2",
            CounterPolicy::SubtractRealClock,
            vec![
                TrafficClass::GuaranteedBandwidth,
                TrafficClass::GuaranteedBandwidth,
            ],
            vec![1, 3],
        )
    }

    #[test]
    fn rebuild_round_trips_through_step() {
        let model = Model::new(gb2());
        let s0 = model.initial_state();
        // Stepping twice from the same state is deterministic.
        let a = model.step(&s0, 0b11, None);
        let b = model.step(&s0, 0b11, None);
        assert_eq!(a, b);
        assert!(a.violation.is_none());
        // The winner charged its counter.
        assert_eq!(a.next.aux.iter().sum::<u64>(), 1);
    }

    #[test]
    fn idle_pattern_only_advances_the_clock() {
        let model = Model::new(gb2());
        let s0 = model.initial_state();
        let out = model.step(&s0, 0, None);
        assert!(out.violation.is_none());
        assert_eq!(out.next.aux, vec![0, 0]);
        assert_eq!(out.next.real_lsb, 1);
        assert_eq!(out.next.gb_order, s0.gb_order);
    }

    #[test]
    fn lrg_orders_survive_the_permutation_encoding() {
        let model = Model::new(gb2());
        let s0 = model.initial_state();
        // Input 0 wins (identity LRG, equal counters) and drops to the
        // bottom of the GB order.
        let out = model.step(&s0, 0b11, None);
        assert_eq!(out.next.gb_order, vec![1, 0]);
        // Rebuilding from that state and tying again must grant 1.
        let out2 = model.step(&out.next, 0b11, None);
        assert!(out2.violation.is_none());
        assert_eq!(out2.next.aux[1], 3);
    }

    #[test]
    fn gl_preempts_and_resets_its_wait() {
        let model = Model::new(Scenario::new(
            "gl-gb",
            CounterPolicy::Reset,
            vec![
                TrafficClass::GuaranteedLatency,
                TrafficClass::GuaranteedBandwidth,
            ],
            vec![1, 1],
        ));
        let out = model.step(&model.initial_state(), 0b11, None);
        assert!(out.violation.is_none());
        // GL wins, so its wait counter stays zero and no GB charge
        // happened.
        assert_eq!(out.next.gl_wait[0], 0);
        assert_eq!(out.next.aux, vec![0, 0]);
    }
}
