//! Packet descriptors shared by the traffic generators and the switch.

use std::fmt;

use crate::{Cycle, FlowId, PacketId, TrafficClass};

/// Upper bound on packet length in flits accepted by the toolkit.
///
/// The paper's experiments use 1–8 flit packets; the generous bound exists
/// only to catch corrupted configurations early.
pub const MAX_PACKET_FLITS: u64 = 1024;

/// An immutable description of a packet at injection time.
///
/// A `PacketSpec` is what a traffic source hands to an input port: which
/// flow it belongs to, its QoS class, how many flits it carries, and when
/// it was created. The switch wraps it with mutable transit state.
///
/// # Examples
///
/// ```
/// use ssq_types::{Cycle, FlowId, InputId, OutputId, PacketId, PacketSpec, TrafficClass};
///
/// let spec = PacketSpec::new(
///     PacketId::new(0),
///     FlowId::new(InputId::new(1), OutputId::new(0)),
///     TrafficClass::GuaranteedBandwidth,
///     8,
///     Cycle::new(100),
/// );
/// assert_eq!(spec.len_flits(), 8);
/// assert_eq!(spec.class(), TrafficClass::GuaranteedBandwidth);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketSpec {
    id: PacketId,
    flow: FlowId,
    class: TrafficClass,
    len_flits: u64,
    created: Cycle,
}

impl PacketSpec {
    /// Creates a packet descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero or exceeds [`MAX_PACKET_FLITS`]; both
    /// indicate a broken workload generator rather than a recoverable
    /// condition.
    #[must_use]
    pub fn new(
        id: PacketId,
        flow: FlowId,
        class: TrafficClass,
        len_flits: u64,
        created: Cycle,
    ) -> Self {
        assert!(
            (1..=MAX_PACKET_FLITS).contains(&len_flits),
            "packet length {len_flits} flits outside 1..={MAX_PACKET_FLITS}"
        );
        PacketSpec {
            id,
            flow,
            class,
            len_flits,
            created,
        }
    }

    /// Unique identifier assigned at injection.
    #[must_use]
    pub const fn id(self) -> PacketId {
        self.id
    }

    /// The `(input, output)` flow this packet belongs to.
    #[must_use]
    pub const fn flow(self) -> FlowId {
        self.flow
    }

    /// QoS traffic class.
    #[must_use]
    pub const fn class(self) -> TrafficClass {
        self.class
    }

    /// Packet length in flits.
    #[must_use]
    pub const fn len_flits(self) -> u64 {
        self.len_flits
    }

    /// Cycle at which the source created the packet.
    #[must_use]
    pub const fn created(self) -> Cycle {
        self.created
    }
}

impl fmt::Display for PacketSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {} {}f @{}]",
            self.id,
            self.class,
            self.flow,
            self.len_flits,
            self.created.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputId, OutputId};

    fn spec(len: u64) -> PacketSpec {
        PacketSpec::new(
            PacketId::new(1),
            FlowId::new(InputId::new(0), OutputId::new(1)),
            TrafficClass::BestEffort,
            len,
            Cycle::new(5),
        )
    }

    #[test]
    fn accessors_return_construction_values() {
        let s = spec(8);
        assert_eq!(s.id(), PacketId::new(1));
        assert_eq!(s.flow().output(), OutputId::new(1));
        assert_eq!(s.class(), TrafficClass::BestEffort);
        assert_eq!(s.len_flits(), 8);
        assert_eq!(s.created(), Cycle::new(5));
    }

    #[test]
    #[should_panic(expected = "packet length 0")]
    fn zero_length_packets_are_rejected() {
        let _ = spec(0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_packets_are_rejected() {
        let _ = spec(MAX_PACKET_FLITS + 1);
    }

    #[test]
    fn boundary_lengths_are_accepted() {
        assert_eq!(spec(1).len_flits(), 1);
        assert_eq!(spec(MAX_PACKET_FLITS).len_flits(), MAX_PACKET_FLITS);
    }

    #[test]
    fn display_includes_class_and_flow() {
        let s = spec(4);
        let text = s.to_string();
        assert!(text.contains("BE"));
        assert!(text.contains("In0->Out1"));
    }
}
