//! Common vocabulary types for the `swizzle-qos` workspace.
//!
//! This crate defines the identifiers, units, traffic classes, and switch
//! geometry shared by every other crate in the reproduction of
//! *Quality-of-Service for a High-Radix Switch* (Abeyratne et al., DAC 2014).
//!
//! Everything here is deliberately small and dependency-free: newtypes such
//! as [`Cycle`], [`Rate`], [`InputId`], and [`OutputId`] exist so that the
//! arbitration, traffic, and switch crates cannot accidentally confuse a
//! port index with a lane index or a point in time with a duration.
//!
//! Two leaf modules hold shared mathematics rather than vocabulary:
//! [`bounds`] is the single implementation of the paper's Eq. 1–3
//! guaranteed-latency formulas, and [`invariant`] is the V1–V6 predicate
//! catalog compiled into both the `ssq-verify` model checker and
//! `ssq-core`'s `sanitizer` feature.
//!
//! # Examples
//!
//! ```
//! use ssq_types::{Geometry, TrafficClass, Rate};
//!
//! # fn main() -> Result<(), ssq_types::GeometryError> {
//! // The paper's flagship configuration: a radix-64 switch with 256-bit
//! // output channels, which is the smallest bus that supports all three
//! // QoS classes at that radix (paper §4.4).
//! let geom = Geometry::new(64, 256)?;
//! assert_eq!(geom.num_lanes(), 4);
//! assert!(geom.supports_classes(3));
//!
//! let r = Rate::new(0.4).expect("valid fraction");
//! assert!(r.value() > 0.0);
//! assert_eq!(TrafficClass::GuaranteedLatency.priority(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod class;
mod error;
mod geometry;
mod ids;
pub mod invariant;
mod packet;
pub mod rng;
mod units;

pub use class::TrafficClass;
pub use error::{GeometryError, RateError};
pub use geometry::Geometry;
pub use ids::{FlowId, InputId, OutputId, PacketId};
pub use packet::{PacketSpec, MAX_PACKET_FLITS};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use units::{Cycle, Cycles, Rate};
