//! Identifier newtypes for ports, flows, and packets.

use std::fmt;

/// Index of an input port of the switch.
///
/// Input ports are numbered `0..radix`. The newtype prevents input indices
/// from being confused with output indices or lane offsets.
///
/// # Examples
///
/// ```
/// use ssq_types::InputId;
///
/// let input = InputId::new(3);
/// assert_eq!(input.index(), 3);
/// assert_eq!(format!("{input}"), "In3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InputId(usize);

impl InputId {
    /// Creates an input-port identifier from a zero-based index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        InputId(index)
    }

    /// Returns the zero-based index of the port.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all input identifiers of a switch with `radix` ports.
    ///
    /// ```
    /// use ssq_types::InputId;
    ///
    /// let all: Vec<_> = InputId::all(4).collect();
    /// assert_eq!(all.len(), 4);
    /// assert_eq!(all[2], InputId::new(2));
    /// ```
    pub fn all(radix: usize) -> impl Iterator<Item = InputId> {
        (0..radix).map(InputId)
    }
}

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "In{}", self.0)
    }
}

impl From<InputId> for usize {
    fn from(id: InputId) -> usize {
        id.0
    }
}

/// Index of an output port (output channel) of the switch.
///
/// # Examples
///
/// ```
/// use ssq_types::OutputId;
///
/// let out = OutputId::new(7);
/// assert_eq!(out.index(), 7);
/// assert_eq!(format!("{out}"), "Out7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OutputId(usize);

impl OutputId {
    /// Creates an output-port identifier from a zero-based index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        OutputId(index)
    }

    /// Returns the zero-based index of the port.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all output identifiers of a switch with `radix` ports.
    pub fn all(radix: usize) -> impl Iterator<Item = OutputId> {
        (0..radix).map(OutputId)
    }
}

impl fmt::Display for OutputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Out{}", self.0)
    }
}

impl From<OutputId> for usize {
    fn from(id: OutputId) -> usize {
        id.0
    }
}

/// A flow: the stream of packets that traverses one `(input, output)`
/// crosspoint of the single-stage switch.
///
/// The paper (footnote 1) defines a flow as "a stream of packets that
/// traverse the same route from a source to a destination"; in a
/// single-crossbar network the route is fully determined by the pair.
///
/// # Examples
///
/// ```
/// use ssq_types::{FlowId, InputId, OutputId};
///
/// let flow = FlowId::new(InputId::new(2), OutputId::new(5));
/// assert_eq!(flow.input().index(), 2);
/// assert_eq!(flow.output().index(), 5);
/// assert_eq!(format!("{flow}"), "In2->Out5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId {
    input: InputId,
    output: OutputId,
}

impl FlowId {
    /// Creates a flow identifier for the crosspoint `(input, output)`.
    #[must_use]
    pub const fn new(input: InputId, output: OutputId) -> Self {
        FlowId { input, output }
    }

    /// The source input port of the flow.
    #[must_use]
    pub const fn input(self) -> InputId {
        self.input
    }

    /// The destination output port of the flow.
    #[must_use]
    pub const fn output(self) -> OutputId {
        self.output
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.input, self.output)
    }
}

/// Globally unique packet identifier, assigned at injection time.
///
/// # Examples
///
/// ```
/// use ssq_types::PacketId;
///
/// let first = PacketId::new(0);
/// let second = first.next();
/// assert!(second > first);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw sequence number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// Returns the raw sequence number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the identifier that follows this one.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying `u64`, which cannot occur in any
    /// realistic simulation length.
    #[must_use]
    pub fn next(self) -> Self {
        PacketId(self.0.checked_add(1).expect("packet id overflow"))
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_id_roundtrip() {
        let id = InputId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn output_id_roundtrip() {
        let id = OutputId::new(63);
        assert_eq!(id.index(), 63);
        assert_eq!(usize::from(id), 63);
    }

    #[test]
    fn input_ids_are_ordered() {
        assert!(InputId::new(1) < InputId::new(2));
    }

    #[test]
    fn all_inputs_covers_radix() {
        let ids: Vec<_> = InputId::all(64).collect();
        assert_eq!(ids.len(), 64);
        assert_eq!(ids[0], InputId::new(0));
        assert_eq!(ids[63], InputId::new(63));
    }

    #[test]
    fn all_outputs_covers_radix() {
        assert_eq!(OutputId::all(16).count(), 16);
    }

    #[test]
    fn flow_id_accessors() {
        let flow = FlowId::new(InputId::new(1), OutputId::new(9));
        assert_eq!(flow.input(), InputId::new(1));
        assert_eq!(flow.output(), OutputId::new(9));
    }

    #[test]
    fn flow_display_is_readable() {
        let flow = FlowId::new(InputId::new(0), OutputId::new(0));
        assert_eq!(flow.to_string(), "In0->Out0");
    }

    #[test]
    fn packet_id_next_increments() {
        let id = PacketId::new(7);
        assert_eq!(id.next().raw(), 8);
    }

    #[test]
    fn packet_id_ordering_follows_sequence() {
        assert!(PacketId::new(1) < PacketId::new(2));
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!InputId::new(0).to_string().is_empty());
        assert!(!OutputId::new(0).to_string().is_empty());
        assert!(!PacketId::new(0).to_string().is_empty());
    }
}
