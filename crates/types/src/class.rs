//! The three QoS traffic classes of the paper (§3).

use std::fmt;

/// Traffic class of a packet, in the paper's order of increasing priority.
///
/// * [`TrafficClass::BestEffort`] — no guarantees; served by
///   least-recently-granted arbitration when no higher class is requesting.
/// * [`TrafficClass::GuaranteedBandwidth`] — per-flow reserved rates
///   enforced by the SSVC Virtual Clock mechanism.
/// * [`TrafficClass::GuaranteedLatency`] — infrequent time-critical packets
///   (interrupts, watchdog timers) with absolute priority and a provable
///   worst-case waiting-time bound.
///
/// # Examples
///
/// ```
/// use ssq_types::TrafficClass;
///
/// let mut classes = TrafficClass::ALL;
/// classes.sort_by_key(|c| c.priority());
/// assert_eq!(classes[2], TrafficClass::GuaranteedLatency);
/// assert!(TrafficClass::GuaranteedLatency.outranks(TrafficClass::BestEffort));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TrafficClass {
    /// Best-Effort (BE): lowest priority, the Swizzle Switch default.
    #[default]
    BestEffort,
    /// Guaranteed Bandwidth (GB): Virtual Clock enforced reserved rates.
    GuaranteedBandwidth,
    /// Guaranteed Latency (GL): highest priority, bounded waiting time.
    GuaranteedLatency,
}

impl TrafficClass {
    /// All classes, lowest priority first.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::BestEffort,
        TrafficClass::GuaranteedBandwidth,
        TrafficClass::GuaranteedLatency,
    ];

    /// Numeric priority: BE = 0, GB = 1, GL = 2. Higher wins arbitration.
    #[must_use]
    pub const fn priority(self) -> u8 {
        match self {
            TrafficClass::BestEffort => 0,
            TrafficClass::GuaranteedBandwidth => 1,
            TrafficClass::GuaranteedLatency => 2,
        }
    }

    /// Whether `self` preempts `other` in switch arbitration.
    ///
    /// The paper's class ordering is strict: any GL request makes all
    /// ongoing GB arbitration lose (Fig. 3), and GB packets are served
    /// before BE packets.
    #[must_use]
    pub const fn outranks(self, other: TrafficClass) -> bool {
        self.priority() > other.priority()
    }

    /// Short label used in experiment tables ("BE", "GB", "GL").
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            TrafficClass::BestEffort => "BE",
            TrafficClass::GuaranteedBandwidth => "GB",
            TrafficClass::GuaranteedLatency => "GL",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_matches_paper() {
        assert!(
            TrafficClass::GuaranteedLatency.priority()
                > TrafficClass::GuaranteedBandwidth.priority()
        );
        assert!(TrafficClass::GuaranteedBandwidth.priority() > TrafficClass::BestEffort.priority());
    }

    #[test]
    fn outranks_is_strict() {
        assert!(!TrafficClass::BestEffort.outranks(TrafficClass::BestEffort));
        assert!(TrafficClass::GuaranteedLatency.outranks(TrafficClass::GuaranteedBandwidth));
        assert!(!TrafficClass::BestEffort.outranks(TrafficClass::GuaranteedLatency));
    }

    #[test]
    fn all_lists_every_class_once() {
        assert_eq!(TrafficClass::ALL.len(), 3);
        let mut priorities: Vec<_> = TrafficClass::ALL.iter().map(|c| c.priority()).collect();
        priorities.dedup();
        assert_eq!(priorities, vec![0, 1, 2]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TrafficClass::BestEffort.label(), "BE");
        assert_eq!(TrafficClass::GuaranteedBandwidth.label(), "GB");
        assert_eq!(TrafficClass::GuaranteedLatency.label(), "GL");
    }

    #[test]
    fn default_is_best_effort() {
        assert_eq!(TrafficClass::default(), TrafficClass::BestEffort);
    }

    #[test]
    fn display_matches_label() {
        for class in TrafficClass::ALL {
            assert_eq!(class.to_string(), class.label());
        }
    }

    #[test]
    fn ord_matches_priority() {
        let mut v = vec![
            TrafficClass::GuaranteedLatency,
            TrafficClass::BestEffort,
            TrafficClass::GuaranteedBandwidth,
        ];
        v.sort();
        assert_eq!(v, TrafficClass::ALL.to_vec());
    }
}
