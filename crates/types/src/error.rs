//! Error types for constructing validated values.

use std::error::Error;
use std::fmt;

/// Error returned when a bandwidth fraction is outside `[0, 1]` or not
/// finite.
///
/// # Examples
///
/// ```
/// use ssq_types::Rate;
///
/// let err = Rate::new(2.0).unwrap_err();
/// assert!(err.to_string().contains("2"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateError {
    value: f64,
}

impl RateError {
    pub(crate) fn new(value: f64) -> Self {
        RateError { value }
    }

    /// The offending value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bandwidth fraction {} is not a finite number in [0, 1]",
            self.value
        )
    }
}

impl Error for RateError {}

/// Error returned when a switch geometry is physically invalid.
///
/// # Examples
///
/// ```
/// use ssq_types::{Geometry, GeometryError};
///
/// // A 64-bit bus on a radix-128 switch cannot host even one lane of
/// // inhibit-based arbitration.
/// let err = Geometry::new(128, 64).unwrap_err();
/// assert!(matches!(err, GeometryError::NoLanes { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The radix was zero or one; a switch needs at least two ports.
    RadixTooSmall {
        /// The rejected radix.
        radix: usize,
    },
    /// The bus cannot host a single arbitration lane: each lane needs as
    /// many bitlines as the switch has inputs (paper §3.1, footnote 2).
    NoLanes {
        /// The rejected radix.
        radix: usize,
        /// The rejected bus width in bits.
        bus_width_bits: usize,
    },
    /// The bus width is not a multiple of the radix, so lanes would not
    /// tile the output bus exactly.
    UnevenLanes {
        /// The rejected radix.
        radix: usize,
        /// The rejected bus width in bits.
        bus_width_bits: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeometryError::RadixTooSmall { radix } => {
                write!(
                    f,
                    "switch radix {radix} is too small; need at least 2 ports"
                )
            }
            GeometryError::NoLanes {
                radix,
                bus_width_bits,
            } => write!(
                f,
                "a {bus_width_bits}-bit bus cannot host any {radix}-wire arbitration lane"
            ),
            GeometryError::UnevenLanes {
                radix,
                bus_width_bits,
            } => write!(
                f,
                "bus width {bus_width_bits} is not a multiple of radix {radix}"
            ),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_error_reports_value() {
        let err = RateError::new(-3.0);
        assert_eq!(err.value(), -3.0);
        assert!(err.to_string().contains("-3"));
    }

    #[test]
    fn geometry_errors_display_configuration() {
        let err = GeometryError::NoLanes {
            radix: 128,
            bus_width_bits: 64,
        };
        let msg = err.to_string();
        assert!(msg.contains("128"));
        assert!(msg.contains("64"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RateError>();
        assert_error::<GeometryError>();
    }
}
