//! The paper's guaranteed-latency mathematics (§3.4), shared by every
//! layer that reasons about GL service: the Eq. 1 worst-case waiting
//! bound and the Eqs. 2–3 burst budgets.
//!
//! This module is the single source of truth for those formulas.
//! `ssq-core` wraps them behind its `GlScenario` API for simulation,
//! `ssq-check` applies them statically to configurations, and
//! `ssq-verify` uses them as the V5 invariant bound during exhaustive
//! state-space exploration. The three consumers' test suites cross-check
//! one another against worked examples, so a regression here fails in
//! three places at once.

/// Eq. 1: the maximum waiting time `τ_GL` for a buffered GL packet at
/// the switch:
///
/// ```text
/// τ_GL <= l_max + N_GL,o * (b + ceil(b / l_min))
/// ```
///
/// `l_max` covers the wait for channel release from a packet already
/// holding the channel; `N_GL,o · b` the transmit latency of buffered
/// flits ahead of this packet; `N_GL,o · ceil(b / l_min)` the
/// arbitration latency (one cycle per packet, at most `ceil(b / l_min)`
/// packets per buffer).
///
/// # Panics
///
/// Panics if `l_min` is zero.
///
/// # Examples
///
/// ```
/// use ssq_types::bounds::gl_latency_bound;
///
/// // One interrupt source with a 4-flit buffer and single-flit packets
/// // waits at most 1 + 1*(4 + 4) = 9 cycles.
/// assert_eq!(gl_latency_bound(1, 1, 1, 4), 9);
/// ```
#[must_use]
pub fn gl_latency_bound(l_max: u64, l_min: u64, n_gl: u64, buffer_flits: u64) -> u64 {
    assert!(l_min > 0, "l_min must be positive");
    l_max + n_gl * (buffer_flits + buffer_flits.div_ceil(l_min))
}

/// Eqs. 2–3: maximum burst sizes (in packets) for GL inputs with ordered
/// latency constraints `L₁ <= L₂ <= … <= L_N` (tightest first):
///
/// ```text
/// σ₁ = (L₁ − l_max) / ((l_max + 1) · N)
/// σₙ = σₙ₋₁ + (Lₙ − Lₙ₋₁) / ((l_max + 1) · (N − n))        (n > 1)
/// ```
///
/// The flow with constraint `Lₙ` "can burst as many flits as the flow
/// with the `Lₙ₋₁` constraint but has to compete with the remaining
/// `N_GL,o − n` flows with higher latency constraints". Results are
/// floored to whole packets; a constraint too tight to admit even one
/// packet yields 0. For the loosest flow (`n = N`) the divisor `N − n`
/// is zero, meaning no *other* flow constrains it beyond its own
/// constraint; the budget is then limited by its own latency headroom
/// against the already-granted bursts.
///
/// # Panics
///
/// Panics if `constraints` is empty or not sorted ascending.
///
/// # Examples
///
/// ```
/// use ssq_types::bounds::gl_burst_budgets;
///
/// // Two GL flows with 1-flit packets; the tighter flow gets the
/// // smaller budget.
/// let budgets = gl_burst_budgets(&[40, 100], 1);
/// assert!(budgets[0] <= budgets[1]);
/// ```
#[must_use]
pub fn gl_burst_budgets(constraints: &[u64], l_max: u64) -> Vec<u64> {
    assert!(!constraints.is_empty(), "need at least one constraint");
    assert!(
        constraints.windows(2).all(|w| w[0] <= w[1]),
        "constraints must be sorted tightest (smallest) first"
    );
    let n = constraints.len() as u64;
    let slot = l_max + 1;
    let mut budgets = Vec::with_capacity(constraints.len());
    // Eq. 2.
    budgets.push(constraints[0].saturating_sub(l_max) / (slot * n));
    // Eq. 3.
    for (idx, pair) in constraints.windows(2).enumerate() {
        let k = (idx + 2) as u64; // this is σ_k for k = idx + 2
        let prev = budgets[idx];
        let delta = pair[1] - pair[0];
        let competitors = n - k;
        let extra = if competitors == 0 {
            // The loosest flow competes with nobody beyond the bursts
            // already granted: its headroom converts one-for-one into
            // packet slots.
            delta / slot
        } else {
            delta / (slot * competitors)
        };
        budgets.push(prev + extra);
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_matches_the_paper_shape() {
        // 8 inputs, 4-flit buffers, packets 1..=8 flits:
        // 8 + 8*(4 + 4/1) = 72.
        assert_eq!(gl_latency_bound(8, 1, 8, 4), 72);
        // b=6, l_min=4: at most ceil(6/4)=2 buffered packets per input.
        assert_eq!(gl_latency_bound(4, 4, 2, 6), 4 + 2 * (6 + 2));
    }

    #[test]
    #[should_panic(expected = "l_min")]
    fn zero_l_min_rejected() {
        let _ = gl_latency_bound(1, 0, 1, 4);
    }

    #[test]
    fn budgets_match_worked_examples() {
        assert_eq!(gl_burst_budgets(&[101], 1), vec![50]);
        assert_eq!(gl_burst_budgets(&[201; 8], 1)[0], 12);
        assert_eq!(gl_burst_budgets(&[50, 100, 400], 4), vec![3, 13, 73]);
    }

    #[test]
    fn too_tight_constraint_yields_zero() {
        assert_eq!(gl_burst_budgets(&[3], 8)[0], 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_constraints_rejected() {
        let _ = gl_burst_budgets(&[100, 50], 1);
    }
}
