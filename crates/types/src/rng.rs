//! Small, dependency-free pseudo-random number generators.
//!
//! The workspace must build and test fully offline, so instead of the
//! `rand` crate it carries these two classic generators:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. Used to expand
//!   a single `u64` seed into well-distributed state words.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's xoshiro256** generator,
//!   the workhorse behind every stochastic traffic source and randomized
//!   test in the workspace.
//!
//! Both are deterministic functions of their seed, which is exactly what
//! the simulator needs: every experiment is reproducible from a `u64`.
//!
//! # Examples
//!
//! ```
//! use ssq_types::rng::Xoshiro256StarStar;
//!
//! let mut a = Xoshiro256StarStar::seed_from_u64(7);
//! let mut b = Xoshiro256StarStar::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let f = a.f64();
//! assert!((0.0..1.0).contains(&f));
//! assert!(a.below(10) < 10);
//! ```

/// The SplitMix64 generator: a 64-bit state advanced by a Weyl sequence
/// and finalized with two xor-shift-multiply rounds.
///
/// Primarily a seed expander — its output stream has no correlations
/// between nearby seeds, so it safely turns one `u64` into the four
/// state words [`Xoshiro256StarStar`] needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub const fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator: 256 bits of state, period `2^256 − 1`,
/// and excellent statistical quality for simulation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose state is expanded from `seed` with
    /// [`SplitMix64`], the seeding procedure recommended by the xoshiro
    /// authors.
    #[must_use]
    pub const fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit value.
    pub const fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn f64(&mut self) -> f64 {
        // 53-bit mantissa; dividing by 2^53 keeps the result below 1.
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform `u64` in `[0, bound)`, bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Reject the tail of the u64 range that does not divide evenly.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform index in `[0, len)` — the destination-pattern helper.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        usize::try_from(self.below(len as u64)).expect("bound fits usize")
    }

    /// A uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut low = false;
        let mut high = false;
        for _ in 0..10_000 {
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f), "{f} outside [0,1)");
            low |= f < 0.1;
            high |= f > 0.9;
        }
        assert!(low && high, "unit interval not covered");
    }

    #[test]
    fn f64_mean_is_about_half() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mean: f64 = (0..100_000).map(|_| rng.f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.index(8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v = rng.range(4, 7);
            assert!((4..=7).contains(&v));
            seen_lo |= v == 4;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_rejects_zero_bound() {
        let _ = Xoshiro256StarStar::seed_from_u64(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        assert!(!(0..1_000).any(|_| rng.chance(0.0)));
        assert!((0..1_000).all(|_| rng.chance(1.0)));
    }
}
