//! Time and bandwidth units.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use crate::error::RateError;

/// A point in simulated time, measured in clock cycles since reset.
///
/// [`Cycle`] is a *position*; [`Cycles`] is a *duration*. The arithmetic
/// impls only allow the combinations that make dimensional sense:
/// `Cycle + Cycles -> Cycle` and `Cycle - Cycle -> Cycles`.
///
/// # Examples
///
/// ```
/// use ssq_types::{Cycle, Cycles};
///
/// let t0 = Cycle::ZERO;
/// let t1 = t0 + Cycles::new(10);
/// assert_eq!(t1 - t0, Cycles::new(10));
/// assert_eq!(t1.value(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a time point from a raw cycle count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Advances by one cycle.
    #[must_use]
    pub const fn next(self) -> Self {
        Cycle(self.0.wrapping_add(1))
    }

    /// The duration since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: Cycle) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<Cycles> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycle {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Cycles;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: Cycle) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

/// A duration measured in clock cycles.
///
/// # Examples
///
/// ```
/// use ssq_types::Cycles;
///
/// let total: Cycles = [Cycles::new(1), Cycles::new(2)].into_iter().sum();
/// assert_eq!(total.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// A zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a duration from a raw cycle count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The duration as a floating-point number of cycles, for statistics.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;

    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

/// A fraction of a channel's bandwidth, in `[0, 1]`.
///
/// Used both for reserved rates (paper §3.3: the fractions of an output
/// channel's bandwidth allocated to GB flows and to the GL class) and for
/// injection rates in flits/input/cycle (Fig. 4's x-axis).
///
/// # Examples
///
/// ```
/// use ssq_types::Rate;
///
/// let r = Rate::new(0.4)?;
/// assert_eq!(r.value(), 0.4);
/// assert!(Rate::new(1.5).is_err());
/// assert!(Rate::new(f64::NAN).is_err());
/// # Ok::<(), ssq_types::RateError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// A zero rate (no bandwidth reserved / no injection).
    pub const ZERO: Rate = Rate(0.0);

    /// The full channel bandwidth.
    pub const FULL: Rate = Rate(1.0);

    /// Creates a rate from a fraction.
    ///
    /// # Errors
    ///
    /// Returns [`RateError`] if `fraction` is not a finite number in
    /// `[0, 1]`.
    pub fn new(fraction: f64) -> Result<Self, RateError> {
        if fraction.is_finite() && (0.0..=1.0).contains(&fraction) {
            Ok(Rate(fraction))
        } else {
            Err(RateError::new(fraction))
        }
    }

    /// Creates a rate expressed as a percentage of the channel bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`RateError`] if `percent` is not a finite number in
    /// `[0, 100]`.
    ///
    /// ```
    /// use ssq_types::Rate;
    ///
    /// assert_eq!(Rate::from_percent(40.0)?, Rate::new(0.4)?);
    /// # Ok::<(), ssq_types::RateError>(())
    /// ```
    pub fn from_percent(percent: f64) -> Result<Self, RateError> {
        Rate::new(percent / 100.0)
    }

    /// Returns the fraction in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the rate as a percentage in `[0, 100]`.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Whether no bandwidth at all is represented.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_plus_duration() {
        assert_eq!(Cycle::new(5) + Cycles::new(3), Cycle::new(8));
    }

    #[test]
    fn cycle_difference_is_duration() {
        assert_eq!(Cycle::new(9) - Cycle::new(4), Cycles::new(5));
    }

    #[test]
    fn saturating_since_floors_at_zero() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), Cycles::ZERO);
        assert_eq!(
            Cycle::new(10).saturating_since(Cycle::new(3)),
            Cycles::new(7)
        );
    }

    #[test]
    fn cycle_next_advances() {
        assert_eq!(Cycle::ZERO.next(), Cycle::new(1));
    }

    #[test]
    fn add_assign_on_cycle() {
        let mut t = Cycle::ZERO;
        t += Cycles::new(4);
        assert_eq!(t, Cycle::new(4));
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn rate_rejects_out_of_range() {
        assert!(Rate::new(-0.1).is_err());
        assert!(Rate::new(1.01).is_err());
        assert!(Rate::new(f64::INFINITY).is_err());
        assert!(Rate::new(f64::NAN).is_err());
    }

    #[test]
    fn rate_accepts_boundaries() {
        assert!(Rate::new(0.0).is_ok());
        assert!(Rate::new(1.0).is_ok());
    }

    #[test]
    fn rate_percent_roundtrip() {
        let r = Rate::from_percent(5.0).unwrap();
        assert!((r.as_percent() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rate_zero_detection() {
        assert!(Rate::ZERO.is_zero());
        assert!(!Rate::FULL.is_zero());
    }

    #[test]
    fn rate_display_shows_percent() {
        assert_eq!(Rate::new(0.25).unwrap().to_string(), "25.0%");
    }
}
