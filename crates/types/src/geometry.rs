//! Switch geometry: radix, bus width, and the arbitration-lane budget.

use std::fmt;

use crate::error::GeometryError;

/// Physical geometry of a single-stage Swizzle Switch.
///
/// The output data bus of each channel is reused for inhibit-based
/// arbitration. A *lane* is a group of bitlines with exactly as many wires
/// as the switch has inputs — the number needed for one least-recently-
/// granted (LRG) arbitration (paper §3.1, footnote 2). Therefore
///
/// ```text
/// num_lanes = bus_width_bits / radix          (paper §4.4)
/// ```
///
/// The lane budget determines which QoS configurations are feasible:
/// supporting BE + GB + GL needs at least three lanes, so a radix-64
/// switch needs a 256-bit bus while radix 8–32 fit in 128 bits.
///
/// # Examples
///
/// ```
/// use ssq_types::Geometry;
///
/// # fn main() -> Result<(), ssq_types::GeometryError> {
/// let g = Geometry::new(8, 128)?;
/// assert_eq!(g.num_lanes(), 16);
/// // One lane is dedicated to GL, the rest form the GB thermometer space.
/// assert_eq!(g.gb_lanes(), 8);   // largest power of two <= 15
/// assert_eq!(g.significant_bits(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    radix: usize,
    bus_width_bits: usize,
}

impl Geometry {
    /// Creates a geometry for a `radix × radix` switch with
    /// `bus_width_bits`-bit output channels.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the radix is below 2, the bus cannot
    /// host a single lane, or the bus width is not a multiple of the radix.
    pub fn new(radix: usize, bus_width_bits: usize) -> Result<Self, GeometryError> {
        if radix < 2 {
            return Err(GeometryError::RadixTooSmall { radix });
        }
        if bus_width_bits < radix {
            return Err(GeometryError::NoLanes {
                radix,
                bus_width_bits,
            });
        }
        if !bus_width_bits.is_multiple_of(radix) {
            return Err(GeometryError::UnevenLanes {
                radix,
                bus_width_bits,
            });
        }
        Ok(Geometry {
            radix,
            bus_width_bits,
        })
    }

    /// Number of input (and output) ports.
    #[must_use]
    pub const fn radix(self) -> usize {
        self.radix
    }

    /// Width of each output channel in bits.
    #[must_use]
    pub const fn bus_width_bits(self) -> usize {
        self.bus_width_bits
    }

    /// Total number of arbitration lanes: `bus_width_bits / radix`.
    #[must_use]
    pub const fn num_lanes(self) -> usize {
        self.bus_width_bits / self.radix
    }

    /// Number of bitlines per lane (equal to the radix).
    #[must_use]
    pub const fn lane_wires(self) -> usize {
        self.radix
    }

    /// Lanes available to the GB thermometer comparison once one lane is
    /// reserved for the GL class: the largest power of two that fits in
    /// `num_lanes − 1`.
    ///
    /// The thermometer code indexes lanes with the top
    /// [`significant_bits`](Self::significant_bits) of the `auxVC` counter,
    /// so the usable GB lane count must be a power of two.
    #[must_use]
    pub const fn gb_lanes(self) -> usize {
        let available = self.num_lanes().saturating_sub(1);
        if available == 0 {
            0
        } else {
            // Largest power of two <= available.
            1usize << (usize::BITS - 1 - available.leading_zeros())
        }
    }

    /// Number of most-significant `auxVC` bits compared by the SSVC
    /// arbitration: `log2(gb_lanes)`.
    ///
    /// Fig. 1 uses 3 significant bits (8 GB lanes on a 64-bit bus at
    /// radix 8, with no GL lane); Fig. 4's configuration uses 4 significant
    /// bits on a 128-bit bus at radix 8.
    #[must_use]
    pub const fn significant_bits(self) -> u32 {
        let lanes = self.gb_lanes();
        if lanes == 0 {
            0
        } else {
            lanes.trailing_zeros()
        }
    }

    /// Whether the lane budget can host `classes` distinct traffic classes.
    ///
    /// The paper (§4.4): "To support all three classes, at least three
    /// lanes are needed and each lane has to have as many wires as the
    /// number of input channels."
    #[must_use]
    pub const fn supports_classes(self, classes: usize) -> bool {
        self.num_lanes() >= classes
    }

    /// The minimum bus width (in bits) that supports `classes` traffic
    /// classes at the given radix.
    ///
    /// ```
    /// use ssq_types::Geometry;
    ///
    /// // Paper §4.4: radix-64 needs a 256-bit bus for three classes ...
    /// assert_eq!(Geometry::min_bus_width(64, 3), 256);
    /// // ... while radix 8/16/32 fit in 128 bits.
    /// assert!(Geometry::min_bus_width(32, 3) <= 128);
    /// ```
    #[must_use]
    pub const fn min_bus_width(radix: usize, classes: usize) -> usize {
        // Round the raw requirement up to the next power of two, the bus
        // widths actually manufactured (64/128/256/512).
        let raw = radix * classes;
        let mut width = 64;
        while width < raw {
            width *= 2;
        }
        width
    }

    /// Total number of crosspoints in the switch (`radix²`).
    #[must_use]
    pub const fn crosspoints(self) -> usize {
        self.radix * self.radix
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} switch, {}-bit channels ({} lanes)",
            self.radix,
            self.radix,
            self.bus_width_bits,
            self.num_lanes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_small_radix() {
        assert!(matches!(
            Geometry::new(1, 64),
            Err(GeometryError::RadixTooSmall { radix: 1 })
        ));
    }

    #[test]
    fn rejects_bus_without_a_lane() {
        assert!(matches!(
            Geometry::new(128, 64),
            Err(GeometryError::NoLanes { .. })
        ));
    }

    #[test]
    fn rejects_uneven_lane_tiling() {
        assert!(matches!(
            Geometry::new(24, 128),
            Err(GeometryError::UnevenLanes { .. })
        ));
    }

    #[test]
    fn figure1_configuration_has_eight_lanes() {
        // Fig. 1: radix-8 switch with a 64-bit output bus.
        let g = Geometry::new(8, 64).unwrap();
        assert_eq!(g.num_lanes(), 8);
        assert_eq!(g.lane_wires(), 8);
    }

    #[test]
    fn figure4_configuration_has_four_significant_bits() {
        // Fig. 4 details: radix 8, 128-bit output channel, "4 significant
        // bits of auxVC used for SSVC arbitration".
        let g = Geometry::new(8, 128).unwrap();
        assert_eq!(g.num_lanes(), 16);
        assert_eq!(g.gb_lanes(), 8);
        // With the GL lane reserved, 15 lanes remain and the power-of-two
        // thermometer space is 8 lanes = 3 bits; without a GL reservation
        // the full 16 lanes = 4 bits are available, matching the paper's
        // "GB traffic only" experiment.
        assert_eq!(g.significant_bits(), 3);
    }

    #[test]
    fn paper_scalability_table() {
        // §4.4: 128-bit bus suffices for radix 8/16/32 (>= 3 lanes);
        // radix 64 needs 256-bit.
        for radix in [8, 16, 32] {
            let g = Geometry::new(radix, 128).unwrap();
            assert!(g.supports_classes(3), "radix {radix} should fit 128-bit");
        }
        let g64_128 = Geometry::new(64, 128).unwrap();
        assert!(!g64_128.supports_classes(3));
        let g64_256 = Geometry::new(64, 256).unwrap();
        assert!(g64_256.supports_classes(3));
    }

    #[test]
    fn min_bus_width_matches_paper() {
        assert_eq!(Geometry::min_bus_width(64, 3), 256);
        assert_eq!(Geometry::min_bus_width(8, 3), 64);
        assert_eq!(Geometry::min_bus_width(32, 3), 128);
    }

    #[test]
    fn gb_lanes_is_power_of_two() {
        for radix in [4usize, 8, 16, 32, 64] {
            for width in [64usize, 128, 256, 512] {
                if width % radix != 0 || width < radix {
                    continue;
                }
                let g = Geometry::new(radix, width).unwrap();
                let lanes = g.gb_lanes();
                if lanes > 0 {
                    assert!(lanes.is_power_of_two());
                    assert!(lanes <= g.num_lanes());
                    assert_eq!(1usize << g.significant_bits(), lanes);
                }
            }
        }
    }

    #[test]
    fn crosspoints_is_radix_squared() {
        let g = Geometry::new(64, 512).unwrap();
        assert_eq!(g.crosspoints(), 4096);
    }

    #[test]
    fn display_mentions_radix_and_width() {
        let g = Geometry::new(16, 128).unwrap();
        let s = g.to_string();
        assert!(s.contains("16x16"));
        assert!(s.contains("128-bit"));
    }
}
