//! The machine-checkable invariant catalog (V1–V6) of the arbitration
//! pipeline, as pure predicates over primitive values.
//!
//! Two consumers compile these exact predicates:
//!
//! * `ssq-verify` evaluates them over every reachable state of a small
//!   switch (the bounded exhaustive model checker), and
//! * `ssq-core`'s `sanitizer` cargo feature compiles them into
//!   assertion checks at the grant/inhibit hot-path sites.
//!
//! Keeping the predicates here — in the dependency-free vocabulary
//! crate — guarantees the offline checker and the runtime sanitizer can
//! never drift apart. Each predicate documents which `SSQV00x`
//! diagnostic it backs (see DESIGN.md §7 for the full table):
//!
//! | code    | invariant                                                |
//! |---------|----------------------------------------------------------|
//! | SSQV001 | V1 — exactly one grant per output bus per cycle          |
//! | SSQV002 | V2 — thermometer codes are monotone/well-formed          |
//! | SSQV003 | V3 — `auxVC` never exceeds its configured width          |
//! | SSQV004 | V4 — LRG never starves a continuous requester > radix    |
//! | SSQV005 | V5 — observed GL wait never exceeds the Eq. 1 bound      |
//! | SSQV006 | V6 — behavioural arbiter ≡ bitline circuit model         |

/// V1 (SSQV001): an output bus carries exactly one grant per cycle.
///
/// `charged_senses` counts how many requesting inputs sensed a
/// still-charged wire after the inhibit phase; with at least one
/// requester present it must be exactly one.
#[must_use]
pub const fn single_grant(charged_senses: usize, any_requester: bool) -> bool {
    if any_requester {
        charged_senses == 1
    } else {
        charged_senses == 0
    }
}

/// V2 (SSQV002): a thermometer code is well formed — a non-empty block
/// of contiguous low-order ones (`0b1`, `0b11`, `0b111`, …), so the
/// sense lane it encodes is unambiguous and monotone in the counter's
/// significant bits.
///
/// # Examples
///
/// ```
/// use ssq_types::invariant::thermometer_well_formed;
///
/// assert!(thermometer_well_formed(0b1));
/// assert!(thermometer_well_formed(0b111));
/// assert!(!thermometer_well_formed(0));      // no lane selected
/// assert!(!thermometer_well_formed(0b101));  // hole in the code
/// assert!(!thermometer_well_formed(0b110));  // does not start at bit 0
/// ```
#[must_use]
pub const fn thermometer_well_formed(code: u64) -> bool {
    code != 0 && code & code.wrapping_add(1) == 0
}

/// V3 (SSQV003): an `auxVC` counter stays within its configured width.
#[must_use]
pub const fn aux_within_cap(aux: u64, saturation_cap: u64) -> bool {
    aux <= saturation_cap
}

/// V4 (SSQV004): least-recently-granted arbitration cannot starve a
/// continuously-requesting input. With `radix` competitors, every loss
/// demotes the winner below the loser, so `radix` consecutive losses
/// while continuously requesting are impossible.
#[must_use]
pub const fn lrg_no_starvation(consecutive_losses: u64, radix: usize) -> bool {
    consecutive_losses < radix as u64
}

/// V5 (SSQV005): an observed GL waiting time respects the Eq. 1 bound
/// (compute the bound with [`crate::bounds::gl_latency_bound`]).
#[must_use]
pub const fn gl_wait_within_bound(waited: u64, eq1_bound: u64) -> bool {
    waited <= eq1_bound
}

/// V6 (SSQV006): the behavioural arbiter and the bitline circuit model
/// agree — same winner (and both or neither produced one).
#[must_use]
pub fn grants_agree(behavioural: Option<usize>, circuit: Option<usize>) -> bool {
    behavioural == circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_grant_requires_exactly_one_charged_sense() {
        assert!(single_grant(1, true));
        assert!(!single_grant(0, true));
        assert!(!single_grant(2, true));
        assert!(single_grant(0, false));
        assert!(!single_grant(1, false));
    }

    #[test]
    fn well_formed_codes_are_contiguous_low_ones() {
        for lanes in 1..=63u32 {
            let code = (1u64 << lanes) - 1;
            assert!(thermometer_well_formed(code), "{code:#b}");
        }
        assert!(thermometer_well_formed(u64::MAX));
        for bad in [0u64, 0b10, 0b101, 0b1011, 0b1000] {
            assert!(!thermometer_well_formed(bad), "{bad:#b}");
        }
    }

    #[test]
    fn aux_cap_is_inclusive() {
        assert!(aux_within_cap(15, 15));
        assert!(!aux_within_cap(16, 15));
    }

    #[test]
    fn starvation_threshold_is_the_radix() {
        assert!(lrg_no_starvation(0, 4));
        assert!(lrg_no_starvation(3, 4));
        assert!(!lrg_no_starvation(4, 4));
    }

    #[test]
    fn gl_bound_is_inclusive() {
        assert!(gl_wait_within_bound(9, 9));
        assert!(!gl_wait_within_bound(10, 9));
    }

    #[test]
    fn agreement_covers_the_no_winner_case() {
        assert!(grants_agree(None, None));
        assert!(grants_agree(Some(2), Some(2)));
        assert!(!grants_agree(Some(2), Some(1)));
        assert!(!grants_agree(Some(0), None));
    }
}
