//! Property-based tests over the vocabulary types.

use proptest::prelude::*;

use ssq_types::{Cycle, Cycles, Geometry, Rate};

proptest! {
    /// Geometry arithmetic: lanes tile the bus exactly, the GB lane
    /// budget is a power of two within the total, and the significant
    /// bits address exactly the GB lanes.
    #[test]
    fn geometry_lane_arithmetic(radix_pow in 1u32..7, width_pow in 6u32..10) {
        let radix = 1usize << radix_pow;
        let width = 1usize << width_pow;
        prop_assume!(width >= radix);
        let g = Geometry::new(radix, width).unwrap();
        prop_assert_eq!(g.num_lanes() * g.radix(), g.bus_width_bits());
        prop_assert_eq!(g.lane_wires(), radix);
        prop_assert_eq!(g.crosspoints(), radix * radix);
        let gb = g.gb_lanes();
        if gb > 0 {
            prop_assert!(gb.is_power_of_two());
            prop_assert!(gb <= g.num_lanes());
            prop_assert_eq!(1usize << g.significant_bits(), gb);
            // One lane is always left for GL.
            prop_assert!(gb < g.num_lanes() || g.num_lanes() == 1);
        }
    }

    /// `min_bus_width` really is minimal: it supports the classes, and
    /// the next power of two down does not (unless already at the floor).
    #[test]
    fn min_bus_width_is_minimal(radix_pow in 1u32..7, classes in 1usize..5) {
        let radix = 1usize << radix_pow;
        let width = Geometry::min_bus_width(radix, classes);
        prop_assert!(width.is_power_of_two() && width >= 64);
        let g = Geometry::new(radix, width).unwrap();
        prop_assert!(g.supports_classes(classes));
        if width > 64 {
            let smaller = width / 2;
            if smaller >= radix && smaller.is_multiple_of(radix) {
                let gs = Geometry::new(radix, smaller).unwrap();
                prop_assert!(!gs.supports_classes(classes), "{radix}/{classes}: {smaller} suffices");
            }
        }
    }

    /// Rate accepts exactly finite [0, 1] and round-trips percent.
    #[test]
    fn rate_domain(x in prop::num::f64::ANY) {
        let ok = x.is_finite() && (0.0..=1.0).contains(&x);
        prop_assert_eq!(Rate::new(x).is_ok(), ok);
        if ok {
            let r = Rate::new(x).unwrap();
            prop_assert!((Rate::from_percent(r.as_percent()).unwrap().value() - x).abs() < 1e-12);
        }
    }

    /// Cycle/Cycles arithmetic is consistent: (t + d) - t == d and
    /// saturating_since floors at zero.
    #[test]
    fn cycle_arithmetic(t in 0u64..1u64 << 40, d in 0u64..1u64 << 20) {
        let t0 = Cycle::new(t);
        let later = t0 + Cycles::new(d);
        prop_assert_eq!(later - t0, Cycles::new(d));
        prop_assert_eq!(later.saturating_since(t0), Cycles::new(d));
        prop_assert_eq!(t0.saturating_since(later), Cycles::ZERO);
        prop_assert_eq!(t0.next().value(), t + 1);
    }
}
