//! Randomized property tests over the vocabulary types, driven by the
//! in-tree PRNG so they run without external crates.

use ssq_types::rng::Xoshiro256StarStar;
use ssq_types::{Cycle, Cycles, Geometry, Rate};

const CASES: u64 = 256;

/// Geometry arithmetic: lanes tile the bus exactly, the GB lane budget
/// is a power of two within the total, and the significant bits address
/// exactly the GB lanes.
#[test]
fn geometry_lane_arithmetic() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x9e01);
    for _ in 0..CASES {
        let radix = 1usize << rng.range(1, 6);
        let width = 1usize << rng.range(6, 9);
        if width < radix {
            continue;
        }
        let g = Geometry::new(radix, width).expect("valid geometry");
        assert_eq!(g.num_lanes() * g.radix(), g.bus_width_bits());
        assert_eq!(g.lane_wires(), radix);
        assert_eq!(g.crosspoints(), radix * radix);
        let gb = g.gb_lanes();
        if gb > 0 {
            assert!(gb.is_power_of_two());
            assert!(gb <= g.num_lanes());
            assert_eq!(1usize << g.significant_bits(), gb);
            // One lane is always left for GL.
            assert!(gb < g.num_lanes() || g.num_lanes() == 1);
        }
    }
}

/// `min_bus_width` really is minimal: it supports the classes, and the
/// next power of two down does not (unless already at the floor).
#[test]
fn min_bus_width_is_minimal() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x9e02);
    for _ in 0..CASES {
        let radix = 1usize << rng.range(1, 6);
        let classes = 1 + rng.index(4);
        let width = Geometry::min_bus_width(radix, classes);
        assert!(width.is_power_of_two() && width >= 64);
        let g = Geometry::new(radix, width).expect("minimal width is valid");
        assert!(g.supports_classes(classes));
        if width > 64 {
            let smaller = width / 2;
            if smaller >= radix && smaller.is_multiple_of(radix) {
                let gs = Geometry::new(radix, smaller).expect("half width is valid");
                assert!(
                    !gs.supports_classes(classes),
                    "{radix}/{classes}: {smaller} suffices"
                );
            }
        }
    }
}

/// Rate accepts exactly finite [0, 1] and round-trips percent.
#[test]
fn rate_domain() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x9e03);
    let mut cases: Vec<f64> = vec![
        0.0,
        1.0,
        -0.0,
        1.0 + f64::EPSILON,
        -f64::MIN_POSITIVE,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN,
    ];
    for _ in 0..CASES {
        // Mix in-range values with arbitrary bit patterns.
        cases.push(rng.f64());
        cases.push(f64::from_bits(rng.next_u64()));
    }
    for x in cases {
        let ok = x.is_finite() && (0.0..=1.0).contains(&x);
        assert_eq!(Rate::new(x).is_ok(), ok, "Rate::new({x})");
        if ok {
            let r = Rate::new(x).expect("checked in-range");
            let back = Rate::from_percent(r.as_percent()).expect("percent round-trip");
            assert!((back.value() - x).abs() < 1e-12);
        }
    }
}

/// Cycle/Cycles arithmetic is consistent: (t + d) - t == d and
/// saturating_since floors at zero.
#[test]
fn cycle_arithmetic() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x9e04);
    for _ in 0..CASES {
        let t = rng.below(1 << 40);
        let d = rng.below(1 << 20);
        let t0 = Cycle::new(t);
        let later = t0 + Cycles::new(d);
        assert_eq!(later - t0, Cycles::new(d));
        assert_eq!(later.saturating_since(t0), Cycles::new(d));
        assert_eq!(t0.saturating_since(later), Cycles::ZERO);
        assert_eq!(t0.next().value(), t + 1);
    }
}
