//! Workspace automation for swizzle-qos.
//!
//! ```text
//! cargo run -p xtask -- lint           # source-level lint over crates/*/src
//! cargo run -p xtask -- verify         # fast-tier model check (2x2, exhaustive)
//! cargo run -p xtask -- verify --deep  # + deep tier (4x4, bounded horizon)
//! ```
//!
//! The lint pass is text/token-based (no external parser — see
//! [`scan`]) and enforces the rules in [`rules`]:
//!
//! - `no-unwrap` — no `.unwrap()` / `.expect(...)` / `panic!` outside
//!   `#[cfg(test)]` in the hot-path crates (arbiter, circuit, core, sim);
//! - `no-narrowing-cast` — no truncating `as` casts in counter and
//!   thermometer arithmetic;
//! - `no-print-in-lib` — no `println!` / `eprintln!` in library crates
//!   outside `#[cfg(test)]` (binaries and `src/bin/` are exempt);
//! - `no-todo` — no `todo!` / `unimplemented!` in non-test code anywhere;
//! - `must-use-decision` — `*Decision` / `*Grant` / `*Outcome` types must
//!   be `#[must_use]`;
//! - `no-lossy-index` — no narrowing `as` cast applied directly to a
//!   port/flow identifier outside `ssq-types` (narrow through the one
//!   waived `wire()` funnel);
//! - `invariant-site-coverage` — every grant/inhibit/chain emission in
//!   `crates/core/src/switch.rs` must have a `sanitize::` check within
//!   the preceding window;
//! - `no-silent-degrade` — every QoS degradation site in the core and
//!   faults crates (LRG fallback, GL demotion, re-admission) must have a
//!   fault-family trace emission (`Degraded` / `GuaranteeRevoked` /
//!   `Readmitted`) within the surrounding window.
//!
//! Violations print as `file:line · RULE · message` and make the process
//! exit nonzero. A finding can be waived in place with
//! `// ssq-lint: allow(<rule>)` on (or immediately above) the line.
//!
//! The verify pass runs the [`ssq_verify`] bounded exhaustive model
//! checker over the fast-tier scenario battery (and, with `--deep`, the
//! 4x4 deep tier), printing per-scenario state counts and failing the
//! process on the first invariant violation (the minimal counterexample
//! trace is printed as ssq-trace JSONL).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod diffcheck;
mod rules;
mod scan;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("verify") => verify(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- <lint | verify [--deep]>";

/// Runs the model-checker tiers: the fast battery always, the deep
/// battery with `--deep`. Prints one line per scenario and the first
/// counterexample (as replayable JSONL) on violation.
fn verify(args: &[String]) -> ExitCode {
    let mut deep = false;
    for arg in args {
        match arg.as_str() {
            "--deep" => deep = true,
            other => {
                eprintln!("unknown verify flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut batteries = vec![("fast", ssq_verify::tier::fast_scenarios())];
    if deep {
        batteries.push(("deep", ssq_verify::tier::deep_scenarios()));
    }

    for (tier, scenarios) in batteries {
        let started = std::time::Instant::now();
        let count = scenarios.len();
        let mut states = 0usize;
        let mut transitions = 0u64;
        for scenario in scenarios {
            let outcome = ssq_verify::verify_scenario(&scenario);
            states += outcome.states;
            transitions += outcome.transitions;
            println!(
                "verify[{tier}] {:<28} {:>7} states {:>8} transitions {}",
                outcome.scenario,
                outcome.states,
                outcome.transitions,
                if outcome.closed { "closed" } else { "clipped" },
            );
            if let Some(cx) = outcome.violation {
                eprintln!(
                    "verify[{tier}] {}: {} ({}) violated at depth {}: {}",
                    outcome.scenario,
                    cx.invariant,
                    cx.code,
                    cx.depth(),
                    cx.detail,
                );
                eprintln!("counterexample trace (ssq-trace JSONL):");
                eprintln!("{}", cx.to_jsonl());
                return ExitCode::FAILURE;
            }
        }
        println!(
            "verify[{tier}] clean: {count} scenarios, {states} states, {transitions} transitions \
             in {:.2}s",
            started.elapsed().as_secs_f64(),
        );
    }

    // The engine-conformance battery rides the fast tier: every scenario
    // runs under both the sequential and the sharded parallel engine,
    // and any observable difference fails verify.
    let started = std::time::Instant::now();
    let report = diffcheck::run_battery();
    for line in &report.lines {
        println!("{line}");
    }
    if !report.failures.is_empty() {
        for failure in &report.failures {
            eprintln!("verify[diff] ENGINE DIVERGENCE: {failure}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "verify[diff] clean: {} scenarios, sequential == parallel in {:.2}s",
        report.lines.len(),
        started.elapsed().as_secs_f64(),
    );
    ExitCode::SUCCESS
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(err) => {
            eprintln!("cannot read {}: {err}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rust_files(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut total = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("cannot read {}: {err}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        let scanned = scan::scan(&source);
        for v in rules::check_file(rel, &scanned) {
            println!("{}:{} · {} · {}", rel.display(), v.line, v.rule, v.message);
            total += 1;
        }
    }

    if total == 0 {
        println!(
            "lint clean: {} files, rules [{}]",
            files.len(),
            rules::ALL_RULES.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{total} lint violation(s)");
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest =
        PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| String::from(".")));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
