//! Workspace automation for swizzle-qos.
//!
//! ```text
//! cargo run -p xtask -- lint                    # token-aware static analysis
//! cargo run -p xtask -- lint --json             # machine-readable diagnostics
//! cargo run -p xtask -- lint --update-baseline  # re-grandfather current findings
//! cargo run -p xtask -- verify                  # fast-tier model check (2x2)
//! cargo run -p xtask -- verify --deep           # + deep tier (4x4, bounded)
//! cargo run -p xtask -- bench                   # perf trajectory probe
//! cargo run -p xtask -- bench --json --diff     # record BENCH_<pr>.json, gate vs prior
//! cargo run -p xtask -- bench --quick --diff    # the scripts/check.sh regression gate
//! ```
//!
//! The lint pass is the [`ssq_lint`] engine: an in-tree lexer and
//! item/call-graph parser (no external dependencies) running the nine
//! legacy rules token-aware plus four semantic lints (`shard-purity`,
//! `panic-freedom-reachability`, `no-nondeterministic-order`,
//! `feature-gate-hygiene`). Findings print as
//! `file:line · RULE · message`; a finding can be waived in place with
//! `// ssq-lint: allow(<rule>)` on (or immediately above) the line, and
//! legacy findings recorded in `lint-baseline.txt` don't block CI —
//! only *new* ones fail the pass.
//!
//! The verify pass runs the [`ssq_verify`] bounded exhaustive model
//! checker over the fast-tier scenario battery (and, with `--deep`, the
//! 4x4 deep tier), printing per-scenario state counts and failing the
//! process on the first invariant violation (the minimal counterexample
//! trace is printed as ssq-trace JSONL).
//!
//! The bench task maintains the perf-trajectory record (ROADMAP
//! item 5): a small engine × radix × load matrix timed wall-clock, with
//! the in-switch profiler's prepare/decide/commit breakdown (xtask
//! compiles the model crates with the `prof` feature), written as
//! schema-versioned `results/BENCH_<pr>.json` documents and diffed
//! against the prior document with a configurable regression threshold
//! (`--diff`, nonzero exit on regression).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod bench;
mod diffcheck;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("bench") => bench::run(&args[1..], &workspace_root()),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- <lint [--json] [--update-baseline] \
     | verify [--deep] \
     | bench [--json] [--diff] [--quick] [--threshold R] [--pr N] [--shards]>";

/// Runs the model-checker tiers: the fast battery always, the deep
/// battery with `--deep`. Prints one line per scenario and the first
/// counterexample (as replayable JSONL) on violation.
fn verify(args: &[String]) -> ExitCode {
    let mut deep = false;
    for arg in args {
        match arg.as_str() {
            "--deep" => deep = true,
            other => {
                eprintln!("unknown verify flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut batteries = vec![("fast", ssq_verify::tier::fast_scenarios())];
    if deep {
        batteries.push(("deep", ssq_verify::tier::deep_scenarios()));
    }

    for (tier, scenarios) in batteries {
        let started = std::time::Instant::now();
        let count = scenarios.len();
        let mut states = 0usize;
        let mut transitions = 0u64;
        for scenario in scenarios {
            let outcome = ssq_verify::verify_scenario(&scenario);
            states += outcome.states;
            transitions += outcome.transitions;
            println!(
                "verify[{tier}] {:<28} {:>7} states {:>8} transitions {}",
                outcome.scenario,
                outcome.states,
                outcome.transitions,
                if outcome.closed { "closed" } else { "clipped" },
            );
            if let Some(cx) = outcome.violation {
                eprintln!(
                    "verify[{tier}] {}: {} ({}) violated at depth {}: {}",
                    outcome.scenario,
                    cx.invariant,
                    cx.code,
                    cx.depth(),
                    cx.detail,
                );
                eprintln!("counterexample trace (ssq-trace JSONL):");
                eprintln!("{}", cx.to_jsonl());
                return ExitCode::FAILURE;
            }
        }
        println!(
            "verify[{tier}] clean: {count} scenarios, {states} states, {transitions} transitions \
             in {:.2}s",
            started.elapsed().as_secs_f64(),
        );
    }

    // The engine-conformance battery rides the fast tier: every scenario
    // runs under both the sequential and the sharded parallel engine,
    // and any observable difference fails verify.
    let started = std::time::Instant::now();
    let report = diffcheck::run_battery();
    for line in &report.lines {
        println!("{line}");
    }
    if !report.failures.is_empty() {
        for failure in &report.failures {
            eprintln!("verify[diff] ENGINE DIVERGENCE: {failure}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "verify[diff] clean: {} scenarios, sequential == parallel in {:.2}s",
        report.lines.len(),
        started.elapsed().as_secs_f64(),
    );
    ExitCode::SUCCESS
}

/// Drives the [`ssq_lint`] engine over the workspace, partitions the
/// findings against `lint-baseline.txt`, and fails on anything new.
fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut update_baseline = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown lint flag `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let sources = match ssq_lint::load_workspace(&root) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("cannot load workspace sources: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut report = ssq_lint::run_sources(sources, &ssq_lint::EngineConfig::default());

    let baseline_path = root.join(ssq_lint::BASELINE_FILE);
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = ssq_lint::Baseline::parse(&baseline_text);
    baseline.apply(&mut report.diagnostics);

    if update_baseline {
        let rendered = ssq_lint::baseline::render(&report.diagnostics);
        if let Err(err) = std::fs::write(&baseline_path, rendered) {
            eprintln!("cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "lint baseline updated: {} finding(s) grandfathered in {}",
            report.diagnostics.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        // The JSON document goes to stdout (pipe it into results/);
        // human summaries below go to stderr so the stream stays pure.
        print!(
            "{}",
            ssq_lint::render_json(
                &report.diagnostics,
                &report.discharged,
                report.files_scanned,
                &ssq_lint::rule_names(),
            )
        );
    }

    let blocking = report.blocking();
    let baselined = report.diagnostics.iter().filter(|d| d.baselined).count();
    if blocking.is_empty() {
        let summary = format!(
            "lint clean: {} files, {} rules, {} baselined finding(s), {} discharged, 0 new",
            report.files_scanned,
            ssq_lint::LINTS.len(),
            baselined,
            report.discharged.len(),
        );
        if json {
            eprintln!("{summary}");
        } else {
            println!("{summary}");
        }
        ExitCode::SUCCESS
    } else {
        for d in &blocking {
            eprintln!("{}", d.render());
        }
        eprintln!(
            "{} new lint finding(s) ({} baselined); fix them, waive with \
             `// ssq-lint: allow(<rule>)`, or (deliberately) run \
             `cargo xtask lint --update-baseline`",
            blocking.len(),
            baselined,
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest =
        PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| String::from(".")));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
