//! Workspace automation for swizzle-qos.
//!
//! ```text
//! cargo run -p xtask -- lint      # source-level lint over crates/*/src
//! ```
//!
//! The lint pass is text/token-based (no external parser — see
//! [`scan`]) and enforces the rules in [`rules`]:
//!
//! - `no-unwrap` — no `.unwrap()` / `.expect(...)` / `panic!` outside
//!   `#[cfg(test)]` in the hot-path crates (arbiter, circuit, core, sim);
//! - `no-narrowing-cast` — no truncating `as` casts in counter and
//!   thermometer arithmetic;
//! - `no-print-in-lib` — no `println!` / `eprintln!` in library crates
//!   outside `#[cfg(test)]` (binaries and `src/bin/` are exempt);
//! - `no-todo` — no `todo!` / `unimplemented!` in non-test code anywhere;
//! - `must-use-decision` — `*Decision` / `*Grant` / `*Outcome` types must
//!   be `#[must_use]`.
//!
//! Violations print as `file:line · RULE · message` and make the process
//! exit nonzero. A finding can be waived in place with
//! `// ssq-lint: allow(<rule>)` on (or immediately above) the line.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod rules;
mod scan;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- lint";

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(err) => {
            eprintln!("cannot read {}: {err}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rust_files(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut total = 0usize;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("cannot read {}: {err}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        let scanned = scan::scan(&source);
        for v in rules::check_file(rel, &scanned) {
            println!("{}:{} · {} · {}", rel.display(), v.line, v.rule, v.message);
            total += 1;
        }
    }

    if total == 0 {
        println!(
            "lint clean: {} files, rules [{}]",
            files.len(),
            rules::ALL_RULES.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{total} lint violation(s)");
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest =
        PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| String::from(".")));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
