//! Inline three-way engine differential battery for `xtask verify`.
//!
//! The fast verify tier model-checks the switch's invariants; this
//! battery checks the *engines* against each other. Each scenario builds
//! the same switch several times and drives the copies with the
//! sequential [`Runner`], the sharded [`ParRunner`] at several thread
//! counts, and the word-wide [`BitparRunner`], then compares every
//! observable: the aggregate counters, the GB metrics table (as CSV
//! bytes), and the full event trace. Any difference is a verify failure
//! — the fast engines' contract is bit-exactness, not statistical
//! agreement.

use std::fmt::Write as _;

use ssq_arbiter::CounterPolicy;
use ssq_core::{Policy, QosSwitch, SwitchConfig, SwitchCounters};
use ssq_sim::{BitparRunner, ParRunner, Runner, Schedule};
use ssq_trace::{Event, RingSink};
use ssq_traffic::{Bernoulli, FixedDest, Injector, Periodic, Saturating, UniformDest};
use ssq_types::{Cycles, FlowId, Geometry, InputId, OutputId, Rate, TrafficClass};

/// Warm-up cycles per battery scenario.
const WARMUP: u64 = 200;
/// Measured cycles per battery scenario.
const MEASURE: u64 = 2_000;
/// Thread counts the parallel engine is held to.
const THREADS: &[usize] = &[1, 2, 4];

/// Battery switches are all 8x8.
const RADIX: usize = 8;

/// One engine run's complete observable state.
struct Observation {
    counters: SwitchCounters,
    metrics_csv: String,
    events: Vec<Event>,
}

/// The battery scenarios: `(name, builder)`.
fn scenarios() -> Vec<(&'static str, fn() -> QosSwitch)> {
    vec![
        ("lrg-uniform-be", lrg_uniform_be),
        ("ssvc-subtract-saturated-gb", ssvc_subtract_saturated_gb),
        ("ssvc-halve-gb-be-mix", ssvc_halve_gb_be_mix),
        ("ssvc-reset-three-class", ssvc_reset_three_class),
        ("four-level-contended", four_level_contended),
    ]
}

fn base_config(policy: Policy) -> SwitchConfig {
    SwitchConfig::builder(Geometry::new(8, 128).expect("valid geometry"))
        .policy(policy)
        .gb_buffer_flits(16)
        .sig_bits(3)
        .build()
        .expect("valid config")
}

fn reserve(config: &mut SwitchConfig, rates: &[f64]) {
    for (i, &r) in rates.iter().enumerate() {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(0),
                Rate::new(r).expect("valid rate"),
                8,
            )
            .expect("reservation fits");
    }
}

fn lrg_uniform_be() -> QosSwitch {
    let config = base_config(Policy::LrgOnly);
    let mut switch = QosSwitch::new(config).expect("valid");
    for i in 0..8 {
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.6, 4, 200 + i as u64)),
                Box::new(UniformDest::new(8, 300 + i as u64)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

fn ssvc_subtract_saturated_gb() -> QosSwitch {
    let mut config = base_config(Policy::Ssvc(CounterPolicy::SubtractRealClock));
    reserve(&mut config, &[0.4, 0.3, 0.2]);
    let mut switch = QosSwitch::new(config).expect("valid");
    for i in 0..3 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

fn ssvc_halve_gb_be_mix() -> QosSwitch {
    let mut config = base_config(Policy::Ssvc(CounterPolicy::Halve));
    reserve(&mut config, &[0.5, 0.25]);
    let mut switch = QosSwitch::new(config).expect("valid");
    for i in 0..2 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    for i in 2..6 {
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.4, 4, 500 + i as u64)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

fn ssvc_reset_three_class() -> QosSwitch {
    let mut config = base_config(Policy::Ssvc(CounterPolicy::Reset));
    reserve(&mut config, &[0.4, 0.3]);
    config
        .reservations_mut()
        .reserve_gl(OutputId::new(0), Rate::new(0.05).expect("valid rate"))
        .expect("GL reservation fits");
    let mut switch = QosSwitch::new(config).expect("valid");
    for i in 0..2 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(8)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch.add_injector(
        Injector::new(
            Box::new(Periodic::new(100, 0, 1)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::GuaranteedLatency,
        )
        .for_input(InputId::new(7)),
    );
    switch.add_injector(
        Injector::new(
            Box::new(Bernoulli::new(0.5, 2, 900)),
            Box::new(FixedDest::new(OutputId::new(0))),
            TrafficClass::BestEffort,
        )
        .for_input(InputId::new(4)),
    );
    switch
}

fn four_level_contended() -> QosSwitch {
    let mut config = base_config(Policy::FourLevel);
    reserve(&mut config, &[0.3, 0.3]);
    let mut switch = QosSwitch::new(config).expect("valid");
    for i in 0..2 {
        switch.add_injector(
            Injector::new(
                Box::new(Saturating::new(4)),
                Box::new(FixedDest::new(OutputId::new(0))),
                TrafficClass::GuaranteedBandwidth,
            )
            .for_input(InputId::new(i)),
        );
    }
    for i in 2..5 {
        switch.add_injector(
            Injector::new(
                Box::new(Bernoulli::new(0.5, 4, 700 + i as u64)),
                Box::new(UniformDest::new(8, 800 + i as u64)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

/// Serializes every per-flow metric across all three classes to exact
/// CSV: integer counters verbatim and latencies as `f64` bit patterns,
/// so two runs compare bit-for-bit with no formatting slack.
fn metrics_csv(switch: &QosSwitch) -> String {
    let mut csv = String::from("flow,class,packets,flits,mean_bits,max\n");
    for i in 0..RADIX {
        for o in 0..RADIX {
            let flow = FlowId::new(InputId::new(i), OutputId::new(o));
            for (label, metrics) in [
                ("BE", switch.be_metrics()),
                ("GB", switch.gb_metrics()),
                ("GL", switch.gl_metrics()),
            ] {
                let m = metrics.flow(flow);
                if m.packets() == 0 {
                    continue;
                }
                let _ = writeln!(
                    csv,
                    "{flow},{label},{},{},{:#x},{}",
                    m.packets(),
                    m.flits(),
                    m.mean_latency().to_bits(),
                    m.max_latency().unwrap_or(0),
                );
            }
        }
    }
    csv
}

fn observe(switch: &QosSwitch) -> Observation {
    Observation {
        counters: switch.counters(),
        metrics_csv: metrics_csv(switch),
        events: switch
            .tracer()
            .ring()
            .map(RingSink::events)
            .unwrap_or_default(),
    }
}

fn run_sequential(build: fn() -> QosSwitch) -> Observation {
    let mut switch = build();
    switch.tracer_mut().attach_ring(1 << 16);
    Runner::new(Schedule::new(Cycles::new(WARMUP), Cycles::new(MEASURE))).run(&mut switch);
    observe(&switch)
}

fn run_parallel(build: fn() -> QosSwitch, threads: usize) -> Observation {
    let mut switch = build();
    switch.tracer_mut().attach_ring(1 << 16);
    ParRunner::new(
        Schedule::new(Cycles::new(WARMUP), Cycles::new(MEASURE)),
        threads,
    )
    .run(&mut switch);
    observe(&switch)
}

fn run_bitpar(build: fn() -> QosSwitch) -> Observation {
    let mut switch = build();
    switch.tracer_mut().attach_ring(1 << 16);
    BitparRunner::new(Schedule::new(Cycles::new(WARMUP), Cycles::new(MEASURE))).run(&mut switch);
    observe(&switch)
}

/// Compares two observations; `None` when identical, else what differed.
fn diff(seq: &Observation, par: &Observation) -> Option<String> {
    if seq.counters != par.counters {
        return Some(format!(
            "counters differ: {:?} vs {:?}",
            seq.counters, par.counters
        ));
    }
    if seq.metrics_csv != par.metrics_csv {
        return Some("GB metrics CSV differs".to_string());
    }
    if seq.events != par.events {
        let first = seq
            .events
            .iter()
            .zip(par.events.iter())
            .position(|(a, b)| a != b);
        return Some(format!(
            "event traces differ ({} vs {} events, first divergence at {:?})",
            seq.events.len(),
            par.events.len(),
            first
        ));
    }
    None
}

/// The battery's outcome: per-scenario report lines for the caller to
/// print, and a failure description per diverging run (empty = clean).
pub struct DiffReport {
    /// One human-readable line per scenario, in battery order.
    pub lines: Vec<String>,
    /// One entry per `(scenario, thread count)` that diverged.
    pub failures: Vec<String>,
}

/// Runs every scenario through all three engines (the sharded one at
/// each of [`THREADS`]).
#[must_use]
pub fn run_battery() -> DiffReport {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for (name, build) in scenarios() {
        let seq = run_sequential(build);
        for &threads in THREADS {
            let par = run_parallel(build, threads);
            if let Some(what) = diff(&seq, &par) {
                failures.push(format!("{name} @ {threads} threads: {what}"));
            }
        }
        let bit = run_bitpar(build);
        if let Some(what) = diff(&seq, &bit) {
            failures.push(format!("{name} @ bitpar: {what}"));
        }
        lines.push(format!(
            "verify[diff] {:<28} {:>7} events {:>8} flits  seq == par @ {THREADS:?} threads == bitpar",
            name,
            seq.events.len(),
            seq.counters.delivered_flits,
        ));
    }
    DiffReport { lines, failures }
}
