//! `cargo xtask bench`: the perf-trajectory harness (ROADMAP item 5).
//!
//! Runs a small engine × radix × load matrix — sequential vs. 2-thread
//! sharded engine vs. the word-wide bitpar engine, radix 16 and 64,
//! Bernoulli-0.5 / saturated / periodic-5% uniform traffic (the last is
//! the idle-skipping showcase) — and reports wall-clock simulated
//! cycles/sec plus the
//! in-switch profiler's prepare/decide/commit breakdown (xtask compiles
//! `ssq-core`/`ssq-sim` with the `prof` feature; feature unification
//! keeps that scoped to this binary's build graph). The decide
//! fraction — Amdahl's `f` bounding parallel speedup — comes from the
//! same profiler, the one source of truth shared with the `par_speedup`
//! microbench.
//!
//! * `--json` writes a schema-versioned `results/BENCH_<pr>.json`
//!   ([`ssq_prof::BenchDoc`]) embedding the phase breakdown, host
//!   metadata, and explicitly-labelled Amdahl projections.
//! * `--diff` locates the latest prior `results/BENCH_*.json`, compares
//!   per-(engine, radix, load) cycles/sec, and exits nonzero when any
//!   cell regresses past `--threshold` (default 0.5 = half the prior
//!   throughput). Cross-profile (debug vs release) comparisons are
//!   skipped, not failed.
//! * `--quick` shrinks the matrix (radix 16, fewer cycles) for the
//!   `scripts/check.sh` regression gate.
//! * `--pr N` overrides the trajectory slot (default: one past the
//!   newest existing document).
//! * `--shards` additionally prints the per-output decide attribution.
//!
//! Record trajectory numbers with a release build:
//! `cargo run --release -p xtask -- bench --json --diff`.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use ssq_arbiter::CounterPolicy;
use ssq_core::{Policy, QosSwitch, SwitchConfig};
use ssq_net::{Fabric, FlowSpec, LinkDiscipline, Topology};
use ssq_prof::{trajectory, AmdahlPoint, BenchCell, BenchDoc, BenchEngine, BenchPhase, ProfReport};
use ssq_sim::{BitparRunner, CycleModel, ParRunner, Runner, Schedule};
use ssq_traffic::{Bernoulli, Injector, Periodic, Saturating, TrafficSource, UniformDest};
use ssq_types::{Cycle, Cycles, Geometry, InputId, OutputId, Rate, TrafficClass};

/// Full-matrix schedule (matches the BENCH_6 seed).
const WARMUP: u64 = 200;
const MEASURE: u64 = 1_500;
/// `--quick` schedule for the CI regression gate.
const QUICK_WARMUP: u64 = 100;
const QUICK_MEASURE: u64 = 400;

const RADICES: &[usize] = &[16, 64];
const QUICK_RADICES: &[usize] = &[16];
const PAR_THREADS: usize = 2;

/// Thread counts the Amdahl projection is evaluated at. These are
/// projections from the measured decide fraction, never measurements —
/// the JSON labels them `"mode": "projected"`.
const AMDAHL_THREADS: &[u64] = &[2, 4, 8];

/// Sampling rate for the stage profiler riding the timed parallel run:
/// one cycle in 64 pays three timer reads, which is noise against the
/// multi-microsecond cycles it measures.
const PAR_SAMPLE_EVERY: u64 = 64;

/// The offered-load points of the matrix.
#[derive(Clone, Copy)]
enum Load {
    /// Bernoulli arrivals at 0.5 flits/cycle/input.
    Bernoulli50,
    /// A source that always has a packet ready (saturation throughput).
    Saturated,
    /// Deterministic 5% load: an 8-flit packet every 160 cycles. The
    /// arrivals are predictable, so this is the cell where the bitpar
    /// engine's idle skipping engages.
    Periodic5,
}

impl Load {
    fn name(self) -> &'static str {
        match self {
            Load::Bernoulli50 => "bernoulli-0.5",
            Load::Saturated => "saturated",
            Load::Periodic5 => "periodic-0.05",
        }
    }

    fn source(self, seed: u64) -> Box<dyn TrafficSource + Send + Sync> {
        match self {
            Load::Bernoulli50 => Box::new(Bernoulli::new(0.5, 8, seed)),
            Load::Saturated => Box::new(Saturating::new(8)),
            // Aligned phases: every input bursts on the same cycle, so
            // the switch drains to a genuinely quiescent window between
            // bursts — the shape the idle wheel is built for.
            Load::Periodic5 => {
                let _ = seed;
                Box::new(Periodic::new(160, 0, 8))
            }
        }
    }
}

/// Builds the benchmark rig: per-input GB reservations at each input's
/// "home" output keep the SSVC machinery engaged on every shard, and
/// best-effort uniform traffic contends all outputs.
fn rig(radix: usize, load: Load) -> QosSwitch {
    let width = Geometry::min_bus_width(radix, 3).max(128);
    let geometry = Geometry::new(radix, width).expect("valid geometry");
    let mut config = SwitchConfig::builder(geometry)
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .build()
        .expect("valid config");
    for i in 0..radix {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(i),
                Rate::new(0.5).expect("valid rate"),
                8,
            )
            .expect("reservations fit");
    }
    let mut switch = QosSwitch::new(config).expect("valid switch");
    for i in 0..radix {
        switch.add_injector(
            Injector::new(
                load.source(7_000 + i as u64),
                Box::new(UniformDest::new(radix, 1_000 + i as u64)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

/// Times an unprofiled sequential run: (cycles/sec, delivered flits).
fn timed_sequential(radix: usize, load: Load, schedule: Schedule) -> (f64, u64) {
    let mut switch = rig(radix, load);
    let start = Instant::now();
    Runner::new(schedule).run(&mut switch);
    let secs = start.elapsed().as_secs_f64();
    let cycles = schedule.warmup().value() + schedule.measure().value();
    (cycles as f64 / secs, switch.counters().delivered_flits)
}

/// Times an unprofiled bitpar run (word-wide cycles plus idle skipping
/// where the load permits): (cycles/sec, delivered flits).
fn timed_bitpar(radix: usize, load: Load, schedule: Schedule) -> (f64, u64) {
    let mut switch = rig(radix, load);
    let start = Instant::now();
    BitparRunner::new(schedule).run(&mut switch);
    let secs = start.elapsed().as_secs_f64();
    let cycles = schedule.warmup().value() + schedule.measure().value();
    (cycles as f64 / secs, switch.counters().delivered_flits)
}

/// Times a parallel run with the engine-stage profiler sampling at
/// [`PAR_SAMPLE_EVERY`]: (cycles/sec, delivered flits, stage report).
fn timed_parallel(radix: usize, load: Load, schedule: Schedule) -> (f64, u64, Option<ProfReport>) {
    let mut switch = rig(radix, load);
    let start = Instant::now();
    let (_, stages, _load_acc) =
        ParRunner::new(schedule, PAR_THREADS).run_profiled(&mut switch, PAR_SAMPLE_EVERY);
    let secs = start.elapsed().as_secs_f64();
    let cycles = schedule.warmup().value() + schedule.measure().value();
    (
        cycles as f64 / secs,
        switch.counters().delivered_flits,
        stages,
    )
}

/// Runs the kernel profiler over the measured phase of a sequential
/// run: every measured cycle is sampled and decide time is attributed
/// per output. This run is never used for throughput numbers — the
/// timer laps would inflate them.
fn kernel_profile(radix: usize, load: Load, schedule: Schedule) -> ProfReport {
    let mut switch = rig(radix, load);
    let warm_end = Cycle::ZERO + schedule.warmup();
    let end = warm_end + schedule.measure();
    let mut now = Cycle::ZERO;
    while now < warm_end {
        switch.step(now);
        now = now.next();
    }
    switch.begin_measurement(now);
    switch.prof_arm_detailed(1);
    while now < end {
        switch.step(now);
        now = now.next();
    }
    switch
        .prof_report()
        .expect("xtask builds ssq-core with the prof feature")
}

/// Measures one (radix, load) cell: throughput for both engines, the
/// kernel phase breakdown, and the Amdahl projections derived from it.
/// Returns the cell, the parallel engine's stage report, and the full
/// kernel report (for the per-shard table).
fn measure_cell(
    radix: usize,
    load: Load,
    schedule: Schedule,
) -> (BenchCell, Option<ProfReport>, ProfReport) {
    let (seq_rate, seq_flits) = timed_sequential(radix, load, schedule);
    let (par_rate, par_flits, stages) = timed_parallel(radix, load, schedule);
    assert_eq!(
        seq_flits,
        par_flits,
        "parallel engine diverged from sequential (radix {radix}, {})",
        load.name()
    );
    let (bit_rate, bit_flits) = timed_bitpar(radix, load, schedule);
    assert_eq!(
        seq_flits,
        bit_flits,
        "bitpar engine diverged from sequential (radix {radix}, {})",
        load.name()
    );
    let kernel = kernel_profile(radix, load, schedule);
    let decide_fraction = kernel.decide_fraction().unwrap_or(0.0);
    let phases = kernel
        .phases
        .iter()
        .map(|p| BenchPhase {
            phase: p.name.clone(),
            ns_per_cycle: kernel.ns_per_cycle(&p.name).unwrap_or(0.0),
            fraction: kernel.fraction(&p.name).unwrap_or(0.0),
        })
        .collect();
    let amdahl = AMDAHL_THREADS
        .iter()
        .filter_map(|&t| {
            kernel.amdahl_projection(t).map(|speedup| AmdahlPoint {
                threads: t,
                speedup,
            })
        })
        .collect();
    let cell = BenchCell {
        radix: radix as u64,
        load: load.name().to_string(),
        decide_fraction,
        phases,
        engines: vec![
            BenchEngine {
                engine: "sequential".to_string(),
                threads: 1,
                cycles_per_sec: seq_rate,
                delivered_flits: seq_flits,
            },
            BenchEngine {
                engine: "par".to_string(),
                threads: PAR_THREADS as u64,
                cycles_per_sec: par_rate,
                delivered_flits: par_flits,
            },
            BenchEngine {
                engine: "bitpar".to_string(),
                threads: 1,
                cycles_per_sec: bit_rate,
                delivered_flits: bit_flits,
            },
        ],
        amdahl,
    };
    (cell, stages, kernel)
}

/// Multi-hop fabric throughput: a 3-hop credit-backpressure chain with
/// two GB flows and a GL flow spanning the whole path (the healthy
/// chain-credit campaign rig). One trajectory row pins the fabric's
/// sequential cycles/sec, so a slowdown in the hop/link machinery fails
/// the same gate as the switch kernels. Phases and Amdahl points stay
/// empty: the fabric drives whole switches, so the kernel profiler's
/// prepare/decide/commit split does not apply.
fn measure_fabric_cell(schedule: Schedule) -> BenchCell {
    let topology = Topology::chain(3, LinkDiscipline::Credit);
    let flows = [
        FlowSpec::new(0, 3, TrafficClass::GuaranteedBandwidth)
            .rate(0.4)
            .every(20),
        FlowSpec::new(0, 3, TrafficClass::GuaranteedBandwidth)
            .ports(5, 5)
            .rate(0.2)
            .every(40),
        FlowSpec::new(0, 3, TrafficClass::GuaranteedLatency)
            .ports(6, 6)
            .rate(0.05)
            .every(100),
    ];
    let mut fabric = Fabric::new(topology, &flows, 7).expect("valid fabric");
    let start = Instant::now();
    Runner::new(schedule).run(&mut fabric);
    let secs = start.elapsed().as_secs_f64();
    let cycles = schedule.warmup().value() + schedule.measure().value();
    BenchCell {
        radix: 8,
        load: "fabric-chain3-credit".to_string(),
        decide_fraction: 0.0,
        phases: Vec::new(),
        engines: vec![BenchEngine {
            engine: "sequential".to_string(),
            threads: 1,
            cycles_per_sec: cycles as f64 / secs,
            delivered_flits: fabric.counters().delivered_flits,
        }],
        amdahl: Vec::new(),
    }
}

/// Prints one cell's human-readable summary.
fn print_cell(cell: &BenchCell, stages: Option<&ProfReport>, shards: bool, kernel: &ProfReport) {
    for e in &cell.engines {
        println!(
            "bench/radix{:<3} {:<14} {:<10} x{} {:>12.0} cycles/sec  ({} flits)",
            cell.radix, cell.load, e.engine, e.threads, e.cycles_per_sec, e.delivered_flits
        );
    }
    for p in &cell.phases {
        println!(
            "bench/radix{:<3} {:<14} phase {:<8} {:>8.0} ns/cycle  {:>5.1}%",
            cell.radix,
            cell.load,
            p.phase,
            p.ns_per_cycle,
            p.fraction * 100.0
        );
    }
    if let Some(st) = stages {
        let frac = |name: &str| st.fraction(name).unwrap_or(0.0) * 100.0;
        println!(
            "bench/radix{:<3} {:<14} par stages: gather {:.1}% decide {:.1}% merge {:.1}% \
             ({} sampled cycles)",
            cell.radix,
            cell.load,
            frac("gather"),
            frac("decide"),
            frac("merge"),
            st.sampled_cycles
        );
    }
    let projections: Vec<String> = cell
        .amdahl
        .iter()
        .map(|a| format!("x{}→{:.2}", a.threads, a.speedup))
        .collect();
    println!(
        "bench/radix{:<3} {:<14} decide_fraction {:>5.1}%  amdahl projected [{}]",
        cell.radix,
        cell.load,
        cell.decide_fraction * 100.0,
        projections.join(", ")
    );
    if shards {
        print!("{}", kernel.shard_table().to_text());
    }
}

/// Entry point for
/// `cargo xtask bench [--json] [--diff] [--quick] [--threshold R] [--pr N] [--shards]`.
pub fn run(args: &[String], root: &Path) -> ExitCode {
    let mut json = false;
    let mut diff = false;
    let mut quick = false;
    let mut shards = false;
    let mut threshold = 0.5f64;
    let mut pr_override: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--diff" => diff = true,
            "--quick" => quick = true,
            "--shards" => shards = true,
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => threshold = v,
                _ => {
                    eprintln!("--threshold needs a ratio in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--pr" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => pr_override = Some(v),
                None => {
                    eprintln!("--pr needs a number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown bench flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let (radices, warmup, measure) = if quick {
        (QUICK_RADICES, QUICK_WARMUP, QUICK_MEASURE)
    } else {
        (RADICES, WARMUP, MEASURE)
    };
    let schedule = Schedule::new(Cycles::new(warmup), Cycles::new(measure));

    let results_dir = root.join("results");
    let existing = trajectory::find_benches(&results_dir);
    let pr = pr_override.unwrap_or_else(|| existing.last().map_or(1, |(n, _)| n + 1));

    println!(
        "== xtask bench (BENCH_{pr}: {} cycles/cell, host cores: {host_cores}, \
         par threads: {PAR_THREADS}, profile: {profile}{}) ==",
        warmup + measure,
        if quick { ", quick" } else { "" }
    );

    let mut cells = Vec::new();
    for &radix in radices {
        for load in [Load::Bernoulli50, Load::Saturated, Load::Periodic5] {
            let (cell, stages, kernel) = measure_cell(radix, load, schedule);
            print_cell(&cell, stages.as_ref(), shards, &kernel);
            cells.push(cell);
        }
    }
    let fabric_cell = measure_fabric_cell(schedule);
    for e in &fabric_cell.engines {
        println!(
            "bench/radix{:<3} {:<14} {:<10} x{} {:>12.0} cycles/sec  ({} flits)",
            fabric_cell.radix,
            fabric_cell.load,
            e.engine,
            e.threads,
            e.cycles_per_sec,
            e.delivered_flits
        );
    }
    cells.push(fabric_cell);

    let doc = BenchDoc {
        schema: trajectory::CURRENT_SCHEMA,
        pr,
        profile: profile.to_string(),
        quick,
        host_cores: host_cores as u64,
        par_threads: PAR_THREADS as u64,
        warmup_cycles: warmup,
        measure_cycles: measure,
        cells,
    };

    let mut failed = false;
    if diff {
        // The baseline is the newest document strictly older than the
        // slot being (re)measured, so regenerating BENCH_<pr> still
        // diffs against its predecessor.
        let baseline = existing.iter().rev().find(|(n, _)| *n < pr);
        match baseline {
            None => println!("bench diff: no prior BENCH_*.json to compare against"),
            Some((n, path)) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
                Err(err) => {
                    eprintln!("cannot read {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
                Ok(text) => match BenchDoc::parse(&text) {
                    Err(err) => {
                        eprintln!("cannot parse {}: {err}", path.display());
                        return ExitCode::FAILURE;
                    }
                    Ok(prev) => {
                        println!("bench diff vs BENCH_{n} (threshold {threshold:.2}x):");
                        let report = trajectory::diff(&prev, &doc, threshold);
                        if let Some(note) = &report.skipped {
                            println!("bench diff: {note}");
                        }
                        for line in &report.lines {
                            println!("  {line}");
                        }
                        for reg in &report.regressions {
                            eprintln!("bench REGRESSION: {reg}");
                        }
                        failed = !report.passed();
                    }
                },
            },
        }
    }

    if json {
        if let Err(err) = std::fs::create_dir_all(&results_dir) {
            eprintln!("cannot create {}: {err}", results_dir.display());
            return ExitCode::FAILURE;
        }
        let path = results_dir.join(format!("BENCH_{pr}.json"));
        if let Err(err) = std::fs::write(&path, doc.render()) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench JSON written to {}", path.display());
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schedule() -> Schedule {
        Schedule::new(Cycles::new(20), Cycles::new(60))
    }

    #[test]
    fn kernel_profile_samples_every_measured_cycle() {
        let report = kernel_profile(8, Load::Saturated, tiny_schedule());
        assert_eq!(report.sampled_cycles, 60, "armed after warm-up, rate 1");
        let f: f64 = ["prepare", "decide", "commit"]
            .iter()
            .map(|p| report.fraction(p).expect("phase present"))
            .sum();
        assert!(
            (f - 1.0).abs() < 1e-9,
            "phase fractions partition the cycle"
        );
        let decide = report.decide_fraction().expect("sampled");
        assert!(decide > 0.0 && decide < 1.0, "decide fraction {decide}");
        assert_eq!(report.shards.len(), 8, "per-output decide attribution");
        assert!(report.shards.iter().any(|s| s.ns > 0));
    }

    #[test]
    fn measured_cell_embeds_phases_and_labelled_projections() {
        let (cell, stages, _kernel) = measure_cell(8, Load::Bernoulli50, tiny_schedule());
        assert_eq!(cell.radix, 8);
        assert_eq!(cell.phases.len(), 3);
        assert_eq!(cell.engines.len(), 3);
        for e in &cell.engines[1..] {
            assert_eq!(
                cell.engines[0].delivered_flits, e.delivered_flits,
                "{} engine agrees bit for bit",
                e.engine
            );
        }
        assert_eq!(cell.amdahl.len(), AMDAHL_THREADS.len());
        for a in &cell.amdahl {
            assert!(a.speedup >= 1.0 && a.speedup <= a.threads as f64);
        }
        let stages = stages.expect("xtask builds ssq-sim with prof");
        assert!(stages.sampled_cycles > 0, "stage profiler sampled the run");
    }

    #[test]
    fn fabric_cell_delivers_over_the_chain() {
        let cell = measure_fabric_cell(Schedule::new(Cycles::new(50), Cycles::new(250)));
        assert_eq!(cell.radix, 8);
        assert_eq!(cell.load, "fabric-chain3-credit");
        assert_eq!(cell.engines.len(), 1);
        assert!(
            cell.engines[0].delivered_flits > 0,
            "the 3-hop chain must deliver within 300 cycles"
        );
        assert!(cell.phases.is_empty() && cell.amdahl.is_empty());
    }

    #[test]
    fn rendered_doc_round_trips_through_the_parser() {
        let (cell, _, _) = measure_cell(8, Load::Saturated, tiny_schedule());
        let doc = BenchDoc {
            schema: trajectory::CURRENT_SCHEMA,
            pr: 99,
            profile: "debug".to_string(),
            quick: true,
            host_cores: 4,
            par_threads: PAR_THREADS as u64,
            warmup_cycles: 20,
            measure_cycles: 60,
            cells: vec![cell],
        };
        // Rendering quantizes floats, so live-measured values only
        // stabilize after one pass: render → parse → render must be
        // byte-identical (the trajectory lives in git).
        let text = doc.render();
        let parsed = BenchDoc::parse(&text).expect("round trip");
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.pr, 99);
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.cells[0].phases.len(), 3);
    }
}
