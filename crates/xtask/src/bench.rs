//! `cargo xtask bench`: the perf-trajectory probe (ROADMAP item 5).
//!
//! Runs a small engine × radix × load matrix — sequential vs. 2-thread
//! sharded engine, radix 16 and 64, Bernoulli-0.5 and saturated uniform
//! traffic — and reports wall-clock simulated cycles/sec plus the
//! decide phase's share of cycle time (the Amdahl `f` bounding parallel
//! speedup). With `--json` the run is also recorded to
//! `results/BENCH_6.json` so future PRs can diff simulator throughput
//! against this seed.
//!
//! This is a manual tool, not a CI gate: wall-clock numbers depend on
//! the host and build profile (both are stamped into the JSON), so
//! `scripts/check.sh` deliberately does not run it. Record numbers with
//! a release build: `cargo run --release -p xtask -- bench --json`.

use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ssq_arbiter::CounterPolicy;
use ssq_core::{Policy, QosSwitch, SwitchConfig};
use ssq_sim::{ParRunner, Runner, Schedule, ShardedModel};
use ssq_traffic::{Bernoulli, Injector, Saturating, TrafficSource, UniformDest};
use ssq_types::{Cycle, Cycles, Geometry, InputId, OutputId, Rate, TrafficClass};

const WARMUP: u64 = 200;
const MEASURE: u64 = 1_500;
const RADICES: &[usize] = &[16, 64];
const PAR_THREADS: usize = 2;

/// The two offered-load points of the matrix.
#[derive(Clone, Copy)]
enum Load {
    /// Bernoulli arrivals at 0.5 flits/cycle/input.
    Bernoulli50,
    /// A source that always has a packet ready (saturation throughput).
    Saturated,
}

impl Load {
    fn name(self) -> &'static str {
        match self {
            Load::Bernoulli50 => "bernoulli-0.5",
            Load::Saturated => "saturated",
        }
    }

    fn source(self, seed: u64) -> Box<dyn TrafficSource + Send + Sync> {
        match self {
            Load::Bernoulli50 => Box::new(Bernoulli::new(0.5, 8, seed)),
            Load::Saturated => Box::new(Saturating::new(8)),
        }
    }
}

/// One engine measurement.
struct EngineResult {
    engine: &'static str,
    threads: usize,
    cycles_per_sec: f64,
    delivered_flits: u64,
}

/// One (radix, load) cell of the matrix.
struct Cell {
    radix: usize,
    load: Load,
    decide_fraction: f64,
    engines: Vec<EngineResult>,
}

/// Builds the benchmark rig: per-input GB reservations at each input's
/// "home" output keep the SSVC machinery engaged on every shard, and
/// best-effort uniform traffic contends all outputs.
fn rig(radix: usize, load: Load) -> QosSwitch {
    let width = Geometry::min_bus_width(radix, 3).max(128);
    let geometry = Geometry::new(radix, width).expect("valid geometry");
    let mut config = SwitchConfig::builder(geometry)
        .policy(Policy::Ssvc(CounterPolicy::SubtractRealClock))
        .gb_buffer_flits(16)
        .be_buffer_flits(16)
        .build()
        .expect("valid config");
    for i in 0..radix {
        config
            .reservations_mut()
            .reserve_gb(
                InputId::new(i),
                OutputId::new(i),
                Rate::new(0.5).expect("valid rate"),
                8,
            )
            .expect("reservations fit");
    }
    let mut switch = QosSwitch::new(config).expect("valid switch");
    for i in 0..radix {
        switch.add_injector(
            Injector::new(
                load.source(7_000 + i as u64),
                Box::new(UniformDest::new(radix, 1_000 + i as u64)),
                TrafficClass::BestEffort,
            )
            .for_input(InputId::new(i)),
        );
    }
    switch
}

fn time_run(radix: usize, load: Load, run: impl FnOnce(&mut QosSwitch)) -> (f64, u64) {
    let mut switch = rig(radix, load);
    let start = Instant::now();
    run(&mut switch);
    let secs = start.elapsed().as_secs_f64();
    (
        (WARMUP + MEASURE) as f64 / secs,
        switch.counters().delivered_flits,
    )
}

/// The decide phase's share of cycle time, measured by running the
/// sharded protocol single-threaded and timing each phase (only decide
/// parallelizes).
fn decide_fraction(radix: usize, load: Load) -> f64 {
    let mut switch = rig(radix, load);
    let mut decide = Duration::ZERO;
    let mut total = Duration::ZERO;
    let mut now = Cycle::ZERO;
    for _ in 0..(WARMUP + MEASURE) {
        let t0 = Instant::now();
        switch.shard_prepare(now);
        let t1 = Instant::now();
        let plans: Vec<_> = (0..switch.shard_count())
            .map(|s| switch.shard_decide(s, now))
            .collect();
        let t2 = Instant::now();
        switch.shard_merge(now, plans);
        decide += t2 - t1;
        total += t0.elapsed();
        now = now.next();
    }
    decide.as_secs_f64() / total.as_secs_f64()
}

fn measure_cell(radix: usize, load: Load) -> Cell {
    let schedule = Schedule::new(Cycles::new(WARMUP), Cycles::new(MEASURE));
    let (seq_rate, seq_flits) = time_run(radix, load, |sw| {
        Runner::new(schedule).run(sw);
    });
    let (par_rate, par_flits) = time_run(radix, load, |sw| {
        ParRunner::new(schedule, PAR_THREADS).run(sw);
    });
    assert_eq!(
        seq_flits,
        par_flits,
        "parallel engine diverged from sequential (radix {radix}, {})",
        load.name()
    );
    Cell {
        radix,
        load,
        decide_fraction: decide_fraction(radix, load),
        engines: vec![
            EngineResult {
                engine: "sequential",
                threads: 1,
                cycles_per_sec: seq_rate,
                delivered_flits: seq_flits,
            },
            EngineResult {
                engine: "par",
                threads: PAR_THREADS,
                cycles_per_sec: par_rate,
                delivered_flits: par_flits,
            },
        ],
    }
}

fn render_json(cells: &[Cell], host_cores: usize) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut out = String::from("{\n  \"schema\": 1,\n  \"bench\": \"BENCH_6\",\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!(
        "  \"warmup_cycles\": {WARMUP},\n  \"measure_cycles\": {MEASURE},\n  \"cells\": ["
    ));
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"radix\": {}, \"load\": \"{}\", \"decide_fraction\": {:.4}, \"engines\": [",
            cell.radix,
            cell.load.name(),
            cell.decide_fraction
        ));
        for (j, e) in cell.engines.iter().enumerate() {
            out.push_str(if j == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "      {{\"engine\": \"{}\", \"threads\": {}, \"cycles_per_sec\": {:.0}, \
                 \"delivered_flits\": {}}}",
                e.engine, e.threads, e.cycles_per_sec, e.delivered_flits
            ));
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Entry point for `cargo xtask bench [--json]`.
pub fn run(args: &[String], root: &Path) -> ExitCode {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("unknown bench flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    println!(
        "== xtask bench (BENCH_6: {} cycles/cell, host cores: {host_cores}, profile: {profile}) ==",
        WARMUP + MEASURE
    );

    let mut cells = Vec::new();
    for &radix in RADICES {
        for load in [Load::Bernoulli50, Load::Saturated] {
            let cell = measure_cell(radix, load);
            for e in &cell.engines {
                println!(
                    "bench/radix{:<3} {:<14} {:<10} x{} {:>12.0} cycles/sec  ({} flits)",
                    cell.radix,
                    cell.load.name(),
                    e.engine,
                    e.threads,
                    e.cycles_per_sec,
                    e.delivered_flits
                );
            }
            println!(
                "bench/radix{:<3} {:<14} decide_fraction {:>6.1}%",
                cell.radix,
                cell.load.name(),
                cell.decide_fraction * 100.0
            );
            cells.push(cell);
        }
    }

    if json {
        let doc = render_json(&cells, host_cores);
        let dir = root.join("results");
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("BENCH_6.json");
        if let Err(err) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench JSON written to {}", path.display());
    }
    ExitCode::SUCCESS
}
