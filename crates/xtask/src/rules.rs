//! The lint rules: each inspects one masked source file and reports
//! violations as `(line, rule, message)`.

use std::path::Path;

use crate::scan::Scanned;

/// One lint finding.
pub struct Violation {
    /// 1-based line number.
    pub line: usize,
    /// The rule identifier (usable in `ssq-lint: allow(...)`).
    pub rule: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

/// Crates whose non-test code sits on the simulation hot path: panics
/// there abort entire sweeps, so fallible APIs must return `Result`.
const NO_PANIC_CRATES: &[&str] = &["arbiter", "circuit", "core", "sim"];

/// Files doing counter/thermometer arithmetic, where a narrowing `as`
/// cast silently truncates `auxVC` state.
const NO_NARROWING_FILES: &[&str] = &[
    "crates/arbiter/src/ssvc.rs",
    "crates/arbiter/src/thermometer.rs",
    "crates/stats/src/counter.rs",
];

/// Runs every applicable rule over one scanned file.
///
/// `rel_path` is the path relative to the repository root (used for
/// scoping); findings already have suppressions applied.
pub fn check_file(rel_path: &Path, scanned: &Scanned) -> Vec<Violation> {
    let rel = rel_path.to_string_lossy().replace('\\', "/");
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");

    let mut violations = Vec::new();
    if NO_PANIC_CRATES.contains(&crate_name) {
        no_unwrap(scanned, &mut violations);
    }
    if NO_NARROWING_FILES.contains(&rel.as_str()) {
        no_narrowing_cast(scanned, &mut violations);
    }
    if is_library_source(&rel) {
        no_print_in_lib(scanned, &mut violations);
    }
    no_todo(scanned, &mut violations);
    must_use_decisions(scanned, &mut violations);
    if crate_name != "types" {
        no_lossy_index(scanned, &mut violations);
    }
    if rel == "crates/core/src/switch.rs" {
        invariant_site_coverage(scanned, &mut violations);
    }
    if rel == "crates/core/src/decide.rs" {
        no_shared_mut_in_shards(scanned, &mut violations);
    }
    if rel.starts_with("crates/core/src/") || rel.starts_with("crates/faults/src/") {
        no_silent_degrade(scanned, &mut violations);
    }

    violations.retain(|v| !scanned.suppressed(v.line - 1, v.rule));
    violations.sort_by_key(|v| v.line);
    violations
}

/// Every rule identifier, for `--help`-style output and tests.
pub const ALL_RULES: &[&str] = &[
    "no-unwrap",
    "no-narrowing-cast",
    "no-print-in-lib",
    "no-todo",
    "must-use-decision",
    "no-lossy-index",
    "invariant-site-coverage",
    "no-shared-mut-in-shards",
    "no-silent-degrade",
];

/// Whether `rel` is library code of a workspace crate: under
/// `crates/*/src` but neither a binary (`src/bin/`) nor a binary crate
/// root (`main.rs`).
fn is_library_source(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.contains("/src/bin/")
        && !rel.ends_with("/main.rs")
}

fn each_hot_line<'a>(scanned: &'a Scanned) -> impl Iterator<Item = (usize, &'a str)> {
    scanned
        .masked
        .lines()
        .enumerate()
        .filter(|(idx, _)| !scanned.test_lines.get(*idx).copied().unwrap_or(false))
}

/// `no-unwrap`: no `.unwrap()`, `.expect(...)`, or `panic!` in non-test
/// code of hot-path crates.
fn no_unwrap(scanned: &Scanned, out: &mut Vec<Violation>) {
    for (idx, line) in each_hot_line(scanned) {
        for (needle, advice) in [
            (
                ".unwrap()",
                "return a Result (or use unwrap_or/match) instead of .unwrap()",
            ),
            (
                ".expect(",
                "return a Result instead of .expect(); panics here abort whole sweeps",
            ),
            (
                "panic!",
                "propagate an error instead of panic! on the simulation hot path",
            ),
        ] {
            if find_token(line, needle) {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-unwrap",
                    message: advice.to_string(),
                });
            }
        }
    }
}

/// `no-narrowing-cast`: no `as u8/u16/u32/i8/i16/i32` in counter and
/// thermometer arithmetic — `auxVC` values are 64-bit and a narrowing
/// cast silently truncates.
fn no_narrowing_cast(scanned: &Scanned, out: &mut Vec<Violation>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (idx, line) in each_hot_line(scanned) {
        let mut from = 0;
        while let Some(rel) = line[from..].find(" as ") {
            let after = &line[from + rel + 4..];
            let target: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if NARROW.contains(&target.as_str()) {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-narrowing-cast",
                    message: format!(
                        "`as {target}` truncates counter state; use try_from or widen the type"
                    ),
                });
            }
            from += rel + 4;
        }
    }
}

/// `no-print-in-lib`: no `println!` / `eprintln!` in library crates
/// outside `cfg(test)` — libraries return data (or emit trace events);
/// only binaries own stdout. Intentional printers (e.g. the bench
/// harness's table emitter) carry `ssq-lint: allow(no-print-in-lib)`
/// waivers.
fn no_print_in_lib(scanned: &Scanned, out: &mut Vec<Violation>) {
    for (idx, line) in each_hot_line(scanned) {
        for needle in ["println!", "eprintln!"] {
            if find_token(line, needle) {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-print-in-lib",
                    message: format!(
                        "{needle} in library code; return data (or emit a trace event) and let \
                         the binary print"
                    ),
                });
            }
        }
    }
}

/// `no-todo`: no `todo!` / `unimplemented!` outside tests, anywhere.
fn no_todo(scanned: &Scanned, out: &mut Vec<Violation>) {
    for (idx, line) in each_hot_line(scanned) {
        for needle in ["todo!", "unimplemented!"] {
            if find_token(line, needle) {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-todo",
                    message: format!("{needle} must not ship in non-test code"),
                });
            }
        }
    }
}

/// `must-use-decision`: arbitration result types (`*Decision`, `*Grant`,
/// `*Outcome`) must be `#[must_use]` — dropping one silently discards an
/// arbitration.
fn must_use_decisions(scanned: &Scanned, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = scanned.masked.lines().collect();
    for (idx, line) in lines.iter().enumerate() {
        if scanned.test_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = declared_type_name(line) else {
            continue;
        };
        let decisionish = ["Decision", "Grant", "Outcome"]
            .iter()
            .any(|suffix| name.ends_with(suffix) && name.len() > suffix.len());
        if !decisionish {
            continue;
        }
        // Look upward through the attribute/derive block for #[must_use].
        let mut has_must_use = false;
        for prev in lines[..idx].iter().rev() {
            let t = prev.trim();
            if t.starts_with("#[") || t.starts_with("#!") || t.ends_with(']') {
                if t.contains("must_use") {
                    has_must_use = true;
                    break;
                }
            } else if t.is_empty() {
                continue;
            } else {
                break;
            }
        }
        if !has_must_use {
            out.push(Violation {
                line: idx + 1,
                rule: "must-use-decision",
                message: format!(
                    "arbitration result type `{name}` must be #[must_use]: dropping one \
                     discards a grant"
                ),
            });
        }
    }
}

/// `no-lossy-index`: no narrowing `as` cast applied directly to a
/// port/flow identifier — `winner as u32`, `input.index() as u32` —
/// outside `ssq-types` (which owns the identifier newtypes). Identifier
/// values must stay in their newtype (or `usize`) until the one waived
/// narrowing funnel (e.g. `switch::wire`) converts them for the trace
/// wire format.
fn no_lossy_index(scanned: &Scanned, out: &mut Vec<Violation>) {
    /// Identifier-ish names whose direct narrowing loses port/flow bits.
    const ID_TOKENS: &[&str] = &["input", "output", "winner", "port", "flow", "lane", "index"];
    const NARROW: &[&str] = &["usize", "u8", "u16", "u32"];
    for (idx, line) in each_hot_line(scanned) {
        let mut from = 0;
        while let Some(rel) = line[from..].find(" as ") {
            let at = from + rel;
            let after = &line[at + 4..];
            let target: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            from = at + 4;
            if !NARROW.contains(&target.as_str()) {
                continue;
            }
            let before = &line[..at];
            let ident: String = before
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let accessor = before.ends_with(".index()") || before.ends_with(".raw()");
            if accessor || ID_TOKENS.contains(&ident.as_str()) {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-lossy-index",
                    message: format!(
                        "`{ident} as {target}` narrows a port/flow identifier; keep the \
                         newtype (or usize) and narrow through the waived wire() funnel"
                    ),
                });
            }
        }
    }
}

/// `invariant-site-coverage`: every grant/inhibit/chain emission site in
/// the switch core must sit within sight of a sanitizer check — a
/// `sanitize::` call in the preceding window — so the runtime
/// invariant-sanitizer (DESIGN.md §7) cannot silently drift out of the
/// hot path as the code evolves. Deliberately uncovered sites carry an
/// `ssq-lint: allow(invariant-site-coverage)` waiver.
fn invariant_site_coverage(scanned: &Scanned, out: &mut Vec<Violation>) {
    /// How many preceding lines may separate a check from its site.
    const WINDOW: usize = 25;
    const SITES: &[&str] = &[
        "EventKind::Grant",
        "EventKind::Inhibit",
        "EventKind::Chained",
    ];
    let lines: Vec<&str> = scanned.masked.lines().collect();
    for (idx, line) in each_hot_line(scanned) {
        let Some(site) = SITES.iter().find(|s| find_token(line, s)) else {
            continue;
        };
        let start = idx.saturating_sub(WINDOW);
        let covered = lines[start..=idx].iter().any(|l| l.contains("sanitize::"));
        if !covered {
            out.push(Violation {
                line: idx + 1,
                rule: "invariant-site-coverage",
                message: format!(
                    "{site} emission has no paired sanitize:: check within {WINDOW} lines; \
                     add the invariant-sanitizer call (or a waiver)"
                ),
            });
        }
    }
}

/// `no-shared-mut-in-shards`: the shard arbitration kernel
/// (`crates/core/src/decide.rs`) must stay free of shared mutable state
/// — no `Mutex`/`RwLock`/`Condvar`, no `Atomic*` types or
/// `sync::atomic` paths, no `Cell`/`RefCell`/`UnsafeCell`. The parallel
/// engine's determinism proof (DESIGN.md §9) rests on `shard_decide`
/// being a pure function of the prepared snapshot: any synchronization
/// or interior mutability would let shard scheduling order leak into
/// decisions, silently breaking bit-exactness with the sequential
/// engine. Deliberate exceptions carry an
/// `ssq-lint: allow(no-shared-mut-in-shards)` waiver.
fn no_shared_mut_in_shards(scanned: &Scanned, out: &mut Vec<Violation>) {
    const TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar", "RefCell", "UnsafeCell"];
    for (idx, line) in each_hot_line(scanned) {
        for needle in TOKENS {
            if find_token(line, needle) {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-shared-mut-in-shards",
                    message: format!(
                        "`{needle}` in the shard decide kernel; shard_decide must be a pure \
                         function of the prepared snapshot (no shared mutable state)"
                    ),
                });
            }
        }
        // Atomic types (AtomicBool, AtomicU64, ...) and atomic module
        // paths: match the family prefix, not an exact token.
        if line.contains("Atomic") || line.contains("atomic::") {
            out.push(Violation {
                line: idx + 1,
                rule: "no-shared-mut-in-shards",
                message: "atomics in the shard decide kernel; shard_decide must be a pure \
                          function of the prepared snapshot (no shared mutable state)"
                    .to_string(),
            });
        }
        // `Cell` alone needs a boundary check that also rejects
        // `RefCell`/`UnsafeCell` double counting: find_token only checks
        // the trailing boundary, so verify the leading one here.
        let mut from = 0;
        while let Some(rel) = line[from..].find("Cell") {
            let at = from + rel;
            let lead_ok = at == 0
                || !line[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            let end = at + "Cell".len();
            let trail_ok = line[end..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_');
            if lead_ok && trail_ok {
                out.push(Violation {
                    line: idx + 1,
                    rule: "no-shared-mut-in-shards",
                    message: "`Cell` in the shard decide kernel; shard_decide must be a pure \
                              function of the prepared snapshot (no interior mutability)"
                        .to_string(),
                });
            }
            from = end;
        }
    }
}

/// `no-silent-degrade`: every QoS degradation site — flipping an output
/// into LRG fallback or GL demotion, or re-running admission — must sit
/// within sight of a fault-family trace emission (`Degraded`,
/// `GuaranteeRevoked`, `Readmitted`, `Detected`, or one of the
/// `emit_degraded`/`detected_degrade` funnels). The two-outcome contract
/// of DESIGN.md §8 says a guarantee never weakens without a structured
/// event on the record; this rule keeps new degradation paths from
/// drifting silent as the code evolves. Deliberately quiet sites carry
/// an `ssq-lint: allow(no-silent-degrade)` waiver.
fn no_silent_degrade(scanned: &Scanned, out: &mut Vec<Violation>) {
    /// How many lines, in either direction, may separate a degradation
    /// from the event that announces it.
    const WINDOW: usize = 25;
    const SITES: &[&str] = &[".set_lrg_fallback(", ".set_gl_demoted(", ".readmit("];
    const LOUD: &[&str] = &[
        "EventKind::Degraded",
        "EventKind::GuaranteeRevoked",
        "EventKind::Readmitted",
        "EventKind::Detected",
        "emit_degraded(",
        "detected_degrade(",
    ];
    let lines: Vec<&str> = scanned.masked.lines().collect();
    for (idx, line) in each_hot_line(scanned) {
        let Some(site) = SITES.iter().find(|s| line.contains(**s)) else {
            continue;
        };
        let start = idx.saturating_sub(WINDOW);
        let end = (idx + WINDOW).min(lines.len().saturating_sub(1));
        let covered = lines[start..=end]
            .iter()
            .any(|l| LOUD.iter().any(|n| l.contains(n)));
        if !covered {
            out.push(Violation {
                line: idx + 1,
                rule: "no-silent-degrade",
                message: format!(
                    "degradation site `{}` has no fault-family trace emission within \
                     {WINDOW} lines; emit Degraded/GuaranteeRevoked/Readmitted (or add \
                     a waiver)",
                    site.trim_start_matches('.').trim_end_matches('(')
                ),
            });
        }
    }
}

/// The type name if this line declares a struct or enum.
fn declared_type_name(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let rest = t
        .strip_prefix("pub struct ")
        .or_else(|| t.strip_prefix("struct "))
        .or_else(|| t.strip_prefix("pub enum "))
        .or_else(|| t.strip_prefix("enum "))
        .or_else(|| t.strip_prefix("pub(crate) struct "))
        .or_else(|| t.strip_prefix("pub(crate) enum "))?;
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

/// Whether `needle` occurs in `line` *not* followed by an identifier
/// continuation — so `.unwrap()` never matches `.unwrap_or()` and
/// `panic!` never matches a hypothetical `panicky!`.
fn find_token(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let end = from + rel + needle.len();
        let boundary = line[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use std::path::PathBuf;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(&PathBuf::from(path), &scan(src))
    }

    #[test]
    fn unwrap_in_hot_crate_is_flagged() {
        let v = check("crates/sim/src/runner.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let v = check(
            "crates/sim/src/runner.rs",
            "fn f() { x.unwrap_or(1); y.unwrap_or_default(); z.unwrap_or_else(|| 2); }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn expect_err_is_not_flagged_but_expect_is() {
        let v = check(
            "crates/core/src/switch.rs",
            "fn f() { x.expect(\"boom\"); }\n",
        );
        assert_eq!(v.len(), 1);
        let v = check(
            "crates/core/src/switch.rs",
            "fn f() { x.expect_err(\"ok\"); }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_inside_cfg_test_is_fine() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
    }

    #[test]
    fn unwrap_outside_hot_crates_is_fine() {
        let v = check("crates/stats/src/table.rs", "fn f() { x.unwrap(); }\n");
        assert!(v.is_empty());
    }

    #[test]
    fn narrowing_cast_scoped_to_counter_files() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(check("crates/arbiter/src/ssvc.rs", src).len(), 1);
        assert!(check("crates/arbiter/src/lrg.rs", src).is_empty());
    }

    #[test]
    fn widening_and_float_casts_are_fine() {
        let src = "fn f(x: u32) { let _ = x as u64; let _ = x as f64; let _ = x as usize; }\n";
        assert!(check("crates/arbiter/src/ssvc.rs", src).is_empty());
    }

    #[test]
    fn println_in_library_source_is_flagged() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        let v = check("crates/stats/src/table.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "no-print-in-lib"));
    }

    #[test]
    fn println_in_binaries_and_tests_is_fine() {
        let src = "fn main() { println!(\"x\"); }\n";
        assert!(check("crates/xtask/src/main.rs", src).is_empty());
        assert!(check("crates/bench/src/bin/fig4.rs", src).is_empty());
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n";
        assert!(check("crates/stats/src/table.rs", src).is_empty());
    }

    #[test]
    fn println_waiver_is_honored() {
        let src = "fn f() { println!(\"x\"); } // ssq-lint: allow(no-print-in-lib)\n";
        assert!(check("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn todo_flagged_everywhere_outside_tests() {
        let v = check("crates/stats/src/table.rs", "fn f() { todo!() }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-todo");
    }

    #[test]
    fn decision_types_require_must_use() {
        let src = "#[derive(Debug)]\npub enum StepDecision { A, B }\n";
        let v = check("crates/core/src/switch.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "must-use-decision");
        let src = "#[derive(Debug)]\n#[must_use]\npub enum StepDecision { A, B }\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
    }

    #[test]
    fn bare_suffix_names_are_not_decision_types() {
        // A type literally named `Outcome` (no prefix) is not matched.
        let src = "pub struct Outcome;\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
    }

    #[test]
    fn suppression_comment_silences_a_rule() {
        let src = "fn f() { x.unwrap() } // ssq-lint: allow(no-unwrap)\n";
        assert!(check("crates/sim/src/runner.rs", src).is_empty());
        let src = "// ssq-lint: allow(no-unwrap)\nfn f() { x.unwrap() }\n";
        assert!(check("crates/sim/src/runner.rs", src).is_empty());
        // Suppressing a different rule does not help.
        let src = "fn f() { x.unwrap() } // ssq-lint: allow(no-todo)\n";
        assert_eq!(check("crates/sim/src/runner.rs", src).len(), 1);
    }

    #[test]
    fn lossy_index_casts_are_flagged_outside_types() {
        let src = "fn f(winner: usize) { g(winner as u32); }\n";
        let v = check("crates/core/src/switch.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-lossy-index");
        // The vocabulary crate owns the newtypes and may narrow.
        assert!(check("crates/types/src/ids.rs", src).is_empty());
    }

    #[test]
    fn accessor_narrowing_is_flagged() {
        let src = "fn f(i: InputId) { g(i.index() as u32); h(i.raw() as u16); }\n";
        let v = check("crates/trace/src/event.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "no-lossy-index"));
    }

    #[test]
    fn non_identifier_and_widening_casts_are_fine() {
        // `lanes` is not the token `lane`; `len` is not listed; u64 is
        // widening; and a waiver silences the funnel itself.
        let src = "fn f() { a(self.lanes as usize); b(len as u32); c(winner as u64); }\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
        let src = "fn f(index: usize) { index as u32 } // ssq-lint: allow(no-lossy-index)\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
    }

    #[test]
    fn uncovered_grant_site_is_flagged() {
        let src = "fn f(&mut self) {\n    self.tracer.emit(|| Event { cycle: 0, kind: EventKind::Grant { output: 0 } });\n}\n";
        let v = check("crates/core/src/switch.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "invariant-site-coverage");
        // Only the switch core is in scope.
        assert!(check("crates/trace/src/event.rs", src).is_empty());
    }

    #[test]
    fn sanitized_grant_site_passes() {
        let src = "fn f(&mut self) {\n    sanitize::single_grant_commit(o, i, blocked);\n    self.tracer.emit(|| Event { cycle: 0, kind: EventKind::Grant { output: 0 } });\n}\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
        let src = "fn f(&mut self) {\n    emit(EventKind::Chained { output: 0 });\n}\n";
        let waived = "fn f(&mut self) {\n    // ssq-lint: allow(invariant-site-coverage)\n    emit(EventKind::Chained { output: 0 });\n}\n";
        assert_eq!(check("crates/core/src/switch.rs", src).len(), 1);
        assert!(check("crates/core/src/switch.rs", waived).is_empty());
    }

    #[test]
    fn silent_degradation_site_is_flagged() {
        let src = "fn f(&mut self, o: usize) {\n    self.faultctl.set_lrg_fallback(o, true);\n}\n";
        let v = check("crates/core/src/switch.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-silent-degrade");
        // Rule is scoped to the core and faults crates.
        assert!(check("crates/arbiter/src/ssvc.rs", src).is_empty());
    }

    #[test]
    fn announced_degradation_passes_and_waiver_works() {
        // The emission may follow the site (state first, event after).
        let src = "fn f(&mut self, o: usize) {\n    self.faultctl.set_gl_demoted(o, true);\n    self.emit_degraded(now, o, \"gl_demoted\");\n}\n";
        assert!(check("crates/core/src/switch.rs", src).is_empty());
        let src = "fn f(&mut self) {\n    self.reservations.readmit(o, 0.5, false);\n    emit(EventKind::Readmitted { output: 0 });\n}\n";
        assert!(check("crates/faults/src/plan.rs", src).is_empty());
        let waived = "fn f(&mut self, o: usize) {\n    // ssq-lint: allow(no-silent-degrade)\n    self.faultctl.set_lrg_fallback(o, true);\n}\n";
        assert!(check("crates/core/src/switch.rs", waived).is_empty());
    }

    #[test]
    fn readmit_output_wrapper_is_not_a_readmit_site() {
        // `.readmit_output(` (the already-loud funnel) is not `.readmit(`.
        let src =
            "fn f(&mut self) {\n    switch.readmit_output(OutputId::new(0), 0.5, false, now);\n}\n";
        assert!(check("crates/faults/src/plan.rs", src).is_empty());
    }

    #[test]
    fn shared_mutability_in_decide_kernel_is_flagged() {
        let src = "use std::sync::Mutex;\nfn f() { let m = Mutex::new(0); }\n";
        let v = check("crates/core/src/decide.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "no-shared-mut-in-shards"));
        // The rule is scoped to the kernel file only.
        assert!(check("crates/core/src/switch.rs", src).is_empty());
        assert!(check("crates/sim/src/par.rs", src).is_empty());
    }

    #[test]
    fn every_shared_mut_family_is_caught() {
        for src in [
            "fn f(l: &RwLock<u64>) {}\n",
            "fn f() { let c = Condvar::new(); }\n",
            "fn f(x: &AtomicUsize) { x.load(Ordering::SeqCst); }\n",
            "use std::sync::atomic::AtomicBool;\n",
            "fn f(c: &Cell<u64>) {}\n",
            "fn f(c: &RefCell<u64>) {}\n",
            "fn f(c: &UnsafeCell<u64>) {}\n",
        ] {
            let v = check("crates/core/src/decide.rs", src);
            assert!(
                v.iter().any(|v| v.rule == "no-shared-mut-in-shards"),
                "missed: {src}"
            );
        }
    }

    #[test]
    fn refcell_is_one_violation_not_two() {
        // `RefCell` must not also count as a bare `Cell` hit.
        let v = check("crates/core/src/decide.rs", "fn f(c: &RefCell<u64>) {}\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn pure_decide_code_and_waivers_pass() {
        let src = "fn decide(&self, o: OutputId) -> OutputPlan { self.plan(o) }\n";
        assert!(check("crates/core/src/decide.rs", src).is_empty());
        // `cost` and `CellLike`-free identifiers sharing letters are fine.
        let src = "fn f(cancel: bool, atomically: u64) { g(cancel, atomically); }\n";
        assert!(check("crates/core/src/decide.rs", src).is_empty());
        let waived = "fn f(x: &AtomicUsize) {} // ssq-lint: allow(no-shared-mut-in-shards)\n";
        assert!(check("crates/core/src/decide.rs", waived).is_empty());
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = "fn f() { g(\".unwrap() panic! todo!\"); } // .expect( todo!\n";
        assert!(check("crates/sim/src/runner.rs", src).is_empty());
    }
}
