//! Source preparation for the lint pass: a character-level scanner that
//! masks comments, string literals, and character literals (so rules
//! never fire inside them), records `#[cfg(test)]` regions, and collects
//! `// ssq-lint: allow(<rule>)` suppressions.
//!
//! No external parser: the scanner understands just enough Rust lexical
//! structure — nested block comments, raw strings with hash fences,
//! lifetimes vs. character literals — to be exact on this codebase.

/// A lint-ready view of one source file.
pub struct Scanned {
    /// The source with comments and literals replaced by spaces
    /// (newlines preserved, so byte offsets and line numbers survive).
    pub masked: String,
    /// For each line (0-based), whether it falls inside a
    /// `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// Per line (0-based): the rules suppressed there. A suppression
    /// comment on its own line applies to the next line as well.
    pub suppressions: Vec<Vec<String>>,
}

impl Scanned {
    /// Whether `rule` is suppressed on 0-based line `line`.
    pub fn suppressed(&self, line: usize, rule: &str) -> bool {
        self.suppressions
            .get(line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Runs the scanner over one file's contents.
pub fn scan(source: &str) -> Scanned {
    let masked = mask(source);
    Scanned {
        test_lines: test_lines(&masked),
        suppressions: suppressions(source),
        masked,
    }
}

/// Replaces comments, strings, and char literals with spaces, keeping
/// newlines so line/offset arithmetic is unchanged.
fn mask(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Copies one source byte through; non-newline bytes inside masked
    // regions become spaces.
    fn blank(b: u8) -> u8 {
        if b == b'\n' {
            b'\n'
        } else {
            b' '
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();

        if b == b'/' && next == Some(b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if b == b'/' && next == Some(b'*') {
            let mut depth = 1usize;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(blank(bytes[i]));
                    i += 1;
                }
            }
        } else if is_raw_string_start(bytes, i) {
            let start = i;
            // Skip the optional b, the r, and count hashes.
            let mut j = i;
            if bytes[j] == b'b' {
                j += 1;
            }
            j += 1; // the 'r'
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            j += 1; // the opening quote
                    // Find the closing quote followed by `hashes` hashes.
            loop {
                match bytes.get(j) {
                    None => break,
                    Some(&b'"')
                        if bytes[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == b'#')
                            .count()
                            == hashes =>
                    {
                        j += 1 + hashes;
                        break;
                    }
                    Some(_) => j += 1,
                }
            }
            for &sb in &bytes[start..j.min(bytes.len())] {
                out.push(blank(sb));
            }
            i = j;
        } else if b == b'"' || (b == b'b' && next == Some(b'"')) {
            let start = i;
            let mut j = if b == b'b' { i + 2 } else { i + 1 };
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            for &sb in &bytes[start..j.min(bytes.len())] {
                out.push(blank(sb));
            }
            i = j;
        } else if b == b'\'' && is_char_literal(bytes, i) {
            let start = i;
            let mut j = i + 1;
            if bytes.get(j) == Some(&b'\\') {
                j += 2;
                // Escapes like \u{1F600} span further; eat to the quote.
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
            } else {
                // One (possibly multi-byte) character.
                j += 1;
                while j < bytes.len() && (bytes[j] & 0b1100_0000) == 0b1000_0000 {
                    j += 1;
                }
            }
            j += 1; // closing quote
            for &sb in &bytes[start..j.min(bytes.len())] {
                out.push(blank(sb));
            }
            i = j;
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8: multi-byte text is spaced out")
}

/// A `'` starts a char literal (vs. a lifetime) when the quoted content
/// is closed by another `'` shortly after: `'a'`, `'\n'`, `'\\''`. A
/// lifetime (`'a`, `'static`) has no closing quote after one character.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b'\\') => true,
        Some(&c) if (c & 0b1000_0000) != 0 => true, // multi-byte char
        Some(&c) => {
            if c == b'\'' {
                return false; // `''` never occurs in valid Rust
            }
            bytes.get(i + 2) == Some(&b'\'')
        }
        None => false,
    }
}

/// Is `r"`, `r#"`, `br"`, or `br#"` starting at `i` — and not just an
/// identifier ending in `r` (checked by peeking at the previous byte)?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let prev_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
    if prev_ident {
        return false;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Whether a complete `#[cfg(...)]` attribute gates on `test` — either
/// the plain `#[cfg(test)]` or a predicate combinator mentioning the
/// `test` token, e.g. `#[cfg(all(test, feature = "faults"))]`.
fn cfg_gates_on_test(attr: &str) -> bool {
    let bytes = attr.as_bytes();
    let mut from = 0;
    while let Some(rel) = attr[from..].find("test") {
        let at = from + rel;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + "test".len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        // `cfg(not(test))` gates on *not* being a test build.
        let negated = attr[..at].ends_with("not(");
        if before_ok && after_ok && !negated {
            return true;
        }
        from = after;
    }
    false
}

/// Marks every line covered by a test-gated item — `#[cfg(test)]` or a
/// combinator like `#[cfg(all(test, feature = "..."))]` — from the
/// attribute through the matching close brace of the annotated item.
fn test_lines(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut flags = vec![false; line_count.max(1)];
    let bytes = masked.as_bytes();

    let mut search_from = 0;
    while let Some(rel) = masked[search_from..].find("#[cfg(") {
        let attr_start = search_from + rel;
        // Bracket-match the attribute itself to find its full text.
        let mut j = attr_start + 1; // at '['
        let mut attr_depth = 0usize;
        while j < bytes.len() {
            match bytes[j] {
                b'[' => attr_depth += 1,
                b']' => {
                    attr_depth -= 1;
                    if attr_depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !cfg_gates_on_test(&masked[attr_start..j]) {
            search_from = j.max(attr_start + 1);
            continue;
        }
        // Skip whitespace and any further attributes to the item body.
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                // Another attribute: skip to its closing bracket.
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // Brace-match the item (a `mod`, `fn`, `impl`, …). Items ending
        // at a semicolon before any brace (e.g. `mod tests;`) cover only
        // their own lines, as do comma- or brace-terminated positions
        // such as a `#[cfg(test)]` enum variant or struct field.
        let mut depth = 0usize;
        let mut end = j;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' if depth > 0 => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b'}' => break, // enclosing item closed: annotated item ended
                b';' | b',' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        let first_line = masked[..attr_start].matches('\n').count();
        let last_line = masked[..end.min(bytes.len())].matches('\n').count();
        for flag in flags.iter_mut().take(last_line + 1).skip(first_line) {
            *flag = true;
        }
        search_from = end.max(attr_start + 1);
    }
    flags
}

/// Collects `// ssq-lint: allow(rule)` markers from the *unmasked*
/// source. A marker suppresses its own line; a marker on a line that is
/// only a comment also suppresses the following line.
fn suppressions(source: &str) -> Vec<Vec<String>> {
    let lines: Vec<&str> = source.lines().collect();
    let mut out: Vec<Vec<String>> = vec![Vec::new(); lines.len().max(1)];
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = line.find("ssq-lint: allow(") else {
            continue;
        };
        let rest = &line[pos + "ssq-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let comment_only = line.trim_start().starts_with("//");
        out[idx].extend(rules.iter().cloned());
        if comment_only && idx + 1 < out.len() {
            out[idx + 1].extend(rules);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let s = scan("let a = 1; // .unwrap()\n/* .expect( */ let b = 2;\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(!s.masked.contains("expect"));
        assert!(s.masked.contains("let b = 2;"));
    }

    #[test]
    fn masks_strings_and_chars_but_not_lifetimes() {
        let s = scan("fn f<'a>(x: &'a str) { g(\".unwrap()\", '\\'', 'x'); }\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("fn f<'a>"));
        assert!(s.masked.contains("g("));
    }

    #[test]
    fn masks_raw_strings_with_hashes() {
        let s = scan("let x = r#\"a \".unwrap()\" b\"#; let y = 3;\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("let y = 3;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scan("/* outer /* inner */ still comment */ let live = 1;\n");
        assert!(!s.masked.contains("inner"));
        assert!(s.masked.contains("let live = 1;"));
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_hot() {}\n";
        let s = scan(src);
        assert_eq!(s.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_enum_variant_covers_only_its_lines() {
        let src =
            "enum TieBreak {\n    Lrg,\n    #[cfg(test)]\n    HighestIndex,\n}\nfn hot() {}\n";
        let s = scan(src);
        assert_eq!(s.test_lines, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn cfg_all_test_feature_region_is_test_gated() {
        let src = "fn hot() {}\n#[cfg(all(test, feature = \"faults\"))]\nmod faults {\n    fn t() { x.unwrap(); }\n}\nfn also_hot() {}\n";
        let s = scan(src);
        assert_eq!(s.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_without_test_token_is_not_test_gated() {
        // `feature = "latest"` contains the letters t-e-s-t but not the
        // token; `not(test)` gates on NOT being a test build.
        let src = "#[cfg(feature = \"latest\")]\nfn hot() {}\n#[cfg(not(test))]\nfn hotter() {}\n";
        let s = scan(src);
        assert!(s.test_lines.iter().all(|t| !t));
    }

    #[test]
    fn cfg_test_with_extra_attribute_still_matches() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
        let s = scan(src);
        assert!(s.test_lines.iter().all(|&t| t));
    }

    #[test]
    fn suppression_applies_to_own_and_next_line() {
        let src = "// ssq-lint: allow(no-unwrap)\nlet a = x.unwrap();\nlet b = y.unwrap(); // ssq-lint: allow(no-unwrap, no-todo)\nlet c = z.unwrap();\n";
        let s = scan(src);
        assert!(s.suppressed(0, "no-unwrap"));
        assert!(s.suppressed(1, "no-unwrap"));
        assert!(s.suppressed(2, "no-unwrap") && s.suppressed(2, "no-todo"));
        assert!(!s.suppressed(3, "no-unwrap"));
    }
}
