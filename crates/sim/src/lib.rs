//! Cycle-accurate simulation kernel for `swizzle-qos`.
//!
//! The paper evaluates SSVC with "a custom, cycle-accurate simulator for
//! the Swizzle Switch" (§4.1). This crate is that simulator's engine,
//! kept independent of the switch model itself:
//!
//! * [`Schedule`] — warm-up and measurement phases in cycles.
//! * [`CycleModel`] — anything steppable one cycle at a time with a
//!   stats-reset hook at the warm-up/measurement boundary.
//! * [`Runner`] — drives a model through a schedule, optionally under
//!   a stall/violation watchdog ([`Monitored`],
//!   [`Runner::run_monitored`]) that backs the flight recorder.
//! * [`sweep`] — runs one experiment per parameter point across threads
//!   (std scoped threads), preserving input order in the results.
//! * [`ShardedModel`] / [`ParRunner`] / [`with_engine`] — the sharded
//!   parallel engine: one cycle as parallel per-shard decisions plus a
//!   serial in-order merge, bit-identical to the sequential runner at
//!   any thread count.
//! * [`EventModel`] / [`BitparRunner`] — the bit-parallel engine:
//!   word-wide mask cycles plus event-driven idle skipping, held to the
//!   same byte-identity bar.
//!
//! (The Value Change Dump writer lives in `ssq_core::vcd`, next to the
//! switch recorder that uses it.)
//!
//! A single switch is simulated synchronously — every component advances
//! each cycle — rather than with a general event queue: at the saturated
//! loads the paper studies, nearly every cycle carries events, so a
//! dense loop is both simpler and faster. The one event-driven
//! concession is [`BitparRunner`]'s idle skip, which jumps over
//! provably-quiescent stretches (nothing buffered, nothing in flight)
//! where the dense loop would burn a full cycle to decide "no requests"
//! at every output.
//!
//! # Examples
//!
//! ```
//! use ssq_sim::{CycleModel, Runner, Schedule};
//! use ssq_types::{Cycle, Cycles};
//!
//! struct TokenBucket {
//!     tokens: u64,
//! }
//! impl CycleModel for TokenBucket {
//!     fn step(&mut self, _now: Cycle) {
//!         self.tokens += 1;
//!     }
//!     fn begin_measurement(&mut self, _now: Cycle) {
//!         self.tokens = 0; // discard warm-up state
//!     }
//! }
//!
//! let mut model = TokenBucket { tokens: 0 };
//! let end = Runner::new(Schedule::new(Cycles::new(100), Cycles::new(400)))
//!     .run(&mut model);
//! assert_eq!(end, Cycle::new(500));
//! assert_eq!(model.tokens, 400); // only the measurement phase counted
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitpar;
mod par;
pub mod prof;
mod runner;
mod sweep;

pub use bitpar::{BitparRunner, EventModel};
pub use par::{with_engine, Engine, ParRunner, ShardedModel};
pub use prof::EngineProf;
pub use runner::{CycleModel, MonitorOutcome, Monitored, Runner, Schedule};
pub use ssq_check::{Preflight, Report};
pub use sweep::{sweep, sweep_with_threads};
