//! The bit-parallel (word-wide) engine: event-driven stepping over an
//! [`EventModel`].
//!
//! The third engine beside the dense sequential [`Runner`] and the
//! sharded [`ParRunner`](crate::ParRunner). It exploits two structural
//! facts about the radix ≤ 64 switch:
//!
//! 1. **Word-wide cycles** — every per-output request/blocked/eligible
//!    set fits one `u64`, so a cycle's decide phase runs on mask
//!    arithmetic instead of per-port probing ([`EventModel::step_fast`]).
//! 2. **Idle skipping** — when the model is *provably quiescent* (no
//!    buffered traffic, no transmits in flight, only clock state
//!    advancing) the only future activity is the next deterministic
//!    arrival, so the runner jumps straight to it after batching the
//!    per-cycle clock effects ([`EventModel::skip_idle`]). At 5% load
//!    this removes the vast majority of cycles outright.
//!
//! Both are held to the same bar as the sharded engine: byte-identical
//! counters, metrics, and event traces against the sequential runner —
//! decay-epoch events included, which is why `skip_idle` must emit them
//! with the exact cycle stamps dense stepping would have produced.

use ssq_types::{Cycle, Cycles};

use crate::runner::{CycleModel, MonitorOutcome, Monitored, Schedule};

/// A [`CycleModel`] with a word-wide fast path and a quiescence probe.
///
/// The contract is strict byte-identity: for any cycle sequence,
/// `step_fast(now)` must leave the model in exactly the state `step(now)`
/// would, and `skip_idle(now, limit)` must either report no skip
/// (returning `now`) or advance the model over `now..target` leaving it
/// in exactly the state `target - now` dense steps would — trace events
/// and their cycle stamps included.
pub trait EventModel: CycleModel {
    /// Advances through cycle `now` using the word-wide fast path.
    fn step_fast(&mut self, now: Cycle);

    /// If the model is quiescent at `now`, batches the pure clock
    /// effects of the skippable cycles and returns the first cycle in
    /// `(now, limit]` that needs dense execution (`limit` itself when
    /// nothing will happen this phase). Returns `now` when the model
    /// cannot prove quiescence, in which case nothing was advanced.
    fn skip_idle(&mut self, now: Cycle, limit: Cycle) -> Cycle;
}

/// Drives an [`EventModel`] through a [`Schedule`] with idle skipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitparRunner {
    schedule: Schedule,
}

impl BitparRunner {
    /// Creates a runner for the given schedule.
    #[must_use]
    pub const fn new(schedule: Schedule) -> Self {
        BitparRunner { schedule }
    }

    /// The schedule this runner executes.
    #[must_use]
    pub const fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Runs one phase `[now, end)` with idle skipping.
    fn run_phase<M: EventModel + ?Sized>(model: &mut M, mut now: Cycle, end: Cycle) -> Cycle {
        while now < end {
            let next = model.skip_idle(now, end);
            if next > now {
                now = next;
                continue;
            }
            model.step_fast(now);
            now = now.next();
        }
        now
    }

    /// Runs the model from cycle 0 through the full schedule and returns
    /// the cycle after the last step — the event-driven twin of
    /// [`Runner::run`](crate::Runner::run). The warm-up/measurement
    /// boundary is honored exactly: a skip never crosses it, so
    /// `begin_measurement` fires at the same cycle as under the dense
    /// runner.
    pub fn run<M: EventModel + ?Sized>(&self, model: &mut M) -> Cycle {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let now = Self::run_phase(model, Cycle::ZERO, warm_end);
        model.begin_measurement(now);
        let end = warm_end + self.schedule.measure();
        Self::run_phase(model, now, end)
    }

    /// The watchdogged twin of
    /// [`Runner::run_monitored`](crate::Runner::run_monitored), stepping
    /// **densely** with [`EventModel::step_fast`]: the stall window and
    /// violation checks are defined per executed cycle, and skipping
    /// idle cycles would change which cycles the watchdog observes. Runs
    /// that want the watchdog (chaos campaigns, flight recording) keep
    /// dense semantics; runs that want the idle-skip speedup use
    /// [`BitparRunner::run`].
    pub fn run_monitored<M, F>(
        &self,
        model: &mut M,
        stall_window: Cycles,
        mut observe: F,
    ) -> MonitorOutcome
    where
        M: EventModel + Monitored + ?Sized,
        F: FnMut(&M, Cycle),
    {
        assert!(stall_window.value() > 0, "stall window must be non-empty");
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let end = warm_end + self.schedule.measure();
        let mut now = Cycle::ZERO;
        let mut last_progress: Option<u64> = None;
        let mut stalled_for: u64 = 0;
        while now < end {
            if now == warm_end {
                model.begin_measurement(now);
            }
            model.step_fast(now);
            observe(model, now);
            if let Some(reason) = model.violation() {
                return MonitorOutcome::Tripped { at: now, reason };
            }
            match model.progress() {
                None => {
                    last_progress = None;
                    stalled_for = 0;
                }
                Some(p) => {
                    if last_progress == Some(p) {
                        stalled_for += 1;
                        if stalled_for >= stall_window.value() {
                            return MonitorOutcome::Tripped {
                                at: now,
                                reason: format!(
                                    "stall: pending work but no progress for {} cycles \
                                     (progress measure stuck at {p})",
                                    stall_window.value()
                                ),
                            };
                        }
                    } else {
                        last_progress = Some(p);
                        stalled_for = 0;
                    }
                }
            }
            now = now.next();
        }
        MonitorOutcome::Completed(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steps densely every 10th cycle and skips the rest, recording
    /// which cycles executed and which were batched.
    struct Hopper {
        stepped: Vec<u64>,
        batched: u64,
        boundary: Option<Cycle>,
    }

    impl CycleModel for Hopper {
        fn step(&mut self, now: Cycle) {
            self.stepped.push(now.value());
        }
        fn begin_measurement(&mut self, now: Cycle) {
            self.boundary = Some(now);
        }
    }

    impl EventModel for Hopper {
        fn step_fast(&mut self, now: Cycle) {
            self.stepped.push(now.value());
        }
        fn skip_idle(&mut self, now: Cycle, limit: Cycle) -> Cycle {
            if now.value() % 10 == 0 {
                return now; // dense work due
            }
            let next_busy = (now.value() / 10 + 1) * 10;
            let target = next_busy.min(limit.value());
            self.batched += target - now.value();
            Cycle::new(target)
        }
    }

    #[test]
    fn skips_cover_every_cycle_exactly_once() {
        let mut m = Hopper {
            stepped: Vec::new(),
            batched: 0,
            boundary: None,
        };
        let end = BitparRunner::new(Schedule::new(Cycles::new(15), Cycles::new(30))).run(&mut m);
        assert_eq!(end, Cycle::new(45));
        assert_eq!(m.stepped, vec![0, 10, 20, 30, 40]);
        // A skip never crosses the warm-up boundary: the first phase is
        // clamped to cycle 15, `begin_measurement` fires there, and the
        // measurement phase resumes skipping from 15.
        assert_eq!(m.boundary, Some(Cycle::new(15)));
        assert_eq!(
            m.stepped.len() as u64 + m.batched,
            45,
            "every cycle either stepped or batched"
        );
    }

    #[test]
    fn never_skipping_degenerates_to_dense() {
        struct Dense(Vec<u64>);
        impl CycleModel for Dense {
            fn step(&mut self, now: Cycle) {
                self.0.push(now.value());
            }
            fn begin_measurement(&mut self, _now: Cycle) {}
        }
        impl EventModel for Dense {
            fn step_fast(&mut self, now: Cycle) {
                self.0.push(now.value());
            }
            fn skip_idle(&mut self, now: Cycle, _limit: Cycle) -> Cycle {
                now
            }
        }
        let mut m = Dense(Vec::new());
        let end = BitparRunner::new(Schedule::new(Cycles::ZERO, Cycles::new(5))).run(&mut m);
        assert_eq!(end, Cycle::new(5));
        assert_eq!(m.0, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn monitored_runs_are_dense_and_watchdogged() {
        struct Stuck;
        impl CycleModel for Stuck {
            fn step(&mut self, _: Cycle) {}
            fn begin_measurement(&mut self, _: Cycle) {}
        }
        impl EventModel for Stuck {
            fn step_fast(&mut self, _: Cycle) {}
            fn skip_idle(&mut self, _now: Cycle, limit: Cycle) -> Cycle {
                limit // would skip everything if the watchdog allowed it
            }
        }
        impl Monitored for Stuck {
            fn progress(&self) -> Option<u64> {
                Some(7) // pending work, never progressing
            }
        }
        let outcome = BitparRunner::new(Schedule::new(Cycles::ZERO, Cycles::new(100)))
            .run_monitored(&mut Stuck, Cycles::new(5), |_, _| {});
        match outcome {
            MonitorOutcome::Tripped { at, reason } => {
                assert_eq!(at, Cycle::new(5));
                assert!(reason.contains("stall"), "{reason}");
            }
            MonitorOutcome::Completed(_) => panic!("stall must trip"),
        }
    }
}
