//! Thread-parallel parameter sweeps.

/// Runs `f` once per parameter point, spreading points across up to
/// `std::thread::available_parallelism()` scoped threads (overridable
/// via the `SSQ_SWEEP_THREADS` environment variable), and returns the
/// results **in input order** — the result is a pure function of
/// `params` and `f`, never of the machine's core count.
///
/// Each experiment must be self-contained (build its own model from the
/// parameter and a seed); the sweep only parallelizes across points, so
/// each individual simulation stays deterministic.
///
/// # Examples
///
/// ```
/// use ssq_sim::sweep;
///
/// let rates: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
/// let saturations = sweep(&rates, |&r| (r * 100.0) as u64);
/// assert_eq!(saturations, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
/// ```
pub fn sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    sweep_with_threads(params, default_threads(), f)
}

/// Thread count [`sweep`] uses: the `SSQ_SWEEP_THREADS` environment
/// variable when set to a positive integer, else the machine's
/// available parallelism.
fn default_threads() -> usize {
    std::env::var("SSQ_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// [`sweep`] with an explicit thread count (clamped to at least one).
/// The deterministic-results regression test runs the same sweep at
/// several counts and asserts identical output.
pub fn sweep_with_threads<P, R, F>(params: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    if params.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(params.len());
    if threads <= 1 {
        return params.iter().map(&f).collect();
    }

    // Workers claim point indices from a shared atomic counter and carry
    // their `(index, result)` pairs home through the join handle, so no
    // locks guard the result storage.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..params.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= params.len() {
                            return mine;
                        }
                        mine.push((i, f(&params[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(mine) => {
                    for (i, r) in mine {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let params: Vec<usize> = (0..100).collect();
        let out = sweep(&params, |&p| p * 2);
        assert_eq!(out, params.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let out: Vec<u32> = sweep::<u32, u32, _>(&[], |&p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn single_point() {
        assert_eq!(sweep(&[7], |&p: &i32| p + 1), vec![8]);
    }

    #[test]
    fn results_can_be_heavyweight() {
        let out = sweep(&[1usize, 2, 3], |&n| vec![0u8; n * 1000]);
        assert_eq!(out[2].len(), 3000);
    }

    #[test]
    fn work_is_actually_shared() {
        // Smoke test under contention: many cheap tasks.
        let params: Vec<u64> = (0..5000).collect();
        let out = sweep(&params, |&p| p % 7);
        assert_eq!(out.len(), 5000);
        assert_eq!(out[4999], 4999 % 7);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        // The determinism regression for sweeps: the same experiment at
        // 1, 2, and 8 threads must produce byte-identical result
        // vectors, in parameter order, regardless of which worker
        // claimed which point.
        let params: Vec<u64> = (0..257).collect();
        let experiment = |&p: &u64| {
            // A little state evolution so results are order-sensitive
            // if anything leaks across points.
            let mut x = p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..100 {
                x ^= x >> 13;
                x = x.wrapping_mul(31).wrapping_add(p);
            }
            x
        };
        let reference = sweep_with_threads(&params, 1, experiment);
        for threads in [2, 3, 8] {
            let out = sweep_with_threads(&params, threads, experiment);
            assert_eq!(out, reference, "thread count {threads} changed results");
        }
    }

    #[test]
    fn oversized_thread_request_is_clamped() {
        let out = sweep_with_threads(&[1u64, 2, 3], 64, |&p| p * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
