//! Engine-stage profiling hooks for the parallel runner (DESIGN.md §11).
//!
//! [`EngineProf`] wraps an [`ssq_prof::Profiler`] over the parallel
//! engine's gather/decide/merge stages. The driving thread consults it
//! once per cycle in [`Engine::step`](crate::Engine::step): a sampled
//! cycle laps a stopwatch around each stage, every other cycle runs the
//! stages back to back with no timer reads.
//!
//! With the `prof` cargo feature **off** (the default), the struct is a
//! zero-sized stub and the per-cycle gate is an `#[inline(always)]`
//! constant `false`, so the lap path is dead code and the barrier
//! crossings are untouched — the same contract `ssq_core`'s `prof`
//! feature keeps for the sequential kernel.

use ssq_prof::ProfReport;

/// Per-engine stage profiler state.
///
/// Held unconditionally by the parallel [`Engine`](crate::Engine);
/// zero-sized when the `prof` feature is off.
#[cfg(feature = "prof")]
#[derive(Debug, Clone)]
pub struct EngineProf {
    inner: ssq_prof::Profiler,
}

#[cfg(feature = "prof")]
impl EngineProf {
    /// A disarmed profiler over the engine stages.
    #[must_use]
    pub fn new() -> Self {
        EngineProf {
            inner: ssq_prof::Profiler::engine(),
        }
    }

    /// Arms sampling at roughly one cycle in `sample_every` (rounded up
    /// to a power of two; `0`/`1` mean every cycle).
    pub fn arm(&mut self, sample_every: u64) {
        self.inner.arm(sample_every);
    }

    /// Stops sampling; accumulated totals are kept.
    pub fn disarm(&mut self) {
        self.inner.disarm();
    }

    /// Advances the cycle counter; `true` when this cycle is sampled.
    #[inline]
    pub fn begin_cycle(&mut self) -> bool {
        self.inner.begin_cycle()
    }

    /// Adds one lap to a stage accumulator.
    #[inline]
    pub fn record_stage(&mut self, stage: usize, ns: u64) {
        self.inner.record_phase(stage, ns);
    }

    /// Snapshots the accumulated totals.
    #[must_use]
    pub fn report(&self) -> Option<ProfReport> {
        Some(self.inner.report())
    }
}

#[cfg(feature = "prof")]
impl Default for EngineProf {
    fn default() -> Self {
        EngineProf::new()
    }
}

// --- Feature off: a zero-sized stub; the gate is const false. ---------

/// Per-engine stage profiler state (stub: `prof` feature off).
#[cfg(not(feature = "prof"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineProf;

#[cfg(not(feature = "prof"))]
impl EngineProf {
    /// A disarmed profiler (stub).
    #[inline(always)]
    #[must_use]
    pub fn new() -> Self {
        EngineProf
    }

    /// No-op (stub): nothing to arm without the feature.
    #[inline(always)]
    pub fn arm(&mut self, _sample_every: u64) {}

    /// No-op (stub).
    #[inline(always)]
    pub fn disarm(&mut self) {}

    /// Always `false`: no cycle is ever sampled, so the lap path is
    /// dead code the optimizer removes.
    #[inline(always)]
    #[must_use]
    pub fn begin_cycle(&mut self) -> bool {
        false
    }

    /// No-op (stub).
    #[inline(always)]
    pub fn record_stage(&mut self, _stage: usize, _ns: u64) {}

    /// Always `None`: an unprofiled build has no data.
    #[inline(always)]
    #[must_use]
    pub fn report(&self) -> Option<ProfReport> {
        None
    }
}

#[cfg(all(test, feature = "prof"))]
mod tests {
    use super::*;

    #[test]
    fn armed_profiler_accumulates_stage_laps() {
        let mut p = EngineProf::new();
        assert!(!p.begin_cycle(), "disarmed: never sampled");
        p.arm(1);
        assert!(p.begin_cycle());
        p.record_stage(ssq_prof::PHASE_GATHER, 10);
        p.record_stage(ssq_prof::PHASE_DECIDE, 80);
        p.record_stage(ssq_prof::PHASE_MERGE, 10);
        let report = p.report().expect("feature on: always Some");
        assert_eq!(report.sampled_cycles, 1);
        assert!((report.decide_fraction().unwrap() - 0.8).abs() < 1e-9);
    }
}
