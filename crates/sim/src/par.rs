//! The sharded parallel execution engine.
//!
//! One simulated cycle splits into three phases:
//!
//! 1. **prepare** (serial, `&mut`): advance clocks, inject traffic,
//!    snapshot which channels are busy;
//! 2. **decide** (parallel, `&`): every shard — for the switch, one
//!    output port — computes its arbitration plan against the immutable
//!    snapshot;
//! 3. **merge** (serial, `&mut`): plans are committed **in shard
//!    order**, replaying exactly the mutations and trace events the
//!    sequential engine performs.
//!
//! Because decide is pure and merge is serial in a fixed order, the
//! engine's observable behaviour — grants, counters, statistics, trace
//! bytes — is identical to the sequential [`Runner`](crate::Runner) at
//! any thread count, including one. The conformance suite in `tests/`
//! holds both engines to that contract bit for bit.
//!
//! Worker threads persist across cycles (spawned once per
//! [`with_engine`] scope) and synchronize on a yielding spin barrier, so
//! the per-cycle cost is two barrier crossings rather than thread
//! spawns. Shards are claimed from a shared cursor, which load-balances
//! outputs whose request sets differ wildly in size.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use ssq_stats::ShardAccumulator;
use ssq_types::{Cycle, Cycles};

use crate::prof::EngineProf;
use crate::runner::{CycleModel, MonitorOutcome, Monitored, Schedule};

/// A model whose cycle splits into parallel per-shard decisions plus a
/// serial merge.
///
/// # Contract
///
/// For every reachable state and cycle, [`CycleModel::step`] must be
/// observationally identical to:
///
/// ```text
/// self.shard_prepare(now);
/// let plans: Vec<_> = (0..self.shard_count())
///     .map(|s| self.shard_decide(s, now))
///     .collect();
/// self.shard_merge(now, plans);
/// ```
///
/// with `shard_decide` **pure** (no interior mutability, no shard
/// ordering assumptions): the engine calls it concurrently from several
/// threads in arbitrary order, and may call it again for the same shard
/// during merge if a plan slot was lost to a worker failure.
pub trait ShardedModel: CycleModel {
    /// The per-shard decision, handed from decide to merge.
    type Plan: Send;

    /// Number of shards (constant for the lifetime of a run).
    fn shard_count(&self) -> usize;

    /// Phase 1: serial pre-cycle mutation (clock ticks, injection,
    /// snapshotting).
    fn shard_prepare(&mut self, now: Cycle);

    /// Phase 2: pure decision for one shard against the prepared state.
    fn shard_decide(&self, shard: usize, now: Cycle) -> Self::Plan;

    /// Phase 3: serial commit. `plans[s]` is the plan shard `s`
    /// produced; the implementation must apply them in ascending shard
    /// order to reproduce the sequential engine's effects.
    fn shard_merge(&mut self, now: Cycle, plans: Vec<Self::Plan>);

    /// Relative cost estimate of a plan, for worker load accounting
    /// only — it must not influence behaviour.
    fn plan_cost(_plan: &Self::Plan) -> u64 {
        1
    }
}

/// Sense-reversing spin barrier with bounded spinning: after a short
/// spin each waiter yields to the scheduler, so oversubscribed runs
/// (more threads than cores) degrade gracefully instead of starving the
/// thread that would release the barrier.
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

/// Spins before the first yield; past this, waiters stop burning cycles.
const SPINS_BEFORE_YIELD: u32 = 64;

/// Error returned by [`SpinBarrier::wait`] once any participant has
/// panicked: the cycle can never complete, so waiters must unwind.
struct BarrierPoisoned;

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the barrier unusable; every current and future waiter
    /// receives [`BarrierPoisoned`] instead of blocking forever.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    fn wait(&self) -> Result<(), BarrierPoisoned> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(BarrierPoisoned);
        }
        let gen = self.generation.load(Ordering::SeqCst);
        if self.arrived.fetch_add(1, Ordering::SeqCst) + 1 == self.parties {
            self.arrived.store(0, Ordering::SeqCst);
            self.generation.store(gen.wrapping_add(1), Ordering::SeqCst);
            return Ok(());
        }
        let mut spins: u32 = 0;
        while self.generation.load(Ordering::SeqCst) == gen {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(BarrierPoisoned);
            }
            spins = spins.saturating_add(1);
            if spins >= SPINS_BEFORE_YIELD {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        Ok(())
    }
}

/// Poisons the barrier if the owning scope unwinds, releasing every
/// thread parked on it so a panic anywhere tears the engine down
/// instead of deadlocking it.
struct PoisonOnPanic<'b>(&'b SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// State shared between the driving thread and the persistent workers.
struct Shared<'m, M: ShardedModel> {
    /// The model. Workers take read locks during decide; the driver
    /// holds the write lock through prepare and merge.
    model: RwLock<&'m mut M>,
    barrier: SpinBarrier,
    /// Next unclaimed shard of the current cycle.
    cursor: AtomicUsize,
    /// The cycle being decided, published before the decide barrier.
    now: AtomicU64,
    stop: AtomicBool,
    /// One plan slot per shard, filled during decide, drained at merge.
    slots: Vec<Mutex<Option<M::Plan>>>,
}

/// Claims shards from the shared cursor until none remain, depositing
/// each plan in its slot. Runs on workers *and* the driver, so a lone
/// thread still decides every shard through the same code path.
fn decide_claimed<M: ShardedModel>(
    shared: &Shared<'_, M>,
    model: &M,
    now: Cycle,
    acc: &mut ShardAccumulator,
) {
    loop {
        let shard = shared.cursor.fetch_add(1, Ordering::SeqCst);
        if shard >= shared.slots.len() {
            return;
        }
        let plan = model.shard_decide(shard, now);
        let cost = M::plan_cost(&plan);
        *shared.slots[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(plan);
        acc.record(cost);
    }
}

/// The persistent worker loop: park at the cycle barrier, decide
/// claimed shards, park at the completion barrier, repeat until told to
/// stop. Returns this worker's private load accounting.
fn worker<M: ShardedModel + Send + Sync>(shared: &Shared<'_, M>) -> ShardAccumulator {
    let _poison_guard = PoisonOnPanic(&shared.barrier);
    let mut acc = ShardAccumulator::new();
    loop {
        if shared.barrier.wait().is_err() {
            return acc;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return acc;
        }
        {
            let guard = shared.model.read().unwrap_or_else(|e| e.into_inner());
            let model: &M = &**guard;
            let now = Cycle::new(shared.now.load(Ordering::SeqCst));
            decide_claimed(shared, model, now, &mut acc);
        }
        if shared.barrier.wait().is_err() {
            return acc;
        }
    }
}

/// Handle the [`with_engine`] closure drives cycles through.
///
/// [`Engine::step`] runs one full prepare/decide/merge cycle;
/// [`Engine::with_model`] gives serial access to the model between
/// cycles (for observers, probes, VCD sampling, measurement
/// boundaries). The workers are parked whenever the closure runs, so
/// `with_model` access is exclusive without extra synchronization
/// beyond the lock.
pub struct Engine<'e, 'm, M: ShardedModel> {
    shared: &'e Shared<'m, M>,
    acc: ShardAccumulator,
    /// Stage profiler (zero-sized unless the `prof` feature is on;
    /// disarmed by default even then).
    prof: EngineProf,
}

impl<M: ShardedModel + Send + Sync> Engine<'_, '_, M> {
    /// Runs one simulated cycle: serial prepare, parallel decide,
    /// serial in-order merge.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked (the original panic is
    /// re-raised when the engine scope unwinds).
    pub fn step(&mut self, now: Cycle) {
        // Profiler gate: with the `prof` feature off this is a const
        // `false` and the lap path is dead code; armed, it is one
        // counter add plus a mask test per cycle.
        if self.prof.begin_cycle() {
            let mut watch = ssq_prof::Stopwatch::start();
            self.stage_gather(now);
            self.prof
                .record_stage(ssq_prof::PHASE_GATHER, watch.lap_ns());
            self.stage_decide(now);
            self.prof
                .record_stage(ssq_prof::PHASE_DECIDE, watch.lap_ns());
            self.stage_merge(now);
            self.prof
                .record_stage(ssq_prof::PHASE_MERGE, watch.lap_ns());
            return;
        }
        self.stage_gather(now);
        self.stage_decide(now);
        self.stage_merge(now);
    }

    /// Stage 1 — gather: serial prepare under the write lock, then
    /// publish the cycle and reset the shard cursor for the workers.
    fn stage_gather(&mut self, now: Cycle) {
        let shared = self.shared;
        {
            let mut guard = shared.model.write().unwrap_or_else(|e| e.into_inner());
            guard.shard_prepare(now);
        }
        shared.now.store(now.value(), Ordering::SeqCst);
        shared.cursor.store(0, Ordering::SeqCst);
    }

    /// Stage 2 — decide: open the cycle barrier, claim shards alongside
    /// the workers, close the completion barrier.
    fn stage_decide(&mut self, now: Cycle) {
        let shared = self.shared;
        let opened = shared.barrier.wait().is_ok();
        assert!(opened, "parallel engine: a worker thread panicked");
        {
            let guard = shared.model.read().unwrap_or_else(|e| e.into_inner());
            let model: &M = &**guard;
            decide_claimed(shared, model, now, &mut self.acc);
        }
        let decided = shared.barrier.wait().is_ok();
        assert!(decided, "parallel engine: a worker thread panicked");
    }

    /// Stage 3 — merge: drain the plan slots in shard order under the
    /// write lock and commit them.
    fn stage_merge(&mut self, now: Cycle) {
        let shared = self.shared;
        let mut guard = shared.model.write().unwrap_or_else(|e| e.into_inner());
        let model: &mut M = &mut *guard;
        let mut plans = Vec::with_capacity(shared.slots.len());
        for (shard, slot) in shared.slots.iter().enumerate() {
            let plan = slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                // A lost slot (worker died between claim and deposit)
                // is re-decided serially; decide is pure, so the
                // outcome is identical.
                .unwrap_or_else(|| model.shard_decide(shard, now));
            plans.push(plan);
        }
        model.shard_merge(now, plans);
    }

    /// Arms the engine-stage profiler: roughly one cycle in
    /// `sample_every` laps a stopwatch around the gather/decide/merge
    /// stages. A no-op unless the `prof` cargo feature is compiled in.
    pub fn prof_arm(&mut self, sample_every: u64) {
        self.prof.arm(sample_every);
    }

    /// The stage profiler's accumulated totals, or `None` in a build
    /// without the `prof` feature.
    #[must_use]
    pub fn prof_report(&self) -> Option<ssq_prof::ProfReport> {
        self.prof.report()
    }

    /// Serial access to the model between cycles.
    pub fn with_model<R>(&mut self, f: impl FnOnce(&mut M) -> R) -> R {
        let mut guard = self.shared.model.write().unwrap_or_else(|e| e.into_inner());
        f(&mut *guard)
    }
}

/// Spawns `threads.max(1)` total compute threads (the calling thread
/// plus `threads - 1` scoped workers), runs `f` with an [`Engine`]
/// driving the model, then parks the workers and returns `f`'s result
/// together with the merged per-worker load accounting.
///
/// With `threads == 1` no worker is spawned and every phase runs on the
/// calling thread through the same code path, which is what makes the
/// single-thread parallel engine a true identity check against the
/// sequential runner.
pub fn with_engine<M, R, F>(threads: usize, model: &mut M, f: F) -> (R, ShardAccumulator)
where
    M: ShardedModel + Send + Sync,
    F: FnOnce(&mut Engine<'_, '_, M>) -> R,
{
    let threads = threads.max(1);
    let shards = model.shard_count();
    let shared: Shared<'_, M> = Shared {
        model: RwLock::new(model),
        barrier: SpinBarrier::new(threads),
        cursor: AtomicUsize::new(0),
        now: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        slots: (0..shards).map(|_| Mutex::new(None)).collect(),
    };
    std::thread::scope(|scope| {
        let workers: Vec<_> = (1..threads)
            .map(|_| scope.spawn(|| worker(&shared)))
            .collect();
        let mut engine = Engine {
            shared: &shared,
            acc: ShardAccumulator::new(),
            prof: EngineProf::new(),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut engine)));
        shared.stop.store(true, Ordering::SeqCst);
        if result.is_err() {
            // Workers may be parked at either barrier; poisoning
            // releases them wherever they are.
            shared.barrier.poison();
        } else {
            // Workers are parked at the cycle barrier; one last crossing
            // sends them into the stop check.
            let _ = shared.barrier.wait();
        }
        let mut acc = engine.acc;
        let mut worker_panic = None;
        for handle in workers {
            match handle.join() {
                Ok(worker_acc) => acc.merge(&worker_acc),
                Err(payload) => {
                    // Keep the first worker payload: it is the root
                    // cause; the driver's own panic is the echo.
                    worker_panic.get_or_insert(payload);
                }
            }
        }
        match (result, worker_panic) {
            (Ok(r), None) => (r, acc),
            (Ok(_), Some(payload)) | (Err(_), Some(payload)) => std::panic::resume_unwind(payload),
            (Err(payload), None) => std::panic::resume_unwind(payload),
        }
    })
}

/// Drives a [`ShardedModel`] through a [`Schedule`] on the parallel
/// engine, mirroring [`Runner`](crate::Runner)'s phase semantics
/// exactly — same cycles, same measurement boundary, same observer and
/// watchdog hooks — so the two are drop-in interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParRunner {
    schedule: Schedule,
    threads: usize,
}

impl ParRunner {
    /// Creates a parallel runner with `threads` total compute threads
    /// (clamped to at least one).
    #[must_use]
    pub fn new(schedule: Schedule, threads: usize) -> Self {
        ParRunner {
            schedule,
            threads: threads.max(1),
        }
    }

    /// The schedule this runner executes.
    #[must_use]
    pub const fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Total compute threads, including the calling thread.
    #[must_use]
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel counterpart of [`Runner::run`](crate::Runner::run).
    pub fn run<M>(&self, model: &mut M) -> Cycle
    where
        M: ShardedModel + Send + Sync,
    {
        self.run_observed(model, |_, _| {})
    }

    /// Parallel counterpart of
    /// [`Runner::run_observed`](crate::Runner::run_observed): `observe`
    /// runs serially after every cycle, with the workers parked.
    pub fn run_observed<M, F>(&self, model: &mut M, mut observe: F) -> Cycle
    where
        M: ShardedModel + Send + Sync,
        F: FnMut(&M, Cycle),
    {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let end = warm_end + self.schedule.measure();
        let (final_cycle, _load) = with_engine(self.threads, model, |engine| {
            let mut now = Cycle::ZERO;
            while now < warm_end {
                engine.step(now);
                engine.with_model(|m| observe(m, now));
                now = now.next();
            }
            engine.with_model(|m| m.begin_measurement(now));
            while now < end {
                engine.step(now);
                engine.with_model(|m| observe(m, now));
                now = now.next();
            }
            now
        });
        final_cycle
    }

    /// Like [`ParRunner::run_accounted`], but additionally arms the
    /// engine-stage profiler at the measurement boundary (sampling one
    /// cycle in `sample_every`) and returns its gather/decide/merge
    /// breakdown. The report is `None` in a build without the `prof`
    /// cargo feature — callers surface that as a rebuild hint.
    pub fn run_profiled<M>(
        &self,
        model: &mut M,
        sample_every: u64,
    ) -> (Cycle, Option<ssq_prof::ProfReport>, ShardAccumulator)
    where
        M: ShardedModel + Send + Sync,
    {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let end = warm_end + self.schedule.measure();
        let ((final_cycle, report), load) = with_engine(self.threads, model, |engine| {
            let mut now = Cycle::ZERO;
            while now < warm_end {
                engine.step(now);
                now = now.next();
            }
            engine.with_model(|m| m.begin_measurement(now));
            // Arm only for the measured phase, so warm-up noise never
            // lands in the stage accumulators.
            engine.prof_arm(sample_every);
            while now < end {
                engine.step(now);
                now = now.next();
            }
            (now, engine.prof_report())
        });
        (final_cycle, report, load)
    }

    /// Like [`ParRunner::run`], but also returns the merged per-worker
    /// shard accounting (how many shards each thread decided, at what
    /// cost) for load-balance diagnostics.
    pub fn run_accounted<M>(&self, model: &mut M) -> (Cycle, ShardAccumulator)
    where
        M: ShardedModel + Send + Sync,
    {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let end = warm_end + self.schedule.measure();
        with_engine(self.threads, model, |engine| {
            let mut now = Cycle::ZERO;
            while now < warm_end {
                engine.step(now);
                now = now.next();
            }
            engine.with_model(|m| m.begin_measurement(now));
            while now < end {
                engine.step(now);
                now = now.next();
            }
            now
        })
    }

    /// Parallel counterpart of
    /// [`Runner::run_monitored`](crate::Runner::run_monitored), with
    /// identical watchdog semantics: violations trip immediately, an
    /// unchanged progress measure over pending work trips after
    /// `stall_window` cycles, idle phases reset the window.
    ///
    /// # Panics
    ///
    /// Panics if `stall_window` is empty.
    pub fn run_monitored<M, F>(
        &self,
        model: &mut M,
        stall_window: Cycles,
        mut observe: F,
    ) -> MonitorOutcome
    where
        M: ShardedModel + Monitored + Send + Sync,
        F: FnMut(&M, Cycle),
    {
        assert!(stall_window.value() > 0, "stall window must be non-empty");
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let end = warm_end + self.schedule.measure();
        let (outcome, _load) = with_engine(self.threads, model, |engine| {
            let mut now = Cycle::ZERO;
            let mut last_progress: Option<u64> = None;
            let mut stalled_for: u64 = 0;
            while now < end {
                if now == warm_end {
                    engine.with_model(|m| m.begin_measurement(now));
                }
                engine.step(now);
                let (violation, progress) = engine.with_model(|m| {
                    observe(m, now);
                    (m.violation(), m.progress())
                });
                if let Some(reason) = violation {
                    return MonitorOutcome::Tripped { at: now, reason };
                }
                match progress {
                    None => {
                        last_progress = None;
                        stalled_for = 0;
                    }
                    Some(p) => {
                        if last_progress == Some(p) {
                            stalled_for += 1;
                            if stalled_for >= stall_window.value() {
                                return MonitorOutcome::Tripped {
                                    at: now,
                                    reason: format!(
                                        "stall: pending work but no progress for {} cycles \
                                         (progress measure stuck at {p})",
                                        stall_window.value()
                                    ),
                                };
                            }
                        } else {
                            last_progress = Some(p);
                            stalled_for = 0;
                        }
                    }
                }
                now = now.next();
            }
            MonitorOutcome::Completed(now)
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, Schedule};

    /// A deterministic toy sharded model: each shard's decide hashes
    /// its state with the cycle, merge writes the results back in
    /// order. `step` is defined via the sharded contract, so the
    /// sequential runner and the parallel engine must agree exactly.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Toy {
        outputs: Vec<u64>,
        prepares: u64,
        merged: u64,
        boundary: Option<Cycle>,
        /// When set, decide panics for this shard (failure-path test).
        poison_shard: Option<usize>,
    }

    impl Toy {
        fn new(shards: usize) -> Self {
            Toy {
                outputs: (0..shards as u64).collect(),
                prepares: 0,
                merged: 0,
                boundary: None,
                poison_shard: None,
            }
        }
    }

    impl CycleModel for Toy {
        fn step(&mut self, now: Cycle) {
            self.shard_prepare(now);
            let plans: Vec<(usize, u64)> = (0..self.shard_count())
                .map(|s| self.shard_decide(s, now))
                .collect();
            self.shard_merge(now, plans);
        }
        fn begin_measurement(&mut self, now: Cycle) {
            self.boundary = Some(now);
        }
    }

    impl ShardedModel for Toy {
        type Plan = (usize, u64);
        fn shard_count(&self) -> usize {
            self.outputs.len()
        }
        fn shard_prepare(&mut self, _now: Cycle) {
            self.prepares += 1;
        }
        fn shard_decide(&self, shard: usize, now: Cycle) -> (usize, u64) {
            if self.poison_shard == Some(shard) {
                panic!("poisoned shard");
            }
            let mixed = self.outputs[shard]
                .wrapping_mul(6364136223846793005)
                .wrapping_add(now.value());
            (shard, mixed)
        }
        fn shard_merge(&mut self, _now: Cycle, plans: Vec<(usize, u64)>) {
            assert_eq!(plans.len(), self.outputs.len(), "one plan per shard");
            for (i, (shard, value)) in plans.into_iter().enumerate() {
                assert_eq!(shard, i, "plans must arrive in shard order");
                self.outputs[i] = value;
                self.merged += 1;
            }
        }
    }

    impl Monitored for Toy {
        fn progress(&self) -> Option<u64> {
            Some(self.merged)
        }
    }

    #[test]
    fn parallel_matches_sequential_at_any_thread_count() {
        let schedule = Schedule::new(Cycles::new(7), Cycles::new(50));
        let mut reference = Toy::new(16);
        let end_seq = Runner::new(schedule).run(&mut reference);
        for threads in [1, 2, 4, 8] {
            let mut par = Toy::new(16);
            let end_par = ParRunner::new(schedule, threads).run(&mut par);
            assert_eq!(end_par, end_seq);
            assert_eq!(par, reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn run_observed_sees_every_cycle_in_order() {
        let schedule = Schedule::new(Cycles::new(2), Cycles::new(3));
        let mut seen = Vec::new();
        let mut toy = Toy::new(4);
        let end = ParRunner::new(schedule, 2).run_observed(&mut toy, |m, now| {
            seen.push((now.value(), m.prepares));
        });
        assert_eq!(end, Cycle::new(5));
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(toy.boundary, Some(Cycle::new(2)));
    }

    #[test]
    fn monitored_completion_matches_sequential() {
        let schedule = Schedule::new(Cycles::new(5), Cycles::new(20));
        let mut seq = Toy::new(8);
        let seq_outcome = Runner::new(schedule).run_monitored(&mut seq, Cycles::new(3), |_, _| {});
        let mut par = Toy::new(8);
        let par_outcome =
            ParRunner::new(schedule, 3).run_monitored(&mut par, Cycles::new(3), |_, _| {});
        assert_eq!(par_outcome, seq_outcome);
        assert_eq!(par, seq);
    }

    #[test]
    fn monitored_stall_trips_at_the_same_cycle() {
        /// Stops merging (and thus progressing) after a fixed number of
        /// cycles while still holding "pending work".
        struct Stall<MOD> {
            inner: MOD,
            stall_after: u64,
            cycles: u64,
        }
        impl CycleModel for Stall<Toy> {
            fn step(&mut self, now: Cycle) {
                self.shard_prepare(now);
                let plans: Vec<(usize, u64)> = (0..self.inner.shard_count())
                    .map(|s| self.shard_decide(s, now))
                    .collect();
                self.shard_merge(now, plans);
            }
            fn begin_measurement(&mut self, now: Cycle) {
                self.inner.begin_measurement(now);
            }
        }
        impl ShardedModel for Stall<Toy> {
            type Plan = (usize, u64);
            fn shard_count(&self) -> usize {
                self.inner.shard_count()
            }
            fn shard_prepare(&mut self, now: Cycle) {
                self.cycles += 1;
                self.inner.shard_prepare(now);
            }
            fn shard_decide(&self, shard: usize, now: Cycle) -> (usize, u64) {
                self.inner.shard_decide(shard, now)
            }
            fn shard_merge(&mut self, now: Cycle, plans: Vec<(usize, u64)>) {
                if self.cycles <= self.stall_after {
                    self.inner.shard_merge(now, plans);
                }
            }
        }
        impl Monitored for Stall<Toy> {
            fn progress(&self) -> Option<u64> {
                Some(self.inner.merged)
            }
        }

        let schedule = Schedule::new(Cycles::ZERO, Cycles::new(1000));
        let make = || Stall {
            inner: Toy::new(4),
            stall_after: 10,
            cycles: 0,
        };
        let mut seq = make();
        let seq_outcome = Runner::new(schedule).run_monitored(&mut seq, Cycles::new(7), |_, _| {});
        let mut par = make();
        let par_outcome =
            ParRunner::new(schedule, 2).run_monitored(&mut par, Cycles::new(7), |_, _| {});
        assert_eq!(par_outcome, seq_outcome);
        assert!(!par_outcome.is_completed(), "stall must trip");
    }

    #[test]
    fn accounts_every_shard_exactly_once() {
        let schedule = Schedule::new(Cycles::ZERO, Cycles::new(40));
        let mut toy = Toy::new(16);
        let (_, load) = ParRunner::new(schedule, 4).run_accounted(&mut toy);
        assert_eq!(load.shards(), 40 * 16, "every shard of every cycle");
    }

    #[test]
    fn run_profiled_is_behaviour_preserving() {
        let schedule = Schedule::new(Cycles::new(5), Cycles::new(32));
        let mut reference = Toy::new(8);
        Runner::new(schedule).run(&mut reference);
        let mut profiled = Toy::new(8);
        let (end, report, load) = ParRunner::new(schedule, 2).run_profiled(&mut profiled, 1);
        assert_eq!(end, Cycle::new(37));
        assert_eq!(profiled, reference, "profiling must not change behaviour");
        assert_eq!(load.shards(), 37 * 8, "every shard of every cycle");
        #[cfg(feature = "prof")]
        {
            let r = report.expect("prof feature on: report present");
            assert_eq!(r.sampled_cycles, 32, "armed at the measurement boundary");
            assert!(r.phases.iter().any(|p| p.name == "gather" && p.ns > 0));
        }
        #[cfg(not(feature = "prof"))]
        assert!(report.is_none(), "prof feature off: no data");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let runner = ParRunner::new(Schedule::new(Cycles::ZERO, Cycles::new(5)), 0);
        assert_eq!(runner.threads(), 1);
        let mut toy = Toy::new(3);
        let end = runner.run(&mut toy);
        assert_eq!(end, Cycle::new(5));
    }

    #[test]
    #[should_panic(expected = "poisoned shard")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let mut toy = Toy::new(8);
        toy.poison_shard = Some(5);
        let _ = ParRunner::new(Schedule::new(Cycles::ZERO, Cycles::new(3)), 4).run(&mut toy);
    }

    #[test]
    fn with_engine_exposes_manual_stepping() {
        let mut toy = Toy::new(4);
        let ((), load) = with_engine(2, &mut toy, |engine| {
            for c in 0..10u64 {
                engine.step(Cycle::new(c));
            }
            engine.with_model(|m| m.begin_measurement(Cycle::new(10)));
        });
        assert_eq!(toy.prepares, 10);
        assert_eq!(toy.boundary, Some(Cycle::new(10)));
        assert_eq!(load.shards(), 40);
    }
}
