//! The synchronous cycle loop.

use std::fmt;

use ssq_check::{Preflight, Report};
use ssq_types::{Cycle, Cycles};

/// Warm-up and measurement phases of one simulation.
///
/// Statistics gathered during warm-up are discarded so queue fill and
/// arbitration state reach steady state before measurement — the
/// standard methodology for the throughput/latency numbers of Figs. 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    warmup: Cycles,
    measure: Cycles,
}

impl Schedule {
    /// Creates a schedule with the given warm-up and measurement lengths.
    ///
    /// # Panics
    ///
    /// Panics if the measurement phase is empty.
    #[must_use]
    pub fn new(warmup: Cycles, measure: Cycles) -> Self {
        assert!(measure.value() > 0, "measurement phase must be non-empty");
        Schedule { warmup, measure }
    }

    /// Warm-up length.
    #[must_use]
    pub const fn warmup(self) -> Cycles {
        self.warmup
    }

    /// Measurement length.
    #[must_use]
    pub const fn measure(self) -> Cycles {
        self.measure
    }

    /// Total simulated cycles.
    #[must_use]
    pub fn total(self) -> Cycles {
        self.warmup + self.measure
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} warm-up + {} measured",
            self.warmup.value(),
            self.measure.value()
        )
    }
}

/// A model that advances one clock cycle at a time.
pub trait CycleModel {
    /// Advances the model through cycle `now`.
    fn step(&mut self, now: Cycle);

    /// Called once at the warm-up/measurement boundary; implementations
    /// reset their statistics (not their state) here.
    fn begin_measurement(&mut self, now: Cycle);
}

/// Drives a [`CycleModel`] through a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    schedule: Schedule,
}

impl Runner {
    /// Creates a runner for the given schedule.
    #[must_use]
    pub const fn new(schedule: Schedule) -> Self {
        Runner { schedule }
    }

    /// The schedule this runner executes.
    #[must_use]
    pub const fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Like [`Runner::run`], but invokes `observe(model, now)` after every
    /// step — the hook VCD recorders, time-series samplers, and live
    /// monitors attach to without hand-rolling the phase logic.
    pub fn run_observed<M, F>(&self, model: &mut M, mut observe: F) -> Cycle
    where
        M: CycleModel + ?Sized,
        F: FnMut(&M, Cycle),
    {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let mut now = Cycle::ZERO;
        while now < warm_end {
            model.step(now);
            observe(model, now);
            now = now.next();
        }
        model.begin_measurement(now);
        let end = warm_end + self.schedule.measure();
        while now < end {
            model.step(now);
            observe(model, now);
            now = now.next();
        }
        now
    }

    /// Runs the model's static preflight analysis
    /// ([`ssq_check::Preflight`]) and, only when it is free of
    /// error-severity findings, drives the full schedule.
    ///
    /// On success, returns the end cycle together with the report so
    /// callers can surface warnings. The model is untouched on refusal:
    /// not a single cycle is simulated under a configuration whose
    /// guarantees cannot hold.
    ///
    /// # Errors
    ///
    /// Returns the [`Report`] when it
    /// [`has_errors`](Report::has_errors).
    pub fn run_checked<M>(&self, model: &mut M) -> Result<(Cycle, Report), Report>
    where
        M: CycleModel + Preflight + ?Sized,
    {
        let report = model.preflight();
        if report.has_errors() {
            return Err(report);
        }
        let end = self.run(model);
        Ok((end, report))
    }

    /// Runs the model from cycle 0 through the full schedule and returns
    /// the cycle after the last step (== [`Schedule::total`]).
    pub fn run<M: CycleModel + ?Sized>(&self, model: &mut M) -> Cycle {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let mut now = Cycle::ZERO;
        while now < warm_end {
            model.step(now);
            now = now.next();
        }
        model.begin_measurement(now);
        let end = warm_end + self.schedule.measure();
        while now < end {
            model.step(now);
            now = now.next();
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Probe {
        steps: u64,
        measured_steps: u64,
        boundary: Option<Cycle>,
        cycles_seen: Vec<u64>,
    }

    impl CycleModel for Probe {
        fn step(&mut self, now: Cycle) {
            self.steps += 1;
            if self.boundary.is_some() {
                self.measured_steps += 1;
            }
            self.cycles_seen.push(now.value());
        }
        fn begin_measurement(&mut self, now: Cycle) {
            self.boundary = Some(now);
        }
    }

    #[test]
    fn runs_exactly_the_scheduled_cycles() {
        let mut probe = Probe::default();
        let end = Runner::new(Schedule::new(Cycles::new(10), Cycles::new(25))).run(&mut probe);
        assert_eq!(end, Cycle::new(35));
        assert_eq!(probe.steps, 35);
        assert_eq!(probe.measured_steps, 25);
        assert_eq!(probe.boundary, Some(Cycle::new(10)));
    }

    #[test]
    fn cycles_are_consecutive_from_zero() {
        let mut probe = Probe::default();
        let _ = Runner::new(Schedule::new(Cycles::new(3), Cycles::new(2))).run(&mut probe);
        assert_eq!(probe.cycles_seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_warmup_is_allowed() {
        let mut probe = Probe::default();
        let _ = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(5))).run(&mut probe);
        assert_eq!(probe.boundary, Some(Cycle::ZERO));
        assert_eq!(probe.measured_steps, 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_measurement_rejected() {
        let _ = Schedule::new(Cycles::new(5), Cycles::ZERO);
    }

    #[test]
    fn run_observed_sees_every_cycle() {
        let mut probe = Probe::default();
        let mut seen = Vec::new();
        let end = Runner::new(Schedule::new(Cycles::new(2), Cycles::new(3))).run_observed(
            &mut probe,
            |m, now| {
                seen.push((now.value(), m.steps));
            },
        );
        assert_eq!(end, Cycle::new(5));
        // The observer runs after each step, so it sees the incremented
        // step count at the stepped cycle.
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(probe.boundary, Some(Cycle::new(2)));
    }

    #[test]
    fn schedule_total() {
        let s = Schedule::new(Cycles::new(7), Cycles::new(13));
        assert_eq!(s.total(), Cycles::new(20));
        assert!(s.to_string().contains("7 warm-up"));
    }

    struct Gated {
        probe: Probe,
        severity: ssq_check::Severity,
    }

    impl CycleModel for Gated {
        fn step(&mut self, now: Cycle) {
            self.probe.step(now);
        }
        fn begin_measurement(&mut self, now: Cycle) {
            self.probe.begin_measurement(now);
        }
    }

    impl Preflight for Gated {
        fn preflight(&self) -> Report {
            std::iter::once(ssq_check::Diagnostic::new(
                ssq_check::codes::OVERSUBSCRIBED,
                self.severity,
                "output 0",
                "synthetic",
            ))
            .collect()
        }
    }

    #[test]
    fn run_checked_refuses_error_reports_without_stepping() {
        let mut model = Gated {
            probe: Probe::default(),
            severity: ssq_check::Severity::Error,
        };
        let result =
            Runner::new(Schedule::new(Cycles::new(2), Cycles::new(3))).run_checked(&mut model);
        let report = result.expect_err("error-severity findings refuse the run");
        assert!(report.has_errors());
        assert_eq!(
            model.probe.steps, 0,
            "no cycle may run under a broken config"
        );
    }

    #[test]
    fn run_checked_runs_through_warnings() {
        let mut model = Gated {
            probe: Probe::default(),
            severity: ssq_check::Severity::Warning,
        };
        let (end, report) = Runner::new(Schedule::new(Cycles::new(2), Cycles::new(3)))
            .run_checked(&mut model)
            .expect("warnings do not block");
        assert_eq!(end, Cycle::new(5));
        assert_eq!(model.probe.steps, 5);
        assert_eq!(report.len(), 1);
    }
}
