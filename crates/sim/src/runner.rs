//! The synchronous cycle loop.

use std::fmt;

use ssq_check::{Preflight, Report};
use ssq_types::{Cycle, Cycles};

/// Warm-up and measurement phases of one simulation.
///
/// Statistics gathered during warm-up are discarded so queue fill and
/// arbitration state reach steady state before measurement — the
/// standard methodology for the throughput/latency numbers of Figs. 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    warmup: Cycles,
    measure: Cycles,
}

impl Schedule {
    /// Creates a schedule with the given warm-up and measurement lengths.
    ///
    /// # Panics
    ///
    /// Panics if the measurement phase is empty.
    #[must_use]
    pub fn new(warmup: Cycles, measure: Cycles) -> Self {
        assert!(measure.value() > 0, "measurement phase must be non-empty");
        Schedule { warmup, measure }
    }

    /// Warm-up length.
    #[must_use]
    pub const fn warmup(self) -> Cycles {
        self.warmup
    }

    /// Measurement length.
    #[must_use]
    pub const fn measure(self) -> Cycles {
        self.measure
    }

    /// Total simulated cycles.
    #[must_use]
    pub fn total(self) -> Cycles {
        self.warmup + self.measure
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} warm-up + {} measured",
            self.warmup.value(),
            self.measure.value()
        )
    }
}

/// A model that advances one clock cycle at a time.
pub trait CycleModel {
    /// Advances the model through cycle `now`.
    fn step(&mut self, now: Cycle);

    /// Called once at the warm-up/measurement boundary; implementations
    /// reset their statistics (not their state) here.
    fn begin_measurement(&mut self, now: Cycle);
}

/// A model the runner can watch for stalls and invariant violations —
/// the hooks behind the flight recorder's trip wire.
pub trait Monitored: CycleModel {
    /// A monotone progress measure (e.g. total flits committed to
    /// output channels). `Some(v)` means the model currently holds
    /// pending work and has made `v` units of progress; `None` means
    /// it is legitimately idle (nothing buffered, nothing in flight),
    /// so an unchanged measure is not a stall.
    fn progress(&self) -> Option<u64>;

    /// A violated invariant (e.g. a GL wait above the Eq. 1 bound), if
    /// any. Checked after every step; the first `Some` trips the run.
    fn violation(&self) -> Option<String> {
        None
    }
}

/// How a monitored run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a tripped run must be reported, not dropped"]
pub enum MonitorOutcome {
    /// The full schedule ran; the cycle after the last step.
    Completed(Cycle),
    /// The watchdog fired: a stall or a violated invariant.
    Tripped {
        /// Cycle at which the trip was detected.
        at: Cycle,
        /// Human-readable trip reason.
        reason: String,
    },
}

impl MonitorOutcome {
    /// Whether the run completed without tripping.
    #[must_use]
    pub const fn is_completed(&self) -> bool {
        matches!(self, MonitorOutcome::Completed(_))
    }
}

/// Drives a [`CycleModel`] through a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    schedule: Schedule,
}

impl Runner {
    /// Creates a runner for the given schedule.
    #[must_use]
    pub const fn new(schedule: Schedule) -> Self {
        Runner { schedule }
    }

    /// The schedule this runner executes.
    #[must_use]
    pub const fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Like [`Runner::run`], but invokes `observe(model, now)` after every
    /// step — the hook VCD recorders, time-series samplers, and live
    /// monitors attach to without hand-rolling the phase logic.
    pub fn run_observed<M, F>(&self, model: &mut M, mut observe: F) -> Cycle
    where
        M: CycleModel + ?Sized,
        F: FnMut(&M, Cycle),
    {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let mut now = Cycle::ZERO;
        while now < warm_end {
            model.step(now);
            observe(model, now);
            now = now.next();
        }
        model.begin_measurement(now);
        let end = warm_end + self.schedule.measure();
        while now < end {
            model.step(now);
            observe(model, now);
            now = now.next();
        }
        now
    }

    /// Runs the model's static preflight analysis
    /// ([`ssq_check::Preflight`]) and, only when it is free of
    /// error-severity findings, drives the full schedule.
    ///
    /// On success, returns the end cycle together with the report so
    /// callers can surface warnings. The model is untouched on refusal:
    /// not a single cycle is simulated under a configuration whose
    /// guarantees cannot hold.
    ///
    /// # Errors
    ///
    /// Returns the [`Report`] when it
    /// [`has_errors`](Report::has_errors).
    pub fn run_checked<M>(&self, model: &mut M) -> Result<(Cycle, Report), Report>
    where
        M: CycleModel + Preflight + ?Sized,
    {
        let report = model.preflight();
        if report.has_errors() {
            return Err(report);
        }
        let end = self.run(model);
        Ok((end, report))
    }

    /// Like [`Runner::run_observed`], but with a watchdog: the run
    /// trips when the model reports an invariant [`violation`]
    /// (checked every cycle) or when it holds pending work whose
    /// [`progress`] measure does not advance for `stall_window`
    /// consecutive cycles. Idle phases (`progress() == None`) reset
    /// the window.
    ///
    /// [`violation`]: Monitored::violation
    /// [`progress`]: Monitored::progress
    pub fn run_monitored<M, F>(
        &self,
        model: &mut M,
        stall_window: Cycles,
        mut observe: F,
    ) -> MonitorOutcome
    where
        M: Monitored + ?Sized,
        F: FnMut(&M, Cycle),
    {
        assert!(stall_window.value() > 0, "stall window must be non-empty");
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let end = warm_end + self.schedule.measure();
        let mut now = Cycle::ZERO;
        let mut last_progress: Option<u64> = None;
        let mut stalled_for: u64 = 0;
        while now < end {
            if now == warm_end {
                model.begin_measurement(now);
            }
            model.step(now);
            observe(model, now);
            if let Some(reason) = model.violation() {
                return MonitorOutcome::Tripped { at: now, reason };
            }
            match model.progress() {
                None => {
                    last_progress = None;
                    stalled_for = 0;
                }
                Some(p) => {
                    if last_progress == Some(p) {
                        stalled_for += 1;
                        if stalled_for >= stall_window.value() {
                            return MonitorOutcome::Tripped {
                                at: now,
                                reason: format!(
                                    "stall: pending work but no progress for {} cycles \
                                     (progress measure stuck at {p})",
                                    stall_window.value()
                                ),
                            };
                        }
                    } else {
                        last_progress = Some(p);
                        stalled_for = 0;
                    }
                }
            }
            now = now.next();
        }
        MonitorOutcome::Completed(now)
    }

    /// [`Runner::run_checked`] with the [`Runner::run_monitored`]
    /// watchdog: preflight-gates the configuration, then drives the
    /// schedule under stall/violation monitoring.
    ///
    /// # Errors
    ///
    /// Returns the [`Report`] when it
    /// [`has_errors`](Report::has_errors).
    pub fn run_checked_monitored<M>(
        &self,
        model: &mut M,
        stall_window: Cycles,
    ) -> Result<(MonitorOutcome, Report), Report>
    where
        M: Monitored + Preflight + ?Sized,
    {
        let report = model.preflight();
        if report.has_errors() {
            return Err(report);
        }
        let outcome = self.run_monitored(model, stall_window, |_, _| {});
        Ok((outcome, report))
    }

    /// Runs the model from cycle 0 through the full schedule and returns
    /// the cycle after the last step (== [`Schedule::total`]).
    pub fn run<M: CycleModel + ?Sized>(&self, model: &mut M) -> Cycle {
        let warm_end = Cycle::ZERO + self.schedule.warmup();
        let mut now = Cycle::ZERO;
        while now < warm_end {
            model.step(now);
            now = now.next();
        }
        model.begin_measurement(now);
        let end = warm_end + self.schedule.measure();
        while now < end {
            model.step(now);
            now = now.next();
        }
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Probe {
        steps: u64,
        measured_steps: u64,
        boundary: Option<Cycle>,
        cycles_seen: Vec<u64>,
    }

    impl CycleModel for Probe {
        fn step(&mut self, now: Cycle) {
            self.steps += 1;
            if self.boundary.is_some() {
                self.measured_steps += 1;
            }
            self.cycles_seen.push(now.value());
        }
        fn begin_measurement(&mut self, now: Cycle) {
            self.boundary = Some(now);
        }
    }

    #[test]
    fn runs_exactly_the_scheduled_cycles() {
        let mut probe = Probe::default();
        let end = Runner::new(Schedule::new(Cycles::new(10), Cycles::new(25))).run(&mut probe);
        assert_eq!(end, Cycle::new(35));
        assert_eq!(probe.steps, 35);
        assert_eq!(probe.measured_steps, 25);
        assert_eq!(probe.boundary, Some(Cycle::new(10)));
    }

    #[test]
    fn cycles_are_consecutive_from_zero() {
        let mut probe = Probe::default();
        let _ = Runner::new(Schedule::new(Cycles::new(3), Cycles::new(2))).run(&mut probe);
        assert_eq!(probe.cycles_seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_warmup_is_allowed() {
        let mut probe = Probe::default();
        let _ = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(5))).run(&mut probe);
        assert_eq!(probe.boundary, Some(Cycle::ZERO));
        assert_eq!(probe.measured_steps, 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_measurement_rejected() {
        let _ = Schedule::new(Cycles::new(5), Cycles::ZERO);
    }

    #[test]
    fn run_observed_sees_every_cycle() {
        let mut probe = Probe::default();
        let mut seen = Vec::new();
        let end = Runner::new(Schedule::new(Cycles::new(2), Cycles::new(3))).run_observed(
            &mut probe,
            |m, now| {
                seen.push((now.value(), m.steps));
            },
        );
        assert_eq!(end, Cycle::new(5));
        // The observer runs after each step, so it sees the incremented
        // step count at the stepped cycle.
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(probe.boundary, Some(Cycle::new(2)));
    }

    #[test]
    fn schedule_total() {
        let s = Schedule::new(Cycles::new(7), Cycles::new(13));
        assert_eq!(s.total(), Cycles::new(20));
        assert!(s.to_string().contains("7 warm-up"));
    }

    struct Gated {
        probe: Probe,
        severity: ssq_check::Severity,
    }

    impl CycleModel for Gated {
        fn step(&mut self, now: Cycle) {
            self.probe.step(now);
        }
        fn begin_measurement(&mut self, now: Cycle) {
            self.probe.begin_measurement(now);
        }
    }

    impl Preflight for Gated {
        fn preflight(&self) -> Report {
            std::iter::once(ssq_check::Diagnostic::new(
                ssq_check::codes::OVERSUBSCRIBED,
                self.severity,
                "output 0",
                "synthetic",
            ))
            .collect()
        }
    }

    /// Delivers one unit of progress per cycle until `stall_at`, then
    /// holds pending work forever without progressing.
    struct Staller {
        stall_at: u64,
        delivered: u64,
        steps: u64,
        violate_at: Option<u64>,
    }

    impl CycleModel for Staller {
        fn step(&mut self, now: Cycle) {
            self.steps += 1;
            if now.value() < self.stall_at {
                self.delivered += 1;
            }
        }
        fn begin_measurement(&mut self, _now: Cycle) {}
    }

    impl Monitored for Staller {
        fn progress(&self) -> Option<u64> {
            Some(self.delivered)
        }
        fn violation(&self) -> Option<String> {
            self.violate_at
                .filter(|&v| self.steps > v)
                .map(|v| format!("bound violated after {v} steps"))
        }
    }

    #[test]
    fn monitored_run_completes_while_progressing() {
        let mut m = Staller {
            stall_at: u64::MAX,
            delivered: 0,
            steps: 0,
            violate_at: None,
        };
        let outcome = Runner::new(Schedule::new(Cycles::new(5), Cycles::new(20))).run_monitored(
            &mut m,
            Cycles::new(3),
            |_, _| {},
        );
        assert_eq!(outcome, MonitorOutcome::Completed(Cycle::new(25)));
        assert!(outcome.is_completed());
    }

    #[test]
    fn monitored_run_trips_on_stall() {
        let mut m = Staller {
            stall_at: 10,
            delivered: 0,
            steps: 0,
            violate_at: None,
        };
        let outcome = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(1000))).run_monitored(
            &mut m,
            Cycles::new(7),
            |_, _| {},
        );
        match outcome {
            MonitorOutcome::Tripped { at, reason } => {
                // Progress last changed at cycle 9; 7 stalled cycles later.
                assert_eq!(at, Cycle::new(16));
                assert!(reason.contains("stall"), "{reason}");
            }
            MonitorOutcome::Completed(_) => panic!("stall must trip the watchdog"),
        }
    }

    #[test]
    fn monitored_run_trips_on_violation() {
        let mut m = Staller {
            stall_at: u64::MAX,
            delivered: 0,
            steps: 0,
            violate_at: Some(4),
        };
        let outcome = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(100))).run_monitored(
            &mut m,
            Cycles::new(50),
            |_, _| {},
        );
        match outcome {
            MonitorOutcome::Tripped { at, reason } => {
                assert_eq!(at, Cycle::new(4));
                assert!(reason.contains("bound violated"), "{reason}");
            }
            MonitorOutcome::Completed(_) => panic!("violation must trip the watchdog"),
        }
    }

    #[test]
    fn idle_models_never_trip_as_stalled() {
        struct Idle;
        impl CycleModel for Idle {
            fn step(&mut self, _: Cycle) {}
            fn begin_measurement(&mut self, _: Cycle) {}
        }
        impl Monitored for Idle {
            fn progress(&self) -> Option<u64> {
                None
            }
        }
        let outcome = Runner::new(Schedule::new(Cycles::ZERO, Cycles::new(500))).run_monitored(
            &mut Idle,
            Cycles::new(10),
            |_, _| {},
        );
        assert!(outcome.is_completed());
    }

    #[test]
    fn run_checked_refuses_error_reports_without_stepping() {
        let mut model = Gated {
            probe: Probe::default(),
            severity: ssq_check::Severity::Error,
        };
        let result =
            Runner::new(Schedule::new(Cycles::new(2), Cycles::new(3))).run_checked(&mut model);
        let report = result.expect_err("error-severity findings refuse the run");
        assert!(report.has_errors());
        assert_eq!(
            model.probe.steps, 0,
            "no cycle may run under a broken config"
        );
    }

    #[test]
    fn run_checked_runs_through_warnings() {
        let mut model = Gated {
            probe: Probe::default(),
            severity: ssq_check::Severity::Warning,
        };
        let (end, report) = Runner::new(Schedule::new(Cycles::new(2), Cycles::new(3)))
            .run_checked(&mut model)
            .expect("warnings do not block");
        assert_eq!(end, Cycle::new(5));
        assert_eq!(model.probe.steps, 5);
        assert_eq!(report.len(), 1);
    }
}
