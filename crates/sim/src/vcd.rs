//! A minimal Value Change Dump (VCD, IEEE 1364) writer.
//!
//! Cycle-accurate hardware models earn their keep when their behaviour
//! can be inspected with the same tools as RTL. This module emits
//! standard VCD that GTKWave (or any waveform viewer) opens directly;
//! [`ssq_core`](https://docs.rs/ssq-core)'s `SwitchVcdRecorder` uses it
//! to dump channel states and buffer occupancies per cycle.
//!
//! # Examples
//!
//! ```
//! use ssq_sim::vcd::VcdWriter;
//!
//! let mut out = Vec::new();
//! let mut vcd = VcdWriter::new(&mut out, "1ns")?;
//! vcd.scope("switch")?;
//! let busy = vcd.add_wire(1, "busy")?;
//! let count = vcd.add_wire(8, "count")?;
//! vcd.upscope()?;
//! vcd.end_definitions()?;
//! vcd.change(0, busy, 0)?;
//! vcd.change(0, count, 0)?;
//! vcd.change(5, busy, 1)?;
//! vcd.change(5, count, 42)?;
//! let text = String::from_utf8(out)?;
//! assert!(text.contains("$timescale 1ns $end"));
//! assert!(text.contains("#5"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::io::{self, Write};

/// Handle to a declared VCD variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId {
    index: usize,
    width: u32,
}

impl VarId {
    /// Declared bit width of the variable.
    #[must_use]
    pub const fn width(self) -> u32 {
        self.width
    }
}

/// Writer state machine: declarations first, then value changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Definitions,
    Changes,
}

/// Streams a VCD file to any [`Write`] sink (a `File`, a `Vec<u8>` in
/// tests, a `BufWriter`, …). A `&mut W` also works, per the blanket
/// `Write for &mut W` impl.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    phase: Phase,
    next_var: usize,
    var_widths: Vec<u32>,
    last_values: Vec<Option<u64>>,
    current_time: Option<u64>,
    scope_depth: usize,
}

/// Error for misuse of the writer's phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdPhaseError {
    action: &'static str,
}

impl fmt::Display for VcdPhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VCD {} attempted in the wrong phase", self.action)
    }
}

impl std::error::Error for VcdPhaseError {}

impl From<VcdPhaseError> for io::Error {
    fn from(e: VcdPhaseError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidInput, e)
    }
}

/// Encodes a variable index as a VCD identifier (printable ASCII 33–126).
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push(char::from(b'!' + (index % 94) as u8));
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    code
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut out: W, timescale: &str) -> io::Result<Self> {
        writeln!(out, "$version swizzle-qos VCD writer $end")?;
        writeln!(out, "$timescale {timescale} $end")?;
        Ok(VcdWriter {
            out,
            phase: Phase::Definitions,
            next_var: 0,
            var_widths: Vec::new(),
            last_values: Vec::new(),
            current_time: None,
            scope_depth: 0,
        })
    }

    /// Opens a module scope.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`VcdPhaseError`] after
    /// [`end_definitions`](Self::end_definitions).
    pub fn scope(&mut self, name: &str) -> io::Result<()> {
        self.require(Phase::Definitions, "scope")?;
        writeln!(self.out, "$scope module {name} $end")?;
        self.scope_depth += 1;
        Ok(())
    }

    /// Closes the innermost scope.
    ///
    /// # Errors
    ///
    /// I/O errors; [`VcdPhaseError`] outside the definitions phase.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn upscope(&mut self) -> io::Result<()> {
        self.require(Phase::Definitions, "upscope")?;
        assert!(self.scope_depth > 0, "upscope without an open scope");
        writeln!(self.out, "$upscope $end")?;
        self.scope_depth -= 1;
        Ok(())
    }

    /// Declares a wire of `width` bits and returns its handle.
    ///
    /// # Errors
    ///
    /// I/O errors; [`VcdPhaseError`] outside the definitions phase.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn add_wire(&mut self, width: u32, name: &str) -> io::Result<VarId> {
        assert!((1..=64).contains(&width), "width {width} outside 1..=64");
        self.require(Phase::Definitions, "add_wire")?;
        let index = self.next_var;
        self.next_var += 1;
        self.var_widths.push(width);
        self.last_values.push(None);
        writeln!(self.out, "$var wire {width} {} {name} $end", id_code(index))?;
        Ok(VarId { index, width })
    }

    /// Ends the declaration section; value changes may follow.
    ///
    /// # Errors
    ///
    /// I/O errors; [`VcdPhaseError`] if called twice.
    ///
    /// # Panics
    ///
    /// Panics if scopes are still open.
    pub fn end_definitions(&mut self) -> io::Result<()> {
        self.require(Phase::Definitions, "end_definitions")?;
        assert_eq!(self.scope_depth, 0, "unclosed scopes at end of definitions");
        writeln!(self.out, "$enddefinitions $end")?;
        self.phase = Phase::Changes;
        Ok(())
    }

    /// Records `var = value` at time `t`. Deduplicates: unchanged values
    /// emit nothing. Times must be non-decreasing.
    ///
    /// # Errors
    ///
    /// I/O errors; [`VcdPhaseError`] before
    /// [`end_definitions`](Self::end_definitions).
    ///
    /// # Panics
    ///
    /// Panics if `t` goes backwards or `value` does not fit the declared
    /// width.
    pub fn change(&mut self, t: u64, var: VarId, value: u64) -> io::Result<()> {
        self.require(Phase::Changes, "change")?;
        let width = self.var_widths[var.index];
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} exceeds {width}-bit variable"
        );
        if self.last_values[var.index] == Some(value) {
            return Ok(());
        }
        match self.current_time {
            Some(current) if current == t => {}
            Some(current) => {
                assert!(t > current, "time went backwards: {t} < {current}");
                writeln!(self.out, "#{t}")?;
                self.current_time = Some(t);
            }
            None => {
                writeln!(self.out, "#{t}")?;
                self.current_time = Some(t);
            }
        }
        if width == 1 {
            writeln!(self.out, "{value}{}", id_code(var.index))?;
        } else {
            writeln!(self.out, "b{value:b} {}", id_code(var.index))?;
        }
        self.last_values[var.index] = Some(value);
        Ok(())
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's flush error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn require(&self, phase: Phase, action: &'static str) -> Result<(), VcdPhaseError> {
        if self.phase == phase {
            Ok(())
        } else {
            Err(VcdPhaseError { action })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> String {
        let mut out = Vec::new();
        {
            let mut vcd = VcdWriter::new(&mut out, "1ns").unwrap();
            vcd.scope("top").unwrap();
            let a = vcd.add_wire(1, "a").unwrap();
            vcd.scope("inner").unwrap();
            let b = vcd.add_wire(4, "b").unwrap();
            vcd.upscope().unwrap();
            vcd.upscope().unwrap();
            vcd.end_definitions().unwrap();
            vcd.change(0, a, 1).unwrap();
            vcd.change(0, b, 9).unwrap();
            vcd.change(3, a, 1).unwrap(); // duplicate — suppressed
            vcd.change(7, b, 2).unwrap();
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn header_and_structure() {
        let text = build_sample();
        assert!(text.starts_with("$version"));
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$scope module inner $end"));
        assert_eq!(text.matches("$upscope $end").count(), 2);
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn var_declarations() {
        let text = build_sample();
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 4 \" b $end"));
    }

    #[test]
    fn value_changes_and_dedup() {
        let text = build_sample();
        assert!(text.contains("#0\n1!\nb1001 \""));
        // The duplicate change at t=3 was suppressed entirely.
        assert!(!text.contains("#3"));
        assert!(text.contains("#7\nb10 \""));
    }

    #[test]
    fn id_codes_cover_many_variables() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
        assert_eq!(id_code(94 + 93), "~!");
        // All codes must be unique across a large range.
        let codes: std::collections::HashSet<String> = (0..10_000).map(id_code).collect();
        assert_eq!(codes.len(), 10_000);
    }

    #[test]
    fn changes_before_enddefinitions_are_rejected() {
        let mut out = Vec::new();
        let mut vcd = VcdWriter::new(&mut out, "1ns").unwrap();
        let a = vcd.add_wire(1, "a").unwrap();
        let err = vcd.change(0, a, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn time_must_be_monotonic() {
        let mut out = Vec::new();
        let mut vcd = VcdWriter::new(&mut out, "1ns").unwrap();
        let a = vcd.add_wire(1, "a").unwrap();
        vcd.end_definitions().unwrap();
        vcd.change(5, a, 0).unwrap();
        vcd.change(4, a, 1).unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_rejected() {
        let mut out = Vec::new();
        let mut vcd = VcdWriter::new(&mut out, "1ns").unwrap();
        let a = vcd.add_wire(2, "a").unwrap();
        vcd.end_definitions().unwrap();
        vcd.change(0, a, 4).unwrap();
    }
}
