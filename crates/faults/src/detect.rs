//! The two-outcome oracle and auxiliary fault instruments.
//!
//! The success contract of a fault campaign (ISSUE 4): under every
//! single-fault scenario the switch either **preserves its bounds** or
//! emits a **structured revocation** — never a silent violation.
//! [`judge`] turns a monitored run's outcome plus its trace into that
//! three-way [`Verdict`]; the campaign driver asserts the third arm is
//! never reached.

use std::io::{self, Write};

use ssq_sim::MonitorOutcome;
use ssq_trace::{Event, EventKind};

/// The oracle's ruling on one fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The run completed and no guarantee was degraded or revoked: the
    /// declared tolerance absorbed the fault.
    BoundsPreserved,
    /// Guarantees were loudly renegotiated: every degradation carries a
    /// `degraded`/`guarantee_revoked`/`readmitted` trace event.
    Revoked {
        /// `guarantee_revoked` events observed.
        revocations: usize,
        /// `degraded` mode transitions observed.
        degradations: usize,
        /// `detected` classifications observed.
        detections: usize,
    },
    /// The watchdog tripped (stall or Eq. 1 violation) with **no**
    /// revocation on record — the failure mode the whole subsystem
    /// exists to rule out.
    SilentViolation {
        /// The watchdog's trip reason.
        reason: String,
    },
}

impl Verdict {
    /// Whether the scenario satisfied the two-outcome contract.
    #[must_use]
    pub fn is_acceptable(&self) -> bool {
        !matches!(self, Verdict::SilentViolation { .. })
    }
}

/// Applies the two-outcome oracle to a finished run.
///
/// A `Tripped` outcome is acceptable only when the trace already
/// recorded a revocation or degradation for it; a completed run is
/// [`Verdict::BoundsPreserved`] exactly when no guarantee machinery
/// fired.
#[must_use]
pub fn judge(outcome: &MonitorOutcome, events: &[Event]) -> Verdict {
    let mut revocations = 0;
    let mut degradations = 0;
    let mut detections = 0;
    let mut retry_degradations = 0;
    for e in events {
        match &e.kind {
            EventKind::GuaranteeRevoked { .. } => revocations += 1,
            EventKind::Degraded { mode, .. } => {
                degradations += 1;
                if mode == "retry" {
                    retry_degradations += 1;
                }
            }
            EventKind::Detected { .. } => detections += 1,
            EventKind::Readmitted { action, .. } if action != "keep" => degradations += 1,
            _ => {}
        }
    }
    // Composition check: a transient retry is consumed once per
    // detection (switch `detected_degrade` pairs them 1:1), so under
    // overlapping faults the per-fault budgets must add up, never
    // double-count. More retry transitions than detections means two
    // fault paths burned the budget for one classified event — an
    // accounting corruption the campaign must not wave through.
    if retry_degradations > detections {
        return Verdict::SilentViolation {
            reason: format!(
                "retry budget double-counted: {retry_degradations} retry \
                 degradations for {detections} detections"
            ),
        };
    }
    let loud = revocations > 0 || degradations > 0;
    match outcome {
        MonitorOutcome::Tripped { reason, .. } if !loud => Verdict::SilentViolation {
            reason: reason.clone(),
        },
        _ if loud => Verdict::Revoked {
            revocations,
            degradations,
            detections,
        },
        _ => Verdict::BoundsPreserved,
    }
}

/// A writer that fails after a byte budget — the `sink` fault model.
///
/// Attach it as a JSONL trace sink and the sink's sticky
/// [`ssq_trace::JsonlSink::io_error`] records the first failure while
/// the switch itself keeps running: a fault in *observability* must
/// never take down the *data path*.
#[derive(Debug)]
pub struct FailingWriter {
    budget: usize,
    written: usize,
}

impl FailingWriter {
    /// A writer that accepts `budget` bytes, then errors forever.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        FailingWriter { budget, written: 0 }
    }

    /// Bytes accepted before the injected failure.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written + buf.len() > self.budget {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected sink fault: write budget exhausted",
            ));
        }
        self.written += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssq_types::{Cycle, TrafficClass};

    fn ev(kind: EventKind) -> Event {
        Event { cycle: 7, kind }
    }

    fn completed() -> MonitorOutcome {
        MonitorOutcome::Completed(Cycle::new(100))
    }

    fn tripped() -> MonitorOutcome {
        MonitorOutcome::Tripped {
            at: Cycle::new(50),
            reason: "GL wait above Eq. 1 bound".into(),
        }
    }

    #[test]
    fn clean_run_preserves_bounds() {
        assert_eq!(judge(&completed(), &[]), Verdict::BoundsPreserved);
    }

    #[test]
    fn loud_degradation_is_revoked_not_silent() {
        let events = vec![
            ev(EventKind::Detected {
                output: 0,
                code: "SSQV003".into(),
                detail: 9,
            }),
            ev(EventKind::Degraded {
                output: 0,
                mode: "lrg_fallback".into(),
            }),
            ev(EventKind::GuaranteeRevoked {
                output: 0,
                input: 1,
                class: TrafficClass::GuaranteedBandwidth,
                bound: 0,
                forfeited: true,
            }),
        ];
        assert_eq!(
            judge(&tripped(), &events),
            Verdict::Revoked {
                revocations: 1,
                degradations: 1,
                detections: 1,
            }
        );
    }

    #[test]
    fn tripped_without_revocation_is_the_forbidden_outcome() {
        let verdict = judge(&tripped(), &[]);
        assert!(!verdict.is_acceptable());
        assert!(matches!(verdict, Verdict::SilentViolation { .. }));
    }

    #[test]
    fn keep_readmissions_are_not_degradations() {
        let events = vec![ev(EventKind::Readmitted {
            output: 0,
            input: 2,
            class: TrafficClass::GuaranteedBandwidth,
            action: "keep".into(),
        })];
        assert_eq!(judge(&completed(), &events), Verdict::BoundsPreserved);
    }

    #[test]
    fn unpaired_retry_degradations_flag_budget_double_counting() {
        // One detection, two retry consumptions: some second fault path
        // burned the shared budget without classifying its own event.
        let events = vec![
            ev(EventKind::Detected {
                output: 0,
                code: "SSQV003".into(),
                detail: 9,
            }),
            ev(EventKind::Degraded {
                output: 0,
                mode: "retry".into(),
            }),
            ev(EventKind::Degraded {
                output: 0,
                mode: "retry".into(),
            }),
        ];
        let verdict = judge(&completed(), &events);
        assert!(
            matches!(&verdict, Verdict::SilentViolation { reason } if reason.contains("double-counted")),
            "got {verdict:?}"
        );
        // The paired case composes cleanly.
        let paired = vec![
            ev(EventKind::Detected {
                output: 0,
                code: "SSQV003".into(),
                detail: 9,
            }),
            ev(EventKind::Degraded {
                output: 0,
                mode: "retry".into(),
            }),
        ];
        assert!(judge(&completed(), &paired).is_acceptable());
    }

    #[test]
    fn failing_writer_fails_past_its_budget() {
        let mut w = FailingWriter::new(8);
        assert!(w.write(b"12345678").is_ok());
        assert!(w.write(b"9").is_err());
        assert_eq!(w.written(), 8);
    }
}
