//! Deterministic fault schedules: *what* to break, *when*, and when to
//! heal it.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultStep`]s, each applying
//! one [`FaultKind`] to the switch at an absolute cycle. Plans are
//! either scripted ([`FaultPlan::schedule`]: inject at cycle N, heal at
//! cycle M) or generated in MTBF mode ([`FaultPlan::link_flaps`]):
//! exponentially distributed down/up pairs drawn from the in-tree
//! seeded generator, so a chaos campaign replays bit-identically from
//! its seed.

use ssq_core::QosSwitch;
use ssq_types::rng::Xoshiro256StarStar;
use ssq_types::{Cycle, InputId, OutputId};

/// One injectable (or healable) fault, mirroring the taxonomy of
/// DESIGN.md §8. Sites map one-to-one onto the `QosSwitch::fault_*`
/// API, so applying a kind always emits the matching trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Take an input's port link down (site `link`).
    LinkDown {
        /// The input whose link dies.
        input: usize,
    },
    /// Bring a downed link back up.
    LinkUp {
        /// The input whose link heals.
        input: usize,
    },
    /// Stick one inhibit-fabric wire at charged (`true`, stuck-at-1)
    /// or discharged (`false`, stuck-at-0); site `bitline_stuck`.
    StickWire {
        /// Fabric lane (GB thermometer lanes first, GL lane last).
        lane: usize,
        /// Input whose wire on that lane sticks.
        input: usize,
        /// `true` = stuck-at-1, `false` = stuck-at-0.
        charged: bool,
    },
    /// Heal a previously stuck fabric wire.
    HealWire {
        /// Fabric lane of the stuck wire.
        lane: usize,
        /// Input of the stuck wire.
        input: usize,
    },
    /// Flip one bit of an `auxVC` counter (single-event upset, site
    /// `aux_bit_flip`).
    FlipAuxBit {
        /// Output whose SSVC engine is hit.
        output: usize,
        /// Input whose counter is hit.
        input: usize,
        /// Bit index to flip.
        bit: u32,
    },
    /// Drop the next `epochs` counter-policy decay events (site
    /// `epoch_skip`).
    SkipEpochs {
        /// Output whose policy clock skips.
        output: usize,
        /// Number of epoch boundaries silently dropped.
        epochs: u64,
    },
    /// Demote an output's GL class: it keeps service inside the GB
    /// round but forfeits the Eq. 1 bound.
    DemoteGl {
        /// Output whose GL lane is lost.
        output: usize,
    },
    /// Restore GL preemption (the caller re-arms the watchdog).
    RestoreGl {
        /// Output whose GL lane healed.
        output: usize,
    },
    /// Force an output's GB arbitration from SSVC to the LRG fallback.
    DegradeToLrg {
        /// Output that degrades.
        output: usize,
    },
    /// Restore full SSVC arbitration after the fabric healed.
    RestoreSsvc {
        /// Output that recovers.
        output: usize,
    },
    /// Re-run admission against a post-fault capacity, deterministically
    /// evicting or demoting flows that no longer fit.
    Readmit {
        /// Output to re-admit.
        output: usize,
        /// Surviving capacity as a fraction of the channel (≤ 1.0).
        capacity: f64,
        /// Whether the GL lane itself was lost.
        gl_lane_lost: bool,
    },
    /// Heal every persistent fault at once and refill retry budgets.
    HealAll,
}

impl FaultKind {
    /// Applies this fault to `switch` at cycle `now` (emits the
    /// corresponding trace events through the switch's fault API).
    pub fn apply(&self, switch: &mut QosSwitch, now: Cycle) {
        match *self {
            FaultKind::LinkDown { input } => {
                switch.fault_set_link(InputId::new(input), false, now);
            }
            FaultKind::LinkUp { input } => {
                switch.fault_set_link(InputId::new(input), true, now);
            }
            FaultKind::StickWire {
                lane,
                input,
                charged,
            } => switch.fault_stick_wire(lane, input, charged, now),
            FaultKind::HealWire { lane, input } => switch.fault_heal_wire(lane, input, now),
            FaultKind::FlipAuxBit { output, input, bit } => {
                let _ =
                    switch.fault_flip_aux_bit(OutputId::new(output), InputId::new(input), bit, now);
            }
            FaultKind::SkipEpochs { output, epochs } => {
                switch.fault_skip_epochs(OutputId::new(output), epochs, now);
            }
            FaultKind::DemoteGl { output } => switch.fault_demote_gl(OutputId::new(output), now),
            FaultKind::RestoreGl { output } => switch.fault_restore_gl(OutputId::new(output), now),
            FaultKind::DegradeToLrg { output } => {
                switch.fault_degrade_to_lrg(OutputId::new(output), now);
            }
            FaultKind::RestoreSsvc { output } => {
                switch.fault_restore_ssvc(OutputId::new(output), now);
            }
            FaultKind::Readmit {
                output,
                capacity,
                gl_lane_lost,
            } => {
                let _ = switch.readmit_output(OutputId::new(output), capacity, gl_lane_lost, now);
            }
            FaultKind::HealAll => switch.fault_heal_all(now),
        }
    }
}

/// One scheduled application of a [`FaultKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStep {
    /// Absolute cycle (0 = first cycle of the run, warm-up included).
    pub at: u64,
    /// The fault to apply.
    pub kind: FaultKind,
}

/// An ordered, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    steps: Vec<FaultStep>,
}

impl FaultPlan {
    /// An empty plan (a healthy run).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` at absolute cycle `at`, keeping the plan
    /// sorted. Steps at the same cycle apply in insertion order.
    #[must_use]
    pub fn schedule(mut self, at: u64, kind: FaultKind) -> Self {
        let pos = self.steps.partition_point(|s| s.at <= at);
        self.steps.insert(pos, FaultStep { at, kind });
        self
    }

    /// MTBF mode: generates link down/up pairs for `input`, with
    /// exponentially distributed time-between-failures (`mtbf`) and
    /// time-to-repair (`mttr`), until `horizon` cycles. Fully
    /// deterministic given `seed`.
    #[must_use]
    pub fn link_flaps(seed: u64, input: usize, mtbf: u64, mttr: u64, horizon: u64) -> Self {
        assert!(mtbf > 0 && mttr > 0, "mean times must be positive");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut exp = |mean: u64| -> u64 {
            // Inverse-CDF exponential; clamp keeps ln's argument sane
            // and every interval at least one cycle long.
            let u = rng.f64().min(0.999_999_9);
            let draw = -(1.0 - u).ln() * mean as f64;
            (draw as u64).max(1)
        };
        let mut plan = FaultPlan::new();
        let mut t = exp(mtbf);
        while t < horizon {
            plan = plan.schedule(t, FaultKind::LinkDown { input });
            let up = t.saturating_add(exp(mttr));
            if up >= horizon {
                break;
            }
            plan = plan.schedule(up, FaultKind::LinkUp { input });
            t = up.saturating_add(exp(mtbf));
        }
        plan
    }

    /// Interleaves `other` into this plan by cycle, keeping both plans'
    /// internal orderings (same-cycle steps apply `self` first). This is
    /// how overlapping-fault scenarios are built: script one fault
    /// story, merge an MTBF schedule over it.
    #[must_use]
    pub fn merge(mut self, other: FaultPlan) -> Self {
        for step in other.steps {
            let pos = self.steps.partition_point(|s| s.at <= step.at);
            self.steps.insert(pos, step);
        }
        self
    }

    /// The scheduled steps, sorted by cycle.
    #[must_use]
    pub fn steps(&self) -> &[FaultStep] {
        &self.steps
    }

    /// Number of scheduled steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Applies every step due at or before `now`, starting from
    /// `*cursor`; advances the cursor past what was applied.
    pub fn apply_due(&self, cursor: &mut usize, now: Cycle, switch: &mut QosSwitch) {
        while let Some(step) = self.steps.get(*cursor) {
            if step.at > now.value() {
                break;
            }
            step.kind.apply(switch, now);
            *cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_steps_sorted_and_stable() {
        let plan = FaultPlan::new()
            .schedule(50, FaultKind::HealAll)
            .schedule(10, FaultKind::LinkDown { input: 0 })
            .schedule(10, FaultKind::LinkDown { input: 1 });
        let ats: Vec<u64> = plan.steps().iter().map(|s| s.at).collect();
        assert_eq!(ats, vec![10, 10, 50]);
        assert_eq!(plan.steps()[0].kind, FaultKind::LinkDown { input: 0 });
        assert_eq!(plan.steps()[1].kind, FaultKind::LinkDown { input: 1 });
    }

    #[test]
    fn link_flaps_are_deterministic_and_alternate() {
        let a = FaultPlan::link_flaps(42, 3, 500, 100, 20_000);
        let b = FaultPlan::link_flaps(42, 3, 500, 100, 20_000);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty(), "20k cycles at MTBF 500 must flap");
        for pair in a.steps().windows(2) {
            assert!(pair[0].at <= pair[1].at);
            // Downs and ups strictly alternate.
            let down0 = matches!(pair[0].kind, FaultKind::LinkDown { .. });
            let down1 = matches!(pair[1].kind, FaultKind::LinkDown { .. });
            assert_ne!(down0, down1, "flap plan must alternate down/up");
        }
        let c = FaultPlan::link_flaps(43, 3, 500, 100, 20_000);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn merge_interleaves_by_cycle_keeping_relative_order() {
        let scripted = FaultPlan::new()
            .schedule(
                100,
                FaultKind::StickWire {
                    lane: 0,
                    input: 0,
                    charged: false,
                },
            )
            .schedule(300, FaultKind::HealWire { lane: 0, input: 0 });
        let flaps = FaultPlan::new()
            .schedule(100, FaultKind::LinkDown { input: 1 })
            .schedule(200, FaultKind::LinkUp { input: 1 });
        let merged = scripted.merge(flaps);
        let ats: Vec<u64> = merged.steps().iter().map(|s| s.at).collect();
        assert_eq!(ats, vec![100, 100, 200, 300]);
        // Same-cycle: the receiving plan's step applies first.
        assert!(matches!(
            merged.steps()[0].kind,
            FaultKind::StickWire { .. }
        ));
        assert!(matches!(merged.steps()[1].kind, FaultKind::LinkDown { .. }));
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().len(), 0);
    }
}
